"""Table 2-style sweep over several ISCAS89-like benchmarks.

For each selected benchmark the script reports the initial effective cycle
time, the late-evaluation baseline (min-delay retiming), the optimised
early-evaluation result and the improvement percentage, then prints the
average improvement (the paper reports 14.5 % over the full suite).  It also
emits the Verilog controller netlist of the best configuration of the first
benchmark, mirroring the paper's evaluation flow.

Run with::

    python examples/iscas_optimization.py
    python examples/iscas_optimization.py --circuits s27 s208 s382 --scale 0.5
    python examples/iscas_optimization.py --shards 4 --store .repro-store
"""

import argparse

from repro.core.milp import MilpSettings
from repro.core.optimizer import min_effective_cycle_time
from repro.elastic.verilog import generate_verilog
from repro.experiments.reporting import event_printer, format_table
from repro.experiments.table2 import average_improvement, run_table2, table2_as_rows
from repro.workloads.iscas_like import SPEC_BY_NAME, iscas_like_rrg, scaled_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="+",
                        default=["s27", "s208", "s420", "s382", "s526"],
                        help="Table 2 circuit names to run")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="graph size multiplier (1.0 = published sizes)")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker processes for the sweep (1 = serial)")
    parser.add_argument("--store", default=None,
                        help="persistent artifact store directory")
    args = parser.parse_args()

    rows = run_table2(
        scale=args.scale,
        names=args.circuits,
        epsilon=0.05,
        cycles=4000,
        settings=MilpSettings(time_limit=60),
        shards=args.shards,
        store=args.store,
        events=event_printer(),
    )
    headers = ["name", "|N1|", "|N2|", "|E|", "xi*", "xi_nee", "xi_lp", "xi_sim", "I%"]
    print(format_table(headers, table2_as_rows(rows)))
    print(f"average improvement: {average_improvement(rows):.1f}% "
          "(paper: 14.5% over the full suite)")

    # Emit the Verilog controllers of the best configuration of the first case.
    first = args.circuits[0]
    rrg = iscas_like_rrg(scaled_spec(SPEC_BY_NAME[first], args.scale), seed=2009)
    best = min_effective_cycle_time(
        rrg, k=1, epsilon=0.05, settings=MilpSettings(time_limit=60)
    ).best
    verilog = generate_verilog(best.configuration)
    path = f"{first}_elastic.v"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(verilog)
    print(f"wrote Verilog controller netlist of {first} to {path} "
          f"({len(verilog.splitlines())} lines)")


if __name__ == "__main__":
    main()
