"""The paper's motivational example (Figures 1 and 2, Section 1.4).

Reproduces the quoted numbers: throughput 0.491 / 0.719 for Figure 1(b) at
alpha = 0.5 / 0.9, the analytical throughput 1 / (3 - 2 alpha) for Figure 2,
and shows that MIN_EFF_CYC rediscovers the Figure 2 configuration (two
anti-tokens on the rarely used multiplexer input) automatically.

Run with::

    python examples/motivational_example.py
"""

from repro import min_effective_cycle_time, exact_throughput
from repro.experiments.motivational import run_motivational
from repro.experiments.reporting import event_printer, format_table
from repro.workloads.examples import figure1a_rrg, figure2_expected_throughput


def main() -> None:
    rows = run_motivational(
        alphas=(0.5, 0.9), cycles=20000, seed=1, events=event_printer()
    )
    table = [
        (
            f"Figure {row.figure}",
            row.alpha,
            row.cycle_time,
            row.exact,
            row.simulated,
            row.lp_bound,
            "-" if row.expected is None else f"{row.expected:.3f}",
        )
        for row in rows
    ]
    print(format_table(
        ["config", "alpha", "tau", "Theta exact", "Theta sim", "Theta_lp", "paper"],
        table,
    ))

    print("Running MIN_EFF_CYC on the Figure 1(a) graph (alpha = 0.9)...")
    rrg = figure1a_rrg(alpha=0.9)
    result = min_effective_cycle_time(rrg, k=3, epsilon=0.01)
    best = result.best
    exact = exact_throughput(best.configuration).throughput
    print(f"  best configuration: tau = {best.cycle_time:.1f}, "
          f"Theta = {exact:.4f}, xi = {best.cycle_time / exact:.3f}")
    print(f"  paper's optimum   : tau = 1.0, "
          f"Theta = {figure2_expected_throughput(0.9):.4f}, "
          f"xi = {1.0 / figure2_expected_throughput(0.9):.3f}")
    print("  tokens per edge   :", best.configuration.token_vector())
    print("  buffers per edge  :", best.configuration.buffer_vector())


if __name__ == "__main__":
    main()
