"""Pareto-front exploration on an s526-like benchmark (Table 1 of the paper).

Generates a synthetic graph with the published size of the s526 benchmark,
runs MIN_EFF_CYC, simulates every non-dominated configuration and prints the
Table 1 columns (cycle time, LP bound, simulated throughput, bound error and
effective cycle times).

Run with::

    python examples/pareto_exploration.py            # scaled-down, fast
    python examples/pareto_exploration.py --full     # published size (slower)
"""

import argparse

from repro.core.milp import MilpSettings
from repro.experiments.reporting import format_table
from repro.experiments.table1 import run_table1, table1_as_rows
from repro.workloads.iscas_like import SPEC_BY_NAME, iscas_like_rrg, scaled_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the published graph size (slower)")
    parser.add_argument("--circuit", default="s526",
                        help="Table 2 circuit name to mimic (default: s526)")
    args = parser.parse_args()

    spec = SPEC_BY_NAME[args.circuit]
    if not args.full:
        spec = scaled_spec(spec, 0.4)
    rrg = iscas_like_rrg(spec, seed=42)
    print(f"benchmark: {rrg}")

    result = run_table1(
        rrg,
        epsilon=0.05,
        cycles=4000,
        settings=MilpSettings(time_limit=60),
    )
    headers = ["name", "tau", "Theta_lp", "Theta", "err%", "xi_lp", "xi"]
    print(format_table(headers, table1_as_rows(result)))
    print(f"Delta between RC_lp_min and RC_min: {result.delta_percent:.1f}%")
    best = result.best_by_simulation
    worst = max(result.rows, key=lambda r: r.effective_cycle_time)
    print(f"best effective cycle time : {best.effective_cycle_time:.2f}")
    print(f"worst stored configuration: {worst.effective_cycle_time:.2f}")


if __name__ == "__main__":
    main()
