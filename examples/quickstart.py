"""Quickstart: optimise a small elastic loop with early evaluation.

Builds a four-stage loop whose join is an early-evaluation multiplexer,
computes the min-delay retiming baseline, runs the MIN_EFF_CYC optimiser and
compares the effective cycle times.

Run with::

    python examples/quickstart.py
"""

from repro import (
    RRG,
    cycle_time,
    exact_throughput,
    min_delay_retiming,
    min_effective_cycle_time,
    simulate_throughput,
)


def build_loop() -> RRG:
    """A loop of three pipeline stages feeding an early-evaluation mux.

    The mux takes the slow feedback path only 20 % of the time, so bubbles on
    that path are almost free once the mux evaluates early.
    """
    rrg = RRG("quickstart-loop")
    rrg.add_node("mux", delay=1.0, early=True)
    rrg.add_node("decode", delay=4.0)
    rrg.add_node("execute", delay=5.0)
    rrg.add_node("writeback", delay=3.0)
    rrg.add_node("bypass", delay=1.0)

    rrg.add_edge("mux", "decode", tokens=1)
    rrg.add_edge("decode", "execute", tokens=0)
    rrg.add_edge("execute", "writeback", tokens=0)
    rrg.add_edge("writeback", "mux", tokens=1, probability=0.2)
    rrg.add_edge("mux", "bypass", tokens=0)
    rrg.add_edge("bypass", "mux", tokens=1, probability=0.8)
    rrg.validate()
    return rrg


def main() -> None:
    rrg = build_loop()
    print(f"graph: {rrg}")
    print(f"initial cycle time: {cycle_time(rrg):.2f}")

    baseline = min_delay_retiming(rrg, method="milp")
    print(f"min-delay retiming cycle time (= effective cycle time): "
          f"{baseline.cycle_time():.2f}")

    result = min_effective_cycle_time(rrg, k=3, epsilon=0.02)
    best = result.best
    throughput = simulate_throughput(best.configuration, cycles=20000, seed=1)
    exact = exact_throughput(best.configuration).throughput
    print("best retiming-and-recycling configuration:")
    print(f"  cycle time           : {best.cycle_time:.2f}")
    print(f"  throughput (LP bound): {best.throughput_bound:.4f}")
    print(f"  throughput (simulated): {throughput:.4f}")
    print(f"  throughput (exact)   : {exact:.4f}")
    print(f"  effective cycle time : {best.cycle_time / exact:.2f}")
    improvement = (
        (baseline.cycle_time() - best.cycle_time / exact) / baseline.cycle_time() * 100
    )
    print(f"improvement over min-delay retiming: {improvement:.1f}%")


if __name__ == "__main__":
    main()
