"""Ablation: throughput estimators (exact Markov chain, TGMG simulation,
structural elastic simulation, LP bound).

Compares accuracy against the analytical throughput of the Figure 2
configuration and records the runtime of each estimator on the same graph.
"""

import pytest

from repro.elastic.simulator import simulate_elastic_throughput
from repro.gmg.lp_bound import throughput_upper_bound
from repro.gmg.markov import exact_throughput
from repro.gmg.simulation import simulate_throughput
from repro.workloads.examples import figure2_expected_throughput, figure2_rrg

from bench_utils import run_once

ALPHA = 0.8
EXPECTED = figure2_expected_throughput(ALPHA)


def test_markov_exact(benchmark):
    rrg = figure2_rrg(ALPHA)
    result = run_once(benchmark, exact_throughput, rrg)
    assert result.throughput == pytest.approx(EXPECTED, abs=1e-6)
    benchmark.extra_info["throughput"] = result.throughput
    benchmark.extra_info["states"] = result.num_states


def test_tgmg_simulation(benchmark):
    rrg = figure2_rrg(ALPHA)
    value = run_once(benchmark, simulate_throughput, rrg, cycles=20000, seed=1)
    assert value == pytest.approx(EXPECTED, abs=0.02)
    benchmark.extra_info["throughput"] = value


def test_elastic_circuit_simulation(benchmark):
    rrg = figure2_rrg(ALPHA)
    value = run_once(
        benchmark, simulate_elastic_throughput, rrg, cycles=20000, seed=1
    )
    assert value == pytest.approx(EXPECTED, abs=0.02)
    benchmark.extra_info["throughput"] = value


def test_lp_bound(benchmark):
    rrg = figure2_rrg(ALPHA)
    value = run_once(benchmark, throughput_upper_bound, rrg)
    assert value == pytest.approx(EXPECTED, abs=1e-6)
    benchmark.extra_info["throughput_bound"] = value
