"""Pytest configuration for the benchmark harness.

The benchmark directory is kept outside the default ``testpaths`` so that
``pytest`` runs the unit/integration suite quickly; run the harness with::

    pytest benchmarks/ --benchmark-only
"""

import os
import sys

# Make `from bench_utils import run_once` work regardless of the rootdir the
# harness is invoked from.
sys.path.insert(0, os.path.dirname(__file__))
