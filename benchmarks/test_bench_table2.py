"""Table 2 reproduction: the benchmark sweep and the average improvement.

The paper runs 18 ISCAS89-derived graphs at full size with a 20-minute CPLEX
timeout per MILP and reports a 14.5 % average effective-cycle-time improvement
of early-evaluation retiming-and-recycling over the late-evaluation baseline.
The default harness here runs a scaled-down synthetic suite (set ``SCALE = 1.0``
and extend ``CIRCUITS`` to run the published sizes); the assertions check the
qualitative shape: the optimiser never loses to the baseline, it wins clearly
on average, and the improvement is heterogeneous across circuits.
"""

import pytest

from repro.core.milp import MilpSettings
from repro.experiments.reporting import format_table
from repro.experiments.table2 import average_improvement, run_table2, table2_as_rows

from bench_utils import run_once

SCALE = 0.2
CIRCUITS = ["s27", "s208", "s420", "s838", "s382", "s400", "s444", "s526"]
SETTINGS = MilpSettings(time_limit=45)


def test_table2_sweep(benchmark):
    rows = run_once(
        benchmark,
        run_table2,
        scale=SCALE,
        names=CIRCUITS,
        epsilon=0.1,
        cycles=3000,
        settings=SETTINGS,
    )
    assert len(rows) == len(CIRCUITS)

    for row in rows:
        # The initial (un-retimed) system is never better than the retimed one.
        assert row.xi_initial >= row.xi_late - 1e-6
        # Early evaluation never loses to the late-evaluation baseline.
        assert row.xi_sim_min <= row.xi_late + 1e-6
        assert row.improvement_percent >= -1e-6

    average = average_improvement(rows)
    assert average > 3.0, "early evaluation should win clearly on average"

    benchmark.extra_info["average_improvement_percent"] = average
    benchmark.extra_info["paper_average_improvement_percent"] = 14.5
    benchmark.extra_info["circuits"] = ",".join(CIRCUITS)
    benchmark.extra_info["scale"] = SCALE
    headers = ["name", "|N1|", "|N2|", "|E|", "xi*", "xi_nee", "xi_lp", "xi_sim", "I%"]
    print()
    print(format_table(headers, table2_as_rows(rows)))
    print(f"average improvement: {average:.1f}%  (paper: 14.5% on the full suite)")
