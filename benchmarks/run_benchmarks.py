#!/usr/bin/env python
"""Record a solver/simulator benchmark snapshot comparable across PRs.

Runs a fixed set of MILP workloads (the ones dominated by the LP core) plus
simulation workloads (the ones dominated by the throughput-evaluation engine)
and writes ``BENCH_<date>.json`` next to this script.  Re-run after solver or
simulator changes and diff the ``seconds`` fields against the committed
snapshot of the previous PR; ``seed_baseline`` pins the measurements taken at
the seed commit (dense tableau, cold-started branch and bound, pure-Python
dict simulators) so the cumulative speedup stays visible.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output FILE]
"""

from __future__ import annotations

import argparse
import math
import datetime
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.milp import MilpSettings, max_throughput, min_cycle_time
from repro.core.optimizer import min_effective_cycle_time
from repro.elastic.simulator import simulate_elastic_throughput
from repro.experiments.table2 import run_table2
from repro.gmg.simulation import simulate_throughput
from repro.search import search_minimize
from repro.sim.batch import simulate_configurations, simulate_replicas
from repro.sim.cache import clear_caches
from repro.workloads.examples import figure1a_rrg, figure2_rrg, unbalanced_fork_join
from repro.workloads.random_rrg import large_random_rrg, random_rrg

# Wall-clock seconds measured at the seed commit on the reference container.
# MILP entries: dense two-phase tableau, cold-started branch and bound, pure
# backend.  Simulation entries: the pure-Python dict simulators (which are
# unchanged since the seed and kept as the reference oracle), run serially —
# the sweep baseline is K single reference runs, exactly what the seed's
# experiment loop did per Pareto candidate.
SEED_BASELINE = {
    "milp_pair_fig1a_pure": 0.104,
    "milp_pair_forkjoin_pure": 17.7,
    "min_eff_cyc_fig1a_pure": 0.425,
    "sim_single_midsize": 2.17,
    "sim_elastic_midsize": 0.553,
    "sim_pareto_sweep_k8": 15.0,
    "sim_replicas_figure2_x64": 5.65,
}


def _git_revision() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
    except Exception:
        return "unknown"


def _milp_pair(rrg, backend):
    settings = MilpSettings(backend=backend)
    a = min_cycle_time(rrg, x=1.0, settings=settings)
    b = max_throughput(rrg, tau=rrg.max_delay, settings=settings)
    return {
        "min_cyc_tau": a.cycle_time,
        "max_thr_theta": b.throughput_bound,
        "lp_iterations": a.lp_iterations + b.lp_iterations,
        "nodes": a.nodes + b.nodes,
    }


def _min_eff_cyc(rrg, backend):
    result = min_effective_cycle_time(
        rrg, k=3, epsilon=0.01, settings=MilpSettings(backend=backend)
    )
    return {
        "best_xi_bound": result.best_effective_cycle_time_bound,
        "milp_solves": result.milp_solves,
        "lp_iterations": result.total_lp_iterations,
        "nodes": result.total_nodes,
    }


def _recycled_configuration(rrg, stride=2, label="recycled"):
    """A mid-size throughput-limited configuration (bubbles on half the
    channels), the regime the experiments simulate per Pareto candidate."""
    base = RRConfiguration.identity(rrg)
    buffers = base.buffer_vector()
    for edge in rrg.edges:
        if edge.index % stride == 0:
            buffers[edge.index] += 1
    return RRConfiguration(rrg, RetimingVector({}), buffers, label=label)


def _pareto_candidates(rrg, k=8):
    """K candidate configurations of one RRG, bubbled along different edge
    subsets; the LP-preferred one appears twice, as in the Table 2 sweep
    ([best] + points)."""
    base = RRConfiguration.identity(rrg)
    candidates = []
    for variant in range(k - 1):
        buffers = base.buffer_vector()
        for edge in rrg.edges:
            if edge.index % (k - 1) != variant:
                buffers[edge.index] += 1
        candidates.append(
            RRConfiguration(rrg, RetimingVector({}), buffers, label=f"cand{variant}")
        )
    return [candidates[0]] + candidates


def _sim_single(configuration):
    value = simulate_throughput(configuration, cycles=2000, seed=3, use_cache=False)
    return {"throughput": round(value, 4)}


def _sim_elastic(configuration):
    value = simulate_elastic_throughput(
        configuration, cycles=2000, seed=3, use_cache=False
    )
    return {"throughput": round(value, 4)}


def _sim_sweep(candidates):
    values = simulate_configurations(candidates, cycles=2000, seed=3, use_cache=False)
    return {"k": len(candidates), "min_throughput": round(min(values), 4)}


def _sim_replicas(rrg):
    values = simulate_replicas(rrg, replicas=64, cycles=5000, seed=5)
    return {"replicas": 64, "mean_throughput": round(float(values.mean()), 4)}


# Table 2-class sweep used by the pipeline workloads: large enough that the
# MILP work dominates, small enough that three variants stay a smoke test.
_SWEEP = dict(
    scale=0.2,
    names=["s27", "s208", "s420", "s382", "s526", "s400"],
    epsilon=0.05,
    cycles=2000,
    settings=MilpSettings(time_limit=30),
)


def _sweep_summary(rows):
    return {
        "benchmarks": len(rows),
        "mean_xi_sim": round(sum(r.xi_sim_min for r in rows) / len(rows), 4),
    }


def _pipeline_serial():
    # Start cold: without this, repeat 2+ of the serial entry would serve
    # every simulation from the process-global throughput cache while sharded
    # repeats pay it in fresh workers, skewing the serial/sharded ratio.
    clear_caches()
    return _sweep_summary(run_table2(shards=1, **_SWEEP))


def _pipeline_sharded(shards, store=None):
    clear_caches()
    return _sweep_summary(run_table2(shards=shards, store=store, **_SWEEP))


def _percentile(values, q):
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def _service_load_run(port, clients=4, per_client=8, seed_base=0,
                      shared_seeds=False, traced=False):
    """N concurrent clients submitting simulate requests; latency profile.

    ``shared_seeds`` makes every client ask for the same seeds (the warm,
    cache-served regime); otherwise every request is unique (the cold
    regime, where the broker batches concurrent lanes into one array
    program).  ``traced`` attaches a per-request trace ref — the field
    rides outside the cache key, so the warm regime stays cache-served and
    the delta against the untraced run is pure tracing overhead.
    """
    from repro.obs.trace import TRACE_FIELD
    from repro.service.client import ServiceClient

    latencies = []
    errors = []
    lock = threading.Lock()
    stats_client = ServiceClient(port=port, timeout=60)
    before = stats_client.stats().get("requests", {})

    def one_client(client_index):
        client = ServiceClient(port=port, timeout=300)
        for i in range(per_client):
            offset = i if shared_seeds else client_index * per_client + i
            body = {
                "kind": "simulate", "scenario": "figure2",
                "params": {"alpha": 0.8}, "cycles": 1000,
                "seed": seed_base + offset,
            }
            if traced:
                body[TRACE_FIELD] = f"bench{client_index:02d}x{i:04d}"
            start = time.perf_counter()
            try:
                client.submit_and_wait(body, timeout=300)
            except Exception as exc:  # noqa: BLE001 — recorded, re-raised below
                with lock:
                    errors.append(exc)
                return
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    wall_start = time.perf_counter()
    threads = [
        threading.Thread(target=one_client, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if errors:
        # A partial sample would record plausible-looking but wrong numbers.
        raise RuntimeError(
            f"service_load: {len(errors)} request(s) failed; first: {errors[0]!r}"
        )
    after = stats_client.stats().get("requests", {})

    def delta(counter):
        return after.get(counter, 0) - before.get(counter, 0)

    return {
        "clients": clients,
        "requests": len(latencies),
        "rps": round(len(latencies) / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.5) * 1000, 2),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 2),
        # Where the answers came from: how much of this load was absorbed
        # by in-flight coalescing and the tiered result cache.
        "cpus": os.cpu_count() or 1,
        "coalesced": delta("coalesced"),
        "cache_hits_memory": delta("cache_hits_memory"),
        "cache_hits_store": delta("cache_hits_store"),
    }


def _fleet_load_run(port, **kwargs):
    """The service load profile against a fleet, plus fleet-side detail."""
    from repro.service.client import ServiceClient

    entry = _service_load_run(port, **kwargs)
    stats = ServiceClient(port=port, timeout=60).stats()
    entry["workers"] = stats.get("workers")
    hit_rates = {}
    for name, info in sorted((stats.get("per_worker") or {}).items()):
        l1 = ((info.get("stats") or {}).get("cache") or {}).get("l1") or {}
        hits = l1.get("hits", 0)
        total = hits + l1.get("misses", 0)
        hit_rates[name] = round(hits / total, 3) if total else None
    entry["l1_hit_rate_by_worker"] = hit_rates
    return entry


#: Evaluation throughput of the PR 5 single-move search path on the
#: reference container (evaluations / seconds of the committed
#: BENCH_2026-07-28.json entries) — the baseline the batched kernel path is
#: measured against.
PR5_SEARCH_EVALS_PER_SECOND = {
    "search_large_descent": 25 / 4.4024,
    "search_large_anneal": 25 / 7.0853,
    "search_large_portfolio": 25 / 3.6112,
}


def _search_large(optimizer, budget=6.0):
    """Heuristic search on a 400-node RRG (beyond branch-and-bound reach).

    Reported: incumbent quality (xi, and the improvement over the identity
    configuration) for the given time budget, plus evaluation throughput
    (``evals_per_second``) and the simulation kernel backend that executed
    the run.  Cold caches per run so every repeat races from scratch.
    """
    from repro.pipeline.stages import SEARCH_STRATEGIES

    strategies = SEARCH_STRATEGIES[optimizer]
    clear_caches()
    rrg = large_random_rrg(400, seed=11)
    started = time.perf_counter()
    result = search_minimize(
        rrg, strategies=strategies, time_budget=budget, seed=1,
        include_milp=False,
    )
    elapsed = time.perf_counter() - started
    start_xi = result.points[0].effective_cycle_time
    evals_per_second = round(result.evaluations / elapsed, 1)
    entry = {
        "xi": round(result.best.effective_cycle_time, 3),
        "improvement_pct": round(
            (1 - result.best.effective_cycle_time / start_xi) * 100, 2
        ),
        "evaluations": result.evaluations,
        "evals_per_second": evals_per_second,
        "kernel_backend": result.kernel_backend,
        "pool_size": result.pool_size,
        "strategy": result.best.strategy,
        "time_budget": budget,
    }
    baseline = PR5_SEARCH_EVALS_PER_SECOND.get(f"search_large_{optimizer}")
    if baseline:
        entry["evals_per_second_vs_pr5"] = round(
            evals_per_second / baseline, 1
        )
    return entry


def _search_vs_milp():
    """Portfolio vs the exact MILP on a paper-sized instance (s382-like)."""
    from repro.workloads.iscas_like import SPEC_BY_NAME, iscas_like_rrg, scaled_spec

    clear_caches()
    rrg = iscas_like_rrg(scaled_spec(SPEC_BY_NAME["s382"], 0.25), seed=2018)
    result = search_minimize(
        rrg, time_budget=8.0, seed=1,
        settings=MilpSettings(time_limit=30), include_milp=True,
    )
    return {
        "xi_portfolio": round(result.best.effective_cycle_time, 3),
        "xi_milp_bound": round(
            (result.milp or {}).get("best_xi_bound", float("nan")), 3
        ),
        "provenance": result.best.strategy,
    }


def _workloads():
    fig1a = figure1a_rrg(0.9)
    fork_join = unbalanced_fork_join(alpha=0.8, long_branch_delay=6.0)
    yield "milp_pair_fig1a_pure", lambda: _milp_pair(fig1a, "pure")
    yield "milp_pair_forkjoin_pure", lambda: _milp_pair(fork_join, "pure")
    yield "min_eff_cyc_fig1a_pure", lambda: _min_eff_cyc(figure1a_rrg(0.9), "pure")
    yield "min_eff_cyc_forkjoin_pure", lambda: _min_eff_cyc(
        unbalanced_fork_join(alpha=0.8, long_branch_delay=6.0), "pure"
    )

    # Simulation workloads (vectorized engine; seed baselines are the
    # reference dict simulators, which are unchanged since the seed).
    midsize = random_rrg(100, 200, seed=17)
    recycled = _recycled_configuration(midsize)
    candidates = _pareto_candidates(midsize, k=8)
    yield "sim_single_midsize", lambda: _sim_single(recycled)
    yield "sim_elastic_midsize", lambda: _sim_elastic(recycled)
    yield "sim_pareto_sweep_k8", lambda: _sim_sweep(candidates)
    yield "sim_replicas_figure2_x64", lambda: _sim_replicas(figure2_rrg(0.8))

    # Pipeline workloads: the same Table 2-class sweep run serially, sharded
    # over a process pool, and replayed from a populated artifact store.  The
    # serial entry is the baseline the sharded one must beat on wall-clock;
    # the cached entry shows what a re-run costs once the store is warm.
    yield "pipeline_sweep_serial", _pipeline_serial
    yield "pipeline_sweep_sharded4", lambda: _pipeline_sharded(4)
    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        _pipeline_sharded(4, store=store_dir)  # populate, untimed
        yield "pipeline_sweep_cached", lambda: _pipeline_sharded(4, store=store_dir)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # Search workloads: the heuristic optimizer on a graph ~4x beyond what
    # the MILP can touch, one entry per strategy line-up, plus the
    # portfolio-vs-MILP quality check on a paper-sized instance.  The xi
    # fields are the quality record (incumbent vs time budget).
    yield "search_large_descent", lambda: _search_large("descent")
    yield "search_large_anneal", lambda: _search_large("anneal")
    yield "search_large_portfolio", lambda: _search_large("portfolio")
    yield "search_small_portfolio_vs_milp", _search_vs_milp

    # Service workloads: the full HTTP round trip (admission, coalescing,
    # batching, tiered cache) under N concurrent clients.  Cold shifts the
    # seed window every repeat so nothing is ever cached; warm replays one
    # fixed window, so after the untimed populate pass every request is
    # answered from the result cache.
    from repro.service.server import ServerThread

    service = ServerThread(queue_limit=256).start()
    try:
        cold_window = [0]

        def _cold():
            cold_window[0] += 1
            return _service_load_run(
                service.port, seed_base=100_000 + 1_000 * cold_window[0]
            )

        yield "service_load_cold", _cold
        _service_load_run(service.port, seed_base=0, shared_seeds=True)
        yield "service_load_warm", lambda: _service_load_run(
            service.port, seed_base=0, shared_seeds=True
        )
        # The same warm window with a per-request trace ref: every span on
        # the hot path gets recorded, so warm_traced/warm is the tracing tax.
        yield "service_load_warm_traced", lambda: _service_load_run(
            service.port, seed_base=0, shared_seeds=True, traced=True
        )
    finally:
        # The main loop finishes timing a workload before advancing the
        # generator, so the server outlives every timed repeat.
        service.stop()

    # Fleet workloads: the identical load against a 4-worker fleet behind
    # the sharding router.  Each fingerprint's L1 and coalescing live on one
    # worker, the persistent store is shared, so warm rps should scale with
    # workers on a multi-core host (on one core everything serializes and
    # the router is pure overhead — main() prints the note).
    from repro.service.fleet import FleetThread

    fleet_store = tempfile.mkdtemp(prefix="repro-bench-fleet-")
    fleet = FleetThread(workers=4, store=fleet_store, queue_limit=256).start()
    try:
        fleet.wait_live()
        fleet_window = [0]

        def _fleet_cold():
            fleet_window[0] += 1
            return _fleet_load_run(
                fleet.port, seed_base=200_000 + 1_000 * fleet_window[0]
            )

        yield "service_fleet_cold", _fleet_cold
        _fleet_load_run(fleet.port, seed_base=0, shared_seeds=True)
        yield "service_fleet_warm", lambda: _fleet_load_run(
            fleet.port, seed_base=0, shared_seeds=True
        )
    finally:
        fleet.stop()
        shutil.rmtree(fleet_store, ignore_errors=True)

    try:
        import scipy  # noqa: F401
    except Exception:
        return
    yield "milp_pair_forkjoin_scipy", lambda: _milp_pair(fork_join, "scipy")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_name = f"BENCH_{datetime.date.today().isoformat()}.json"
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / default_name),
        help="snapshot path (default: benchmarks/BENCH_<date>.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per workload; the fastest is recorded (default 3)",
    )
    args = parser.parse_args(argv)

    results = {}
    for name, run in _workloads():
        elapsed = math.inf
        extra = {}
        for _ in range(max(1, args.repeats)):
            start = time.perf_counter()
            candidate = run()
            seconds = time.perf_counter() - start
            # Keep the extras of the *fastest* repeat so every recorded
            # field describes the same run (the service_load entries derive
            # rps/percentiles from their own wall clock).
            if seconds < elapsed:
                elapsed = seconds
                extra = candidate
        results[name] = {"seconds": round(elapsed, 4), **extra}
        speedup = ""
        if name in SEED_BASELINE:
            speedup = f"  ({SEED_BASELINE[name] / elapsed:.1f}x vs seed)"
        print(f"{name}: {elapsed:.3f}s{speedup}")

    serial = results.get("pipeline_sweep_serial", {}).get("seconds")
    cpus = os.cpu_count() or 1
    if serial:
        for variant in ("pipeline_sweep_sharded4", "pipeline_sweep_cached"):
            seconds = results.get(variant, {}).get("seconds")
            if seconds:
                print(f"{variant}: {serial / seconds:.1f}x vs serial sweep")
        if cpus < 2:
            print("note: single-CPU host — shards serialize; the sharded "
                  "speedup only shows on multi-core machines")

    warm_rps = results.get("service_load_warm", {}).get("rps")
    fleet_rps = results.get("service_fleet_warm", {}).get("rps")
    if warm_rps and fleet_rps:
        ratio = fleet_rps / warm_rps
        print(f"service_fleet_warm: {ratio:.2f}x rps vs single-process warm")
        if cpus >= 4:
            # The fleet's reason to exist: on a machine with a core per
            # worker the warm sharded fleet must clearly outscale one
            # process.
            assert ratio >= 2.5, (
                f"fleet warm rps only {ratio:.2f}x the single process "
                f"on a {cpus}-core host (expected >= 2.5x)"
            )
        else:
            print("note: single-CPU host — router and workers share one "
                  "core, so fleet rps cannot scale here; the >=2.5x check "
                  "only runs on >=4-core machines")

    traced_rps = results.get("service_load_warm_traced", {}).get("rps")
    if warm_rps and traced_rps:
        overhead = 1.0 - traced_rps / warm_rps
        print(f"service_load_warm_traced: {overhead:+.1%} overhead "
              "vs untraced warm")
        if cpus >= 2:
            # Tracing is bookkeeping, not work: a traced warm request must
            # stay within 5% of the untraced rps.  Best-of-repeats on both
            # sides keeps the comparison off scheduler noise; single-core
            # hosts are too jittery for a percent-level assertion.
            assert traced_rps >= 0.95 * warm_rps, (
                f"tracing overhead {overhead:.1%} on the warm service path "
                f"(expected < 5%)"
            )
        else:
            print("note: single-CPU host — percent-level overhead numbers "
                  "are noise here; the <5% check only runs on >=2-core "
                  "machines")

    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:
        numpy_version = None
    try:
        import scipy

        scipy_version = scipy.__version__
    except Exception:
        scipy_version = None

    snapshot = {
        "date": datetime.date.today().isoformat(),
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "cpus": cpus,
        "numpy": numpy_version,
        "scipy": scipy_version,
        "seed_baseline_seconds": SEED_BASELINE,
        "results": results,
    }
    output = Path(args.output)
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
