"""Ablation: scipy/HiGHS backend vs the pure-Python simplex + branch & bound.

The paper used CPLEX; this repository ships two interchangeable solver
backends.  The benchmark checks that they return the same optima on the
motivational example and compares their runtime on the MIN_CYC / MAX_THR
programs.
"""

import pytest

from repro.core.milp import MilpSettings, max_throughput, min_cycle_time
from repro.workloads.examples import figure1a_rrg, unbalanced_fork_join

from bench_utils import run_once


def solve_with(backend, rrg):
    settings = MilpSettings(backend=backend)
    a = min_cycle_time(rrg, x=1.0, settings=settings)
    b = max_throughput(rrg, tau=rrg.max_delay, settings=settings)
    return a.cycle_time, b.throughput_bound


def test_scipy_backend(benchmark):
    rrg = figure1a_rrg(0.9)
    tau, theta = run_once(benchmark, solve_with, "scipy", rrg)
    assert tau == pytest.approx(3.0)
    assert theta == pytest.approx(1.0 / (3 - 2 * 0.9), abs=1e-6)
    benchmark.extra_info["min_cyc_tau"] = tau
    benchmark.extra_info["max_thr_theta"] = theta


def test_pure_backend(benchmark):
    rrg = figure1a_rrg(0.9)
    tau, theta = run_once(benchmark, solve_with, "pure", rrg)
    assert tau == pytest.approx(3.0)
    assert theta == pytest.approx(1.0 / (3 - 2 * 0.9), abs=1e-6)
    benchmark.extra_info["min_cyc_tau"] = tau
    benchmark.extra_info["max_thr_theta"] = theta


def test_backends_agree_on_fork_join(benchmark):
    rrg = unbalanced_fork_join(alpha=0.8, long_branch_delay=6.0)

    def both():
        return solve_with("scipy", rrg), solve_with("pure", rrg)

    (scipy_result, pure_result) = run_once(benchmark, both)
    assert scipy_result[0] == pytest.approx(pure_result[0], abs=1e-6)
    assert scipy_result[1] == pytest.approx(pure_result[1], abs=1e-6)
