"""Figure 1 / Figure 2 reproduction (Section 1.4 of the paper).

Regenerates the motivational-example numbers: the throughput of the
Figure 1(b) configuration (0.491 at alpha = 0.5, 0.719 at alpha = 0.9), the
analytical throughput ``1 / (3 - 2 alpha)`` of Figure 2, and the fact that
MIN_EFF_CYC rediscovers the Figure 2 configuration from Figure 1(a).
"""

import pytest

from repro.core.optimizer import min_effective_cycle_time
from repro.experiments.motivational import run_motivational
from repro.gmg.markov import exact_throughput
from repro.workloads.examples import figure1a_rrg, figure2_expected_throughput

from bench_utils import run_once


def test_figure1_and_figure2_throughputs(benchmark):
    rows = run_once(benchmark, run_motivational, alphas=(0.5, 0.9), cycles=10000)
    by_key = {(row.figure, row.alpha): row for row in rows}

    assert by_key[("1b", 0.5)].exact == pytest.approx(0.491, abs=0.002)
    assert by_key[("1b", 0.9)].exact == pytest.approx(0.719, abs=0.002)
    for alpha in (0.5, 0.9):
        assert by_key[("2", alpha)].exact == pytest.approx(
            figure2_expected_throughput(alpha), abs=1e-4
        )
    # Figure 2 beats Figure 1(b) by ~16% at alpha = 0.9 (as quoted).
    gain = by_key[("2", 0.9)].exact / by_key[("1b", 0.9)].exact - 1.0
    assert gain == pytest.approx(0.16, abs=0.02)

    benchmark.extra_info["fig1b_alpha05_throughput"] = by_key[("1b", 0.5)].exact
    benchmark.extra_info["fig1b_alpha09_throughput"] = by_key[("1b", 0.9)].exact
    benchmark.extra_info["fig2_alpha09_throughput"] = by_key[("2", 0.9)].exact
    benchmark.extra_info["fig2_gain_over_fig1b_alpha09"] = gain
    for row in rows:
        print(
            f"figure {row.figure} alpha={row.alpha}: tau={row.cycle_time:.1f} "
            f"Theta={row.exact:.4f} (paper: {row.expected})"
        )


def test_min_eff_cyc_rediscovers_figure2(benchmark):
    rrg = figure1a_rrg(alpha=0.9)
    result = run_once(benchmark, min_effective_cycle_time, rrg, k=3, epsilon=0.01)
    best = result.best
    exact = exact_throughput(best.configuration).throughput
    xi = best.cycle_time / exact
    paper_xi = 1.0 / figure2_expected_throughput(0.9)
    assert xi == pytest.approx(paper_xi, abs=1e-3)
    benchmark.extra_info["xi_found"] = xi
    benchmark.extra_info["xi_paper"] = paper_xi
    benchmark.extra_info["min_delay_retiming_xi"] = 3.0
    print(f"MIN_EFF_CYC xi={xi:.3f} vs paper optimum {paper_xi:.3f} "
          f"(min-delay retiming: 3.0)")
