"""Helpers shared by the benchmark harness."""


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result.

    The benchmarks reproduce tables and figures; the workload is the
    interesting output, so there is no value in repeating multi-second MILP
    sweeps for timing statistics.
    """
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
