"""Ablation: the epsilon step of the MIN_EFF_CYC loop.

The paper fixes epsilon = 0.01.  A larger step solves fewer MILPs but may skip
Pareto points; a smaller step is more thorough.  This benchmark sweeps epsilon
on one mid-size graph and records the number of points found and the best
effective-cycle-time bound for each setting.
"""

from repro.core.milp import MilpSettings
from repro.core.optimizer import min_effective_cycle_time
from repro.workloads.iscas_like import SPEC_BY_NAME, iscas_like_rrg, scaled_spec

from bench_utils import run_once

SETTINGS = MilpSettings(time_limit=45)


def sweep(rrg, epsilons):
    results = {}
    for epsilon in epsilons:
        outcome = min_effective_cycle_time(
            rrg, k=1, epsilon=epsilon, settings=SETTINGS
        )
        results[epsilon] = (
            len(outcome.points),
            outcome.best.effective_cycle_time_bound,
            outcome.iterations,
        )
    return results


def test_epsilon_granularity_tradeoff(benchmark):
    rrg = iscas_like_rrg(scaled_spec(SPEC_BY_NAME["s444"], 0.3), seed=7)
    epsilons = (0.2, 0.1, 0.05)
    results = run_once(benchmark, sweep, rrg, epsilons)

    # Finer steps can only find at least as many Pareto points...
    points = [results[e][0] for e in epsilons]
    assert points[-1] >= points[0]
    # ...and never a worse best configuration.
    best = [results[e][1] for e in epsilons]
    assert best[-1] <= best[0] + 1e-6
    # Coarser steps solve fewer MILPs.
    iterations = [results[e][2] for e in epsilons]
    assert iterations[0] <= iterations[-1]

    for epsilon in epsilons:
        count, bound, iters = results[epsilon]
        benchmark.extra_info[f"eps_{epsilon}"] = (
            f"points={count} best_xi_lp={bound:.2f} milp_pairs={iters}"
        )
        print(f"epsilon={epsilon}: {count} points, best xi_lp={bound:.2f}, "
              f"{iters} MILP pairs")
