"""Table 1 reproduction: the non-dominated configurations of one benchmark.

The paper lists every non-dominated configuration of the s526-derived RRG
with its cycle time, LP throughput bound, simulated throughput, bound error
and effective cycle times.  The graphs here are synthetic (same published
size, scaled by default), so the absolute numbers differ; the *shape* — a
Pareto trade-off whose best effective cycle time beats min-delay retiming and
whose LP bound is optimistic by roughly 5-20 % — is what the assertions check.
"""

import pytest

from repro.core.milp import MilpSettings
from repro.experiments.reporting import format_table
from repro.experiments.table1 import run_table1, table1_as_rows
from repro.workloads.iscas_like import SPEC_BY_NAME, iscas_like_rrg, scaled_spec

from bench_utils import run_once

SCALE = 0.4
SETTINGS = MilpSettings(time_limit=60)


def test_table1_s526(benchmark):
    spec = scaled_spec(SPEC_BY_NAME["s526"], SCALE)
    rrg = iscas_like_rrg(spec, seed=42)
    result = run_once(
        benchmark,
        run_table1,
        rrg,
        epsilon=0.05,
        cycles=4000,
        settings=SETTINGS,
    )

    assert len(result.rows) >= 3, "the Pareto sweep should find several points"
    taus = [row.cycle_time for row in result.rows]
    bounds = [row.throughput_bound for row in result.rows]
    assert taus == sorted(taus)
    for previous, current in zip(bounds, bounds[1:]):
        assert current >= previous - 1e-6, "throughput grows along the front"
    # The last point is the min-delay retiming configuration (Theta_lp = 1).
    assert bounds[-1] == pytest.approx(1.0, abs=1e-6)
    # The LP bound never falls below the simulation (it is an upper bound).
    for row in result.rows:
        assert row.throughput_bound + 0.03 >= row.throughput
    # The best configuration does not lose to min-delay retiming (whose xi is
    # the last tau); on most seeds it clearly beats it.
    best = result.best_by_simulation
    assert best.effective_cycle_time <= taus[-1] * 1.02

    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["best_xi_sim"] = best.effective_cycle_time
    benchmark.extra_info["min_delay_xi"] = taus[-1]
    benchmark.extra_info["delta_percent"] = result.delta_percent
    headers = ["name", "tau", "Theta_lp", "Theta", "err%", "xi_lp", "xi"]
    print()
    print(format_table(headers, table1_as_rows(result)))
    print(f"Delta(RC_lp_min vs RC_min) = {result.delta_percent:.1f}%  "
          f"(paper reports 5.4% for s526)")
