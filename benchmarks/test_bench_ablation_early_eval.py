"""Observation 1: improvements require early-evaluation nodes on critical cycles.

The paper notes that the optimisation gains nothing (I% = 0 for s832, s1488,
s1494) when the cycles that would need bubbles contain no early-evaluation
node.  This ablation reproduces the effect on a controlled fork/join loop:
optimising the same graph with and without its early-evaluation join.
"""

from repro.core.milp import MilpSettings
from repro.experiments.ablations import early_evaluation_placement_study

from bench_utils import run_once


def test_improvement_requires_early_evaluation_on_the_loop(benchmark):
    result = run_once(
        benchmark,
        early_evaluation_placement_study,
        alpha=0.85,
        long_branch_delay=8.0,
        epsilon=0.05,
        cycles=4000,
        settings=MilpSettings(time_limit=30),
    )
    # With the early-evaluation join the rarely-taken long branch absorbs
    # bubbles almost for free: a large improvement.
    assert result.improvement_with_early > 20.0
    # Without it, recycling stalls every token: (almost) no improvement.
    assert result.improvement_without_early < 5.0

    benchmark.extra_info["improvement_with_early_percent"] = (
        result.improvement_with_early
    )
    benchmark.extra_info["improvement_without_early_percent"] = (
        result.improvement_without_early
    )
    print(f"\nwith early evaluation   : {result.improvement_with_early:.1f}%")
    print(f"without early evaluation: {result.improvement_without_early:.1f}%")
