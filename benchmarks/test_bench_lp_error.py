"""Observation 3: the LP throughput bound is optimistic.

The paper reports an average error of ~12.5 % between the LP bound and the
simulated throughput, growing with the number of inserted bubbles and reaching
~35 % for some configurations.  This benchmark measures the error over every
non-dominated configuration of a few benchmarks.
"""

from repro.core.milp import MilpSettings
from repro.experiments.ablations import average_error, lp_error_study
from repro.workloads.iscas_like import SPEC_BY_NAME, iscas_like_rrg, scaled_spec

from bench_utils import run_once


def test_lp_bound_error_statistics(benchmark):
    graphs = [
        iscas_like_rrg(scaled_spec(SPEC_BY_NAME[name], 0.25), seed=seed)
        for seed, name in enumerate(["s526", "s444", "s400"])
    ]
    samples = run_once(
        benchmark,
        lp_error_study,
        graphs,
        epsilon=0.1,
        cycles=3000,
        settings=MilpSettings(time_limit=45),
    )
    assert samples

    # The bound never under-estimates the measured throughput.
    for sample in samples:
        assert sample.throughput_bound + 0.03 >= sample.throughput

    average = average_error(samples)
    assert 0.0 <= average < 40.0, "errors stay in the range the paper reports"

    # Configurations without bubbles are (near) exact; errors concentrate on
    # bubble-heavy configurations.
    exact_like = [s for s in samples if s.bubbles == 0]
    for sample in exact_like:
        assert abs(sample.error_percent) < 10.0

    benchmark.extra_info["average_error_percent"] = average
    benchmark.extra_info["paper_average_error_percent"] = 12.5
    benchmark.extra_info["num_samples"] = len(samples)
    print(f"\naverage LP bound error: {average:.1f}% over {len(samples)} "
          f"configurations (paper: 12.5%)")
