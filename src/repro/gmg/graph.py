"""Timed guarded marked graph (TGMG) data model.

A guarded marked graph (Definition 3.1) is a marked graph whose nodes are
partitioned into simple nodes (one guard covering all input edges) and early
evaluation nodes (one guard per input edge).  The timed extension
(Definition 3.3) attaches a non-negative delay to every node and a selection
probability to every guard of an early-evaluation node.

Initial markings may be negative: a negative marking is an anti-token debt
created when an early-evaluation node fires without waiting for that input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class GMGError(Exception):
    """Raised when a guarded marked graph is malformed."""


@dataclass
class TGMGNode:
    """A transition of the timed guarded marked graph.

    Attributes:
        name: Unique identifier.
        delay: Firing delay delta(n) >= 0 (integer delays model elastic-buffer
            pipelines; the refinement node of Procedure 2 has delay 1).
        early: True when the node evaluates early (one guard per input edge).
    """

    name: str
    delay: float = 0.0
    early: bool = False

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise GMGError(f"node {self.name!r} has negative delay {self.delay}")


@dataclass
class TGMGEdge:
    """An edge (place) of the TGMG.

    Attributes:
        index: Unique integer identifier within the TGMG.
        src: Producer node name.
        dst: Consumer node name.
        marking: Initial marking m0 (may be negative).
        probability: Guard-selection probability, set only on the input edges
            of early-evaluation nodes.
    """

    index: int
    src: str
    dst: str
    marking: int = 0
    probability: Optional[float] = None


class TGMG:
    """A timed guarded marked graph."""

    def __init__(self, name: str = "tgmg") -> None:
        self.name = name
        self._nodes: Dict[str, TGMGNode] = {}
        self._edges: List[TGMGEdge] = []
        self._in: Dict[str, List[int]] = {}
        self._out: Dict[str, List[int]] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, name: str, delay: float = 0.0, early: bool = False) -> TGMGNode:
        """Add a transition; raises on duplicate names."""
        if name in self._nodes:
            raise GMGError(f"duplicate node name {name!r}")
        node = TGMGNode(name=name, delay=float(delay), early=bool(early))
        self._nodes[name] = node
        self._in[name] = []
        self._out[name] = []
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        marking: int = 0,
        probability: Optional[float] = None,
    ) -> TGMGEdge:
        """Add an edge (place) from ``src`` to ``dst`` with an initial marking."""
        if src not in self._nodes:
            raise GMGError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise GMGError(f"unknown destination node {dst!r}")
        edge = TGMGEdge(
            index=len(self._edges),
            src=src,
            dst=dst,
            marking=int(marking),
            probability=probability,
        )
        self._edges.append(edge)
        self._out[src].append(edge.index)
        self._in[dst].append(edge.index)
        return edge

    # -- access ---------------------------------------------------------------

    @property
    def nodes(self) -> List[TGMGNode]:
        return list(self._nodes.values())

    @property
    def edges(self) -> List[TGMGEdge]:
        return list(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, name: str) -> TGMGNode:
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise GMGError(f"unknown node {name!r}") from exc

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def edge(self, index: int) -> TGMGEdge:
        return self._edges[index]

    def in_edges(self, name: str) -> List[TGMGEdge]:
        """Input edges of a node."""
        return [self._edges[i] for i in self._in[name]]

    def out_edges(self, name: str) -> List[TGMGEdge]:
        """Output edges of a node."""
        return [self._edges[i] for i in self._out[name]]

    @property
    def early_nodes(self) -> List[TGMGNode]:
        return [n for n in self._nodes.values() if n.early]

    @property
    def simple_nodes(self) -> List[TGMGNode]:
        return [n for n in self._nodes.values() if not n.early]

    def marking_vector(self) -> Dict[int, int]:
        """Initial markings keyed by edge index."""
        return {e.index: e.marking for e in self._edges}

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check guard probabilities and basic well-formedness."""
        for node in self._nodes.values():
            incoming = self.in_edges(node.name)
            if node.early:
                if len(incoming) < 2:
                    raise GMGError(
                        f"early-evaluation node {node.name!r} needs at least two inputs"
                    )
                if any(e.probability is None for e in incoming):
                    raise GMGError(
                        f"early-evaluation node {node.name!r} has guards without "
                        "probabilities"
                    )
                total = sum(e.probability for e in incoming)
                if abs(total - 1.0) > 1e-6:
                    raise GMGError(
                        f"guard probabilities of {node.name!r} sum to {total}, "
                        "expected 1.0"
                    )

    def __repr__(self) -> str:
        return (
            f"TGMG({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"early={len(self.early_nodes)})"
        )
