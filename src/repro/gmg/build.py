"""Procedures 1 and 2: translating an RRG into an equivalent TGMG.

Procedure 1 maps every channel's elastic buffers onto node delays and every
channel's tokens onto initial markings:

* a node with a single input edge ``e`` gets delay ``R(e)`` and the edge keeps
  marking ``R0(e)``;
* a node with several input edges gets delay 0 and an auxiliary node of delay
  ``R(e)`` is inserted on each input edge ``e``, which then carries marking
  ``R0(e)`` on its second half.

Procedure 2 refines every early-evaluation node ``n`` with a unit-delay
"server" node ``s`` fed back through each input, which prevents the TGMG from
firing ``n`` more than once per cycle.  With this refinement the TGMG
throughput equals the elastic system throughput (Lemma 3.1).

The construction is exposed in two flavours:

* :func:`build_template` returns a :class:`TGMGTemplate` whose delays and
  markings are symbolic references to the RRG's per-edge R/R0 values.  The
  MILP formulations use the template to emit throughput constraints with
  variable buffer counts.
* :func:`build_tgmg` instantiates the template with concrete token/buffer
  vectors (defaults to the RRG's own assignment) and returns a numeric TGMG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.gmg.graph import TGMG


@dataclass(frozen=True)
class ValueRef:
    """A symbolic reference to either a constant or a per-edge RRG quantity.

    Attributes:
        kind: "const", "buffers" (R of an RRG edge) or "tokens" (R0 of an RRG
            edge).
        edge_index: RRG edge index for the non-constant kinds.
        constant: Value for the "const" kind.
    """

    kind: str
    edge_index: int = -1
    constant: float = 0.0

    @staticmethod
    def const(value: float) -> "ValueRef":
        return ValueRef(kind="const", constant=float(value))

    @staticmethod
    def buffers(edge_index: int) -> "ValueRef":
        return ValueRef(kind="buffers", edge_index=edge_index)

    @staticmethod
    def tokens(edge_index: int) -> "ValueRef":
        return ValueRef(kind="tokens", edge_index=edge_index)

    def resolve(
        self, tokens: Mapping[int, int], buffers: Mapping[int, int]
    ) -> float:
        """Evaluate the reference against concrete token/buffer vectors."""
        if self.kind == "const":
            return self.constant
        if self.kind == "buffers":
            return float(buffers[self.edge_index])
        if self.kind == "tokens":
            return float(tokens[self.edge_index])
        raise ValueError(f"unknown ValueRef kind {self.kind!r}")


@dataclass
class TemplateNode:
    """Node of a :class:`TGMGTemplate` with a symbolic delay."""

    name: str
    delay: ValueRef
    early: bool = False


@dataclass
class TemplateEdge:
    """Edge of a :class:`TGMGTemplate` with a symbolic initial marking."""

    src: str
    dst: str
    marking: ValueRef
    probability: Optional[float] = None


class TGMGTemplate:
    """Symbolic TGMG whose delays/markings reference RRG edge quantities.

    The template captures the *structure* produced by Procedures 1 and 2,
    which depends only on the RRG's graph shape and on which nodes evaluate
    early — not on the token or buffer counts.  The same template can
    therefore be instantiated for many retiming-and-recycling configurations,
    and it doubles as the source of the symbolic throughput constraints
    (Lemma 3.2) used inside the MILPs.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[TemplateNode] = []
        self.edges: List[TemplateEdge] = []

    def add_node(self, name: str, delay: ValueRef, early: bool = False) -> None:
        self.nodes.append(TemplateNode(name=name, delay=delay, early=early))

    def add_edge(
        self,
        src: str,
        dst: str,
        marking: ValueRef,
        probability: Optional[float] = None,
    ) -> None:
        self.edges.append(
            TemplateEdge(src=src, dst=dst, marking=marking, probability=probability)
        )

    def in_edges(self, name: str) -> List[TemplateEdge]:
        """Input edges of a template node."""
        return [e for e in self.edges if e.dst == name]

    def instantiate(
        self,
        tokens: Mapping[int, int],
        buffers: Mapping[int, int],
        name: Optional[str] = None,
    ) -> TGMG:
        """Produce a numeric TGMG for concrete token/buffer vectors."""
        tgmg = TGMG(name or self.name)
        for node in self.nodes:
            tgmg.add_node(
                node.name,
                delay=node.delay.resolve(tokens, buffers),
                early=node.early,
            )
        for edge in self.edges:
            marking = edge.marking.resolve(tokens, buffers)
            tgmg.add_edge(
                edge.src,
                edge.dst,
                marking=int(round(marking)),
                probability=edge.probability,
            )
        return tgmg


def _aux_name(node: str, edge_index: int) -> str:
    return f"{node}__pipe{edge_index}"


def _server_name(node: str) -> str:
    return f"{node}__srv"


def _split_name(node: str, edge_index: int) -> str:
    return f"{node}__grd{edge_index}"


def build_template(rrg: RRG, refine: bool = True) -> TGMGTemplate:
    """Apply Procedures 1 and (optionally) 2 to an RRG, symbolically.

    Args:
        rrg: The source retiming-and-recycling graph.
        refine: When True (default) apply the Procedure 2 refinement to every
            early-evaluation node, which makes the TGMG throughput equal to
            the elastic system throughput.  Without the refinement the TGMG
            throughput can over-estimate the real one.

    Returns:
        A :class:`TGMGTemplate`.
    """
    template = TGMGTemplate(f"{rrg.name}-tgmg")

    # Procedure 1 - structure, delays and markings.
    edge_endpoint: Dict[int, Tuple[str, str]] = {}
    for node in rrg.nodes:
        incoming = rrg.in_edges(node.name)
        if len(incoming) <= 1:
            delay = (
                ValueRef.buffers(incoming[0].index) if incoming else ValueRef.const(0.0)
            )
            template.add_node(node.name, delay=delay, early=node.early)
        else:
            template.add_node(node.name, delay=ValueRef.const(0.0), early=node.early)

    for node in rrg.nodes:
        incoming = rrg.in_edges(node.name)
        if len(incoming) <= 1:
            for edge in incoming:
                edge_endpoint[edge.index] = (edge.src, node.name)
        else:
            for edge in incoming:
                aux = _aux_name(node.name, edge.index)
                template.add_node(aux, delay=ValueRef.buffers(edge.index))
                template.add_edge(edge.src, aux, marking=ValueRef.const(0))
                edge_endpoint[edge.index] = (aux, node.name)

    # Emit the marking-carrying edges (possibly split again by Procedure 2).
    for edge in rrg.edges:
        src, dst = edge_endpoint[edge.index]
        dst_node = rrg.node(edge.dst)
        if refine and dst_node.early:
            split = _split_name(dst_node.name, edge.index)
            template.add_node(split, delay=ValueRef.const(0.0))
            template.add_edge(src, split, marking=ValueRef.tokens(edge.index))
            template.add_edge(
                split, dst, marking=ValueRef.const(0), probability=edge.probability
            )
        else:
            template.add_edge(
                src,
                dst,
                marking=ValueRef.tokens(edge.index),
                probability=edge.probability if dst_node.early else None,
            )

    # Procedure 2 - unit-delay server node per early-evaluation node.
    if refine:
        for node in rrg.early_nodes:
            server = _server_name(node.name)
            template.add_node(server, delay=ValueRef.const(1.0))
            template.add_edge(node.name, server, marking=ValueRef.const(1))
            for edge in rrg.in_edges(node.name):
                split = _split_name(node.name, edge.index)
                template.add_edge(server, split, marking=ValueRef.const(0))

    return template


def build_tgmg(
    source: Union[RRG, RRConfiguration],
    tokens: Optional[Mapping[int, int]] = None,
    buffers: Optional[Mapping[int, int]] = None,
    refine: bool = True,
) -> TGMG:
    """Build a numeric TGMG for an RRG or a configuration.

    Args:
        source: Either an :class:`RRG` (its own token/buffer assignment is
            used unless overridden) or an :class:`RRConfiguration`.
        tokens: Optional per-edge token override (edge index -> R0).
        buffers: Optional per-edge buffer override (edge index -> R).
        refine: Apply the Procedure 2 refinement (recommended).
    """
    if isinstance(source, RRConfiguration):
        rrg = source.rrg
        token_vector = source.token_vector()
        buffer_vector = source.buffer_vector()
    else:
        rrg = source
        token_vector = source.token_vector()
        buffer_vector = source.buffer_vector()
    if tokens is not None:
        token_vector.update({int(k): int(v) for k, v in tokens.items()})
    if buffers is not None:
        buffer_vector.update({int(k): int(v) for k, v in buffers.items()})
    template = build_template(rrg, refine=refine)
    tgmg = template.instantiate(token_vector, buffer_vector, name=f"{rrg.name}-tgmg")
    tgmg.validate()
    return tgmg
