"""Guarded marked graphs (GMG) and their timed extension (TGMG).

This subpackage implements the performance-analysis substrate of the paper
(Section 3), based on Julvez, Cortadella and Kishinevsky's model of concurrent
systems with early evaluation:

* :mod:`repro.gmg.graph` — the TGMG data model (Definitions 3.1-3.4),
* :mod:`repro.gmg.build` — Procedures 1 and 2, which translate an RRG (or a
  retiming-and-recycling configuration) into an equivalent TGMG,
* :mod:`repro.gmg.simulation` — synchronous, cycle-accurate stochastic
  simulation of a TGMG to estimate the actual throughput,
* :mod:`repro.gmg.markov` — exact throughput via the reachable-marking Markov
  chain (small systems only; used for the motivational example),
* :mod:`repro.gmg.lp_bound` — the LP throughput upper bound (problem (4)).
"""

from repro.gmg.graph import TGMG, TGMGEdge, TGMGNode, GMGError
from repro.gmg.build import TGMGTemplate, build_template, build_tgmg
from repro.gmg.simulation import SimulationResult, simulate_throughput, simulate_tgmg
from repro.gmg.markov import MarkovResult, exact_throughput
from repro.gmg.lp_bound import throughput_upper_bound

__all__ = [
    "TGMG",
    "TGMGEdge",
    "TGMGNode",
    "GMGError",
    "TGMGTemplate",
    "build_template",
    "build_tgmg",
    "SimulationResult",
    "simulate_throughput",
    "simulate_tgmg",
    "MarkovResult",
    "exact_throughput",
    "throughput_upper_bound",
]
