"""Synchronous stochastic simulation of timed guarded marked graphs.

The simulator implements the cycle-level semantics of an elastic system:

* every node fires at most once per clock cycle;
* a node of delay ``d`` makes the tokens produced by a firing at cycle ``t``
  visible to its successors at cycle ``t + d`` (delay 0 means combinational
  propagation within the same cycle);
* a simple node fires when every input edge carries at least one token;
* an early-evaluation node samples a guard (an input edge) with the
  configured probabilities, holds that choice while it is stalled, and fires
  as soon as the guarded edge carries a token — decrementing *all* input
  edges, which drives the non-guarded ones negative (anti-tokens).

This is the reproduction's substitute for the paper's Verilog simulations of
the elastic controllers: the measured quantity, the steady-state token rate,
is fully determined by these handshake semantics.

:class:`TGMGSimulator` is the *reference semantics oracle*: a deliberately
simple per-node implementation that the compiled engine in :mod:`repro.sim`
is cross-checked against firing-for-firing (``tests/test_sim_engine.py``).
The module-level wrappers (:func:`simulate_tgmg`, :func:`simulate_throughput`)
default to the vectorized engine, which produces bit-identical results under
the same seed; pass ``engine="reference"`` to force the oracle.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.gmg.build import build_tgmg
from repro.gmg.graph import TGMG, GMGError


@dataclass
class SimulationResult:
    """Outcome of a throughput simulation.

    Attributes:
        throughput: Estimated steady-state throughput (firings per cycle).
        cycles: Number of measured cycles (after warm-up).
        warmup: Number of warm-up cycles discarded.
        firings: Firing count per node over the measured window.
        rates: Firing rate per node over the measured window.
    """

    throughput: float
    cycles: int
    warmup: int
    firings: Dict[str, int] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)

    @property
    def min_rate(self) -> float:
        return min(self.rates.values()) if self.rates else 0.0

    @property
    def max_rate(self) -> float:
        return max(self.rates.values()) if self.rates else 0.0


class TGMGSimulator:
    """Reusable synchronous simulator for a fixed TGMG."""

    def __init__(self, tgmg: TGMG, seed: Optional[int] = None) -> None:
        tgmg.validate()
        self.tgmg = tgmg
        self.rng = random.Random(seed)
        self._node_names = [n.name for n in tgmg.nodes]
        self._delays = {n.name: int(round(n.delay)) for n in tgmg.nodes}
        for node in tgmg.nodes:
            if abs(node.delay - round(node.delay)) > 1e-9:
                raise GMGError(
                    f"node {node.name!r} has non-integer delay {node.delay}; the "
                    "synchronous simulator requires integer delays"
                )
        self._early = {n.name for n in tgmg.early_nodes}
        self._in_edges = {n.name: tgmg.in_edges(n.name) for n in tgmg.nodes}
        self._out_edges = {n.name: tgmg.out_edges(n.name) for n in tgmg.nodes}
        self._guard_probabilities = {
            name: (
                [e.index for e in self._in_edges[name]],
                [e.probability for e in self._in_edges[name]],
            )
            for name in self._early
        }
        self.reset()

    def reset(self) -> None:
        """Restore the initial marking and clear all statistics."""
        self.marking: Dict[int, int] = {e.index: e.marking for e in self.tgmg.edges}
        self.pending_guard: Dict[str, Optional[int]] = {
            name: None for name in self._early
        }
        self.arrivals: Dict[int, Dict[str, int]] = defaultdict(dict)
        self.cycle = 0
        self.firings: Dict[str, int] = {name: 0 for name in self._node_names}

    # -- single cycle ---------------------------------------------------------

    def step(self) -> List[str]:
        """Advance one clock cycle; returns the names of the nodes that fired."""
        # 1. Deliver tokens whose pipeline latency elapsed this cycle.
        due = self.arrivals.pop(self.cycle, {})
        for producer, count in due.items():
            for edge in self._out_edges[producer]:
                self.marking[edge.index] += count

        # 2. Fire nodes to a fixpoint; each node fires at most once per cycle.
        fired: List[str] = []
        fired_set = set()
        changed = True
        while changed:
            changed = False
            for name in self._node_names:
                if name in fired_set:
                    continue
                if self._try_fire(name):
                    fired.append(name)
                    fired_set.add(name)
                    changed = True

        self.cycle += 1
        return fired

    def _try_fire(self, name: str) -> bool:
        incoming = self._in_edges[name]
        if name in self._early:
            guard = self.pending_guard[name]
            if guard is None:
                indices, weights = self._guard_probabilities[name]
                guard = self.rng.choices(indices, weights=weights, k=1)[0]
                self.pending_guard[name] = guard
            if self.marking[guard] < 1:
                return False
        else:
            if any(self.marking[e.index] < 1 for e in incoming):
                return False

        for edge in incoming:
            self.marking[edge.index] -= 1
        if name in self._early:
            self.pending_guard[name] = None

        delay = self._delays[name]
        if delay == 0:
            for edge in self._out_edges[name]:
                self.marking[edge.index] += 1
        else:
            bucket = self.arrivals[self.cycle + delay]
            bucket[name] = bucket.get(name, 0) + 1

        self.firings[name] += 1
        return True

    # -- full runs -----------------------------------------------------------------

    def run(self, cycles: int, warmup: int = 0) -> SimulationResult:
        """Simulate ``warmup + cycles`` cycles and measure over the last ``cycles``."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        for _ in range(warmup):
            self.step()
        baseline = dict(self.firings)
        for _ in range(cycles):
            self.step()
        window = {
            name: self.firings[name] - baseline[name] for name in self._node_names
        }
        rates = {name: count / cycles for name, count in window.items()}
        throughput = sum(rates.values()) / len(rates) if rates else 0.0
        return SimulationResult(
            throughput=throughput,
            cycles=cycles,
            warmup=warmup,
            firings=window,
            rates=rates,
        )


def simulate_tgmg(
    tgmg: TGMG,
    cycles: int = 10000,
    warmup: Optional[int] = None,
    seed: Optional[int] = None,
    engine: str = "vector",
) -> SimulationResult:
    """Simulate a TGMG and estimate its steady-state throughput.

    ``engine="vector"`` (default) compiles the TGMG into the array engine of
    :mod:`repro.sim`; ``engine="reference"`` runs the pure-Python oracle.
    Both are bit-identical under the same seed.
    """
    if warmup is None:
        warmup = max(200, cycles // 10)
    if engine == "reference":
        simulator = TGMGSimulator(tgmg, seed=seed)
        return simulator.run(cycles=cycles, warmup=warmup)
    from repro.sim.engine import VectorSimulator, compile_tgmg

    vectorized = VectorSimulator(compile_tgmg(tgmg), seeds=[seed])
    return vectorized.run(cycles=cycles, warmup=warmup).result(0)


def simulate_throughput(
    source: Union[RRG, RRConfiguration],
    cycles: int = 10000,
    warmup: Optional[int] = None,
    seed: Optional[int] = None,
    tokens: Optional[Mapping[int, int]] = None,
    buffers: Optional[Mapping[int, int]] = None,
    engine: str = "vector",
    use_cache: bool = True,
) -> float:
    """Estimate the actual throughput of an RRG or configuration by simulation.

    The RRG is first translated to its refined TGMG (Procedures 1 and 2), then
    simulated synchronously.  The returned value approximates Theta(RC); its
    accuracy grows with ``cycles``.

    ``engine="vector"`` (default) goes through the compiled engine with
    template reuse and a throughput cache keyed by (configuration, cycles,
    seed); ``engine="reference"`` builds the TGMG and runs the pure-Python
    oracle.  Both return the same value for the same seed.
    """
    if engine == "reference":
        tgmg = build_tgmg(source, tokens=tokens, buffers=buffers, refine=True)
        return simulate_tgmg(
            tgmg, cycles=cycles, warmup=warmup, seed=seed, engine="reference"
        ).throughput
    from repro.sim.batch import simulate_throughput_vector

    return simulate_throughput_vector(
        source,
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        tokens=dict(tokens) if tokens is not None else None,
        buffers=dict(buffers) if buffers is not None else None,
        mode="tgmg",
        use_cache=use_cache,
    )
