"""Exact throughput of small TGMGs via the reachable-state Markov chain.

The synchronous semantics of :mod:`repro.gmg.simulation` defines a discrete
time Markov chain whose state collects, for every edge, its current marking,
for every delayed node, the ages of its in-flight firings, and for every
early-evaluation node, its pending guard choice.  For small systems — such as
the motivational example of the paper (Figures 1 and 2) — the reachable state
space can be enumerated and the stationary distribution solved exactly, which
yields the exact throughput the paper derives analytically (for example
``1 / (3 - 2 * alpha)`` for the optimised configuration of Figure 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.gmg.build import build_tgmg
from repro.gmg.graph import TGMG, GMGError


class StateSpaceError(Exception):
    """Raised when the reachable state space exceeds the configured limit."""


@dataclass
class MarkovResult:
    """Exact steady-state performance of a TGMG.

    Attributes:
        throughput: Exact steady-state firing rate (identical for all nodes).
        num_states: Size of the recurrent class the chain settles in.
        rates: Per-node stationary firing rates (all equal up to numerical
            tolerance; exposed for diagnostics).
    """

    throughput: float
    num_states: int
    rates: Dict[str, float]


# A state is (markings, in-flight tuples, pending guards); all components are
# tuples so states are hashable dictionary keys.
State = Tuple[Tuple[int, ...], Tuple[Tuple[int, ...], ...], Tuple[int, ...]]


class MarkovChainAnalyzer:
    """Enumerate the reachable synchronous behaviour of a TGMG exactly."""

    def __init__(self, tgmg: TGMG, max_states: int = 200000) -> None:
        tgmg.validate()
        self.tgmg = tgmg
        self.max_states = max_states
        self._node_names = [n.name for n in tgmg.nodes]
        self._delays = {n.name: int(round(n.delay)) for n in tgmg.nodes}
        for node in tgmg.nodes:
            if abs(node.delay - round(node.delay)) > 1e-9:
                raise GMGError(
                    f"node {node.name!r} has non-integer delay {node.delay}"
                )
        self._delayed_nodes = [n for n in self._node_names if self._delays[n] >= 1]
        self._early_nodes = [n.name for n in tgmg.early_nodes]
        self._in_edges = {n: tgmg.in_edges(n) for n in self._node_names}
        self._out_edges = {n: tgmg.out_edges(n) for n in self._node_names}
        self._edge_count = tgmg.num_edges

    # -- state helpers ---------------------------------------------------------

    def initial_state(self) -> State:
        markings = tuple(e.marking for e in self.tgmg.edges)
        inflight = tuple(
            tuple(0 for _ in range(self._delays[name])) for name in self._delayed_nodes
        )
        guards = tuple(-1 for _ in self._early_nodes)
        return (markings, inflight, guards)

    def _guard_options(self, state: State) -> List[Tuple[Tuple[int, ...], float]]:
        """All assignments of guards to early nodes lacking one, with probabilities."""
        _, _, guards = state
        choices: List[List[Tuple[int, float]]] = []
        for position, name in enumerate(self._early_nodes):
            if guards[position] >= 0:
                choices.append([(guards[position], 1.0)])
            else:
                incoming = self._in_edges[name]
                choices.append([(e.index, e.probability) for e in incoming])
        options: List[Tuple[Tuple[int, ...], float]] = []
        for combo in itertools.product(*choices) if choices else [()]:
            assignment = tuple(index for index, _ in combo)
            probability = 1.0
            for _, p in combo:
                probability *= p
            options.append((assignment, probability))
        return options

    def _step(
        self, state: State, guard_assignment: Tuple[int, ...]
    ) -> Tuple[State, Tuple[str, ...]]:
        """Advance one cycle deterministically given the guard assignment."""
        markings = list(state[0])
        inflight = state[1]

        # 1. Arrivals: firings whose full delay has elapsed deliver tokens.
        for slot, name in enumerate(self._delayed_nodes):
            register = inflight[slot]
            if register and register[-1]:
                count = register[-1]
                for edge in self._out_edges[name]:
                    markings[edge.index] += count

        # 2. Firing fixpoint, one firing per node at most.
        fired: List[str] = []
        fired_set = set()
        guard_of = dict(zip(self._early_nodes, guard_assignment))
        changed = True
        while changed:
            changed = False
            for name in self._node_names:
                if name in fired_set:
                    continue
                incoming = self._in_edges[name]
                if name in guard_of:
                    if markings[guard_of[name]] < 1:
                        continue
                else:
                    if any(markings[e.index] < 1 for e in incoming):
                        continue
                for edge in incoming:
                    markings[edge.index] -= 1
                if self._delays[name] == 0:
                    for edge in self._out_edges[name]:
                        markings[edge.index] += 1
                fired.append(name)
                fired_set.add(name)
                changed = True

        # 3. Shift the in-flight registers and record this cycle's firings.
        # Rebuilt by tuple slicing (one C-level copy) instead of the old
        # list pop()/insert(0, ...) churn, which shifted every element of a
        # depth-d register through Python on every cycle.
        new_inflight = tuple(
            ((1 if name in fired_set else 0),) + inflight[slot][:-1]
            for slot, name in enumerate(self._delayed_nodes)
        )

        # 4. Early nodes keep their guard while stalled, clear it when fired.
        new_guards = []
        for position, name in enumerate(self._early_nodes):
            if name in fired_set:
                new_guards.append(-1)
            else:
                new_guards.append(guard_assignment[position])

        new_state: State = (
            tuple(markings),
            new_inflight,
            tuple(new_guards),
        )
        return new_state, tuple(fired)

    # -- chain construction and solution -------------------------------------------

    def analyze(self) -> MarkovResult:
        """Build the reachable chain, solve the stationary distribution exactly.

        Uses scipy.sparse for the graph analysis when available; otherwise
        falls back to a networkx + dense-numpy path (same results, fine for
        the small chains this analyser targets).
        """
        index_of: Dict[State, int] = {}
        states: List[State] = []
        transitions: List[Tuple[int, int, float]] = []
        reward_rows: List[Dict[str, float]] = []

        def intern(state: State) -> int:
            if state not in index_of:
                if len(states) >= self.max_states:
                    raise StateSpaceError(
                        f"reachable state space exceeds {self.max_states} states"
                    )
                index_of[state] = len(states)
                states.append(state)
                reward_rows.append({})
            return index_of[state]

        start = intern(self.initial_state())
        frontier = [start]
        explored = set()
        while frontier:
            current = frontier.pop()
            if current in explored:
                continue
            explored.add(current)
            state = states[current]
            rewards: Dict[str, float] = {}
            for assignment, probability in self._guard_options(state):
                next_state, fired = self._step(state, assignment)
                target = intern(next_state)
                transitions.append((current, target, probability))
                for name in fired:
                    rewards[name] = rewards.get(name, 0.0) + probability
                if target not in explored:
                    frontier.append(target)
            reward_rows[current] = rewards

        size = len(states)
        if _scipy_sparse_available():
            import scipy.sparse as sp

            rows = [t[0] for t in transitions]
            cols = [t[1] for t in transitions]
            values = [t[2] for t in transitions]
            matrix = sp.csr_matrix((values, (rows, cols)), shape=(size, size))
            recurrent = self._recurrent_class(matrix, start)
            distribution = self._stationary_distribution(matrix, recurrent)
        else:
            recurrent = _recurrent_class_networkx(transitions, size, start)
            distribution = _stationary_distribution_dense(transitions, recurrent)

        rates: Dict[str, float] = {name: 0.0 for name in self._node_names}
        for local_index, state_index in enumerate(recurrent):
            weight = distribution[local_index]
            for name, reward in reward_rows[state_index].items():
                rates[name] += weight * reward

        throughput = float(np.median(np.array(list(rates.values()))))
        return MarkovResult(
            throughput=throughput, num_states=len(recurrent), rates=rates
        )

    @staticmethod
    def _recurrent_class(matrix, start: int) -> List[int]:
        """Indices of the terminal strongly connected class reachable from start."""
        import scipy.sparse.csgraph as csgraph

        n_components, labels = csgraph.connected_components(
            matrix, directed=True, connection="strong"
        )
        # Condensation: a component is terminal if it has no edge leaving it.
        coo = matrix.tocoo()
        leaves = set()
        for i, j in zip(coo.row, coo.col):
            if labels[i] != labels[j]:
                leaves.add(labels[i])
        terminal = [c for c in range(n_components) if c not in leaves]
        # Pick the terminal component reachable from the initial state.  With a
        # single terminal class (the usual case) this is unambiguous.
        reachable = _reachable_set(matrix, start)
        candidates = [c for c in terminal if any(labels[i] == c for i in reachable)]
        if not candidates:
            raise StateSpaceError("no terminal recurrent class found")
        # Deterministic tie-break (lowest component label), matching the
        # networkx fallback path.
        chosen = min(candidates)
        return [i for i in range(matrix.shape[0]) if labels[i] == chosen]

    @staticmethod
    def _stationary_distribution(matrix, recurrent: List[int]) -> np.ndarray:
        """Solve pi P = pi restricted to the recurrent class."""
        sub = matrix[recurrent, :][:, recurrent].toarray()
        size = sub.shape[0]
        # Solve (P^T - I) pi = 0 with the normalisation sum(pi) = 1.
        system = np.vstack([sub.T - np.eye(size), np.ones((1, size))])
        rhs = np.zeros(size + 1)
        rhs[-1] = 1.0
        solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        solution = np.clip(solution, 0.0, None)
        total = solution.sum()
        if total <= 0:
            raise StateSpaceError("failed to solve the stationary distribution")
        return solution / total


def _reachable_set(matrix, start: int) -> List[int]:
    """Indices reachable from ``start`` in the transition graph."""
    import scipy.sparse.csgraph as csgraph

    order = csgraph.breadth_first_order(
        matrix, start, directed=True, return_predecessors=False
    )
    return list(order)


def _scipy_sparse_available() -> bool:
    try:
        import scipy.sparse  # noqa: F401
        import scipy.sparse.csgraph  # noqa: F401
    except Exception:
        return False
    return True


def _recurrent_class_networkx(
    transitions: List[Tuple[int, int, float]], size: int, start: int
) -> List[int]:
    """scipy-free terminal-class detection (same contract as _recurrent_class)."""
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(size))
    graph.add_edges_from((i, j) for i, j, _ in transitions)
    labels = {}
    for label, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            labels[node] = label
    leaves = {labels[i] for i, j, _ in transitions if labels[i] != labels[j]}
    reachable = {start} | nx.descendants(graph, start)
    candidates = sorted(
        {labels[i] for i in reachable if labels[i] not in leaves}
    )
    if not candidates:
        raise StateSpaceError("no terminal recurrent class found")
    chosen = candidates[0]
    return [i for i in range(size) if labels.get(i) == chosen]


def _stationary_distribution_dense(
    transitions: List[Tuple[int, int, float]], recurrent: List[int]
) -> np.ndarray:
    """scipy-free stationary distribution over the recurrent class."""
    local = {state: position for position, state in enumerate(recurrent)}
    size = len(recurrent)
    sub = np.zeros((size, size))
    for i, j, probability in transitions:
        if i in local and j in local:
            sub[local[i], local[j]] += probability
    system = np.vstack([sub.T - np.eye(size), np.ones((1, size))])
    rhs = np.zeros(size + 1)
    rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= 0:
        raise StateSpaceError("failed to solve the stationary distribution")
    return solution / total


def exact_throughput(
    source: Union[RRG, RRConfiguration, TGMG],
    tokens: Optional[Mapping[int, int]] = None,
    buffers: Optional[Mapping[int, int]] = None,
    max_states: int = 200000,
) -> MarkovResult:
    """Exact throughput of a small RRG, configuration or TGMG.

    Raises:
        StateSpaceError: when the reachable state space exceeds ``max_states``.
    """
    if isinstance(source, TGMG):
        tgmg = source
    else:
        tgmg = build_tgmg(source, tokens=tokens, buffers=buffers, refine=True)
    analyzer = MarkovChainAnalyzer(tgmg, max_states=max_states)
    return analyzer.analyze()
