"""LP upper bound on the throughput of a TGMG (problem (4) of the paper).

For a timed guarded marked graph the steady-state throughput is bounded from
above by the optimum of the linear program::

    maximize   phi
    subject to delta(n) * phi <= m_hat(e)                       n simple, e in in(n)
               delta(n) * phi <= sum_e gamma(e) * m_hat(e)      n early
               m_hat(e) = m0(e) + sigma(u) - sigma(v)           e = (u, v)
               0 <= phi <= 1,  sigma free

where ``m_hat`` is the estimated average marking and ``sigma`` is a real
firing-count vector.  The bound is exact for marked graphs without early
evaluation; with early evaluation it is optimistic (the paper reports an
average error of ~12.5 %).
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.gmg.build import build_tgmg
from repro.gmg.graph import TGMG
from repro.lp import Model, SolveStatus
from repro.lp.errors import SolverError


def tgmg_throughput_bound(tgmg: TGMG, backend: str = "auto") -> float:
    """Solve LP (4) for a numeric TGMG and return the throughput upper bound."""
    tgmg.validate()
    model = Model(f"{tgmg.name}-throughput-lp", sense="max")
    phi = model.add_var("phi", lb=0.0, ub=1.0)
    sigma = {
        node.name: model.add_var(f"sigma[{node.name}]", lb=None, ub=None)
        for node in tgmg.nodes
    }

    for node in tgmg.nodes:
        incoming = tgmg.in_edges(node.name)
        if not incoming:
            continue
        if node.early:
            average = 0.0
            for edge in incoming:
                average = average + edge.probability * (
                    edge.marking + sigma[edge.src] - sigma[node.name]
                )
            model.add_constr(
                node.delay * phi <= average, name=f"early[{node.name}]"
            )
        else:
            for edge in incoming:
                model.add_constr(
                    node.delay * phi
                    <= edge.marking + sigma[edge.src] - sigma[node.name],
                    name=f"simple[{node.name}][{edge.index}]",
                )

    model.set_objective(phi)
    solution = model.solve(backend=backend)
    if solution.status is not SolveStatus.OPTIMAL:
        raise SolverError(
            f"throughput LP for {tgmg.name!r} did not solve to optimality: "
            f"{solution.status.value}"
        )
    return float(solution[phi])


def throughput_upper_bound(
    source: Union[RRG, RRConfiguration, TGMG],
    tokens: Optional[Mapping[int, int]] = None,
    buffers: Optional[Mapping[int, int]] = None,
    refine: bool = True,
    backend: str = "auto",
) -> float:
    """Throughput upper bound Theta_lp for an RRG, configuration or TGMG.

    Args:
        source: The system to analyse.  RRGs and configurations are first
            translated to a TGMG via Procedures 1 and 2.
        tokens: Optional per-edge token override (RRG edge index -> R0).
        buffers: Optional per-edge buffer override (RRG edge index -> R).
        refine: Apply the Procedure 2 refinement before bounding (recommended;
            without it the bound is looser for early-evaluation systems).
        backend: LP backend ("auto", "scipy" or "pure").
    """
    if isinstance(source, TGMG):
        tgmg = source
    else:
        tgmg = build_tgmg(source, tokens=tokens, buffers=buffers, refine=refine)
    return tgmg_throughput_bound(tgmg, backend=backend)
