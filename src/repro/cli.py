"""The ``repro`` command line: reproduce the paper through the pipeline.

Subcommands:

* ``list-scenarios`` — every registered workload scenario;
* ``run <target>`` — run an experiment preset (``motivational``, ``table1``,
  ``table2``, ``table2-small``, ``ablations``) or any registry scenario as a
  sharded pipeline sweep;
* ``report <file>`` — re-render the tables of a saved run result;
* ``serve`` — start the optimization service (async JSON-over-HTTP layer
  with request coalescing, batching and tiered caching);
* ``submit <target>`` — send a run request to a running service and render
  the result exactly like ``run`` would;
* ``trace show <trace-id>`` — render a recorded request trace (span tree +
  self-time table) from a live service or a store-side span sink.

Observability: ``run --profile`` / ``submit --profile`` trace the work end
to end and print a profile (plus a ``trace-<id>.json`` Chrome-trace
artifact); ``serve --metrics`` prints a periodic one-line digest, and every
server and fleet router exposes Prometheus text on ``GET /metrics``.

Examples::

    python -m repro list-scenarios
    python -m repro run motivational
    python -m repro run table2-small --shards 2 --store .repro-store
    python -m repro run table2 --names s27 s382 --scale 0.25 --shards 4
    python -m repro run figure1a --param alpha=0.9
    python -m repro run large-scale --size small --optimizer portfolio --time-budget 20
    python -m repro run table1 --output table1.json
    python -m repro report table1.json
    python -m repro serve --store .repro-store
    python -m repro submit table2-small --names s27

Every ``run`` accepts ``--shards`` (process-parallel sweep), ``--store``
(persistent artifact cache: a second identical run is pure disk hits) and
``--seed`` (the root seed all per-job seeds derive from, so serial and
sharded runs print identical tables).  A ``run`` interrupted with Ctrl-C
finishes its in-flight jobs, publishes their artifacts and exits 130; a
second Ctrl-C aborts immediately.

Resilience knobs (see :mod:`repro.resilience`)::

    python -m repro run table2-small --store .s --run-id nightly --shards 2
    python -m repro run --resume nightly --store .s --shards 2
    python -m repro run table2-small --inject store_write:0.1,stage:0.05 \\
        --fault-seed 7
    python -m repro run table2-small --deadline 30
    python -m repro submit table2-small --deadline 30

``--run-id`` journals every completed job next to the store so ``--resume``
can skip it without recomputing (a killed run loses only unjournaled work).
``--inject`` installs a seeded, deterministic fault plan — the same spec and
``--fault-seed`` reproduce the same failure schedule exactly.  ``--deadline``
bounds the whole run; an exact MILP that would overshoot degrades to the
heuristic portfolio and the result is marked ``degraded`` instead of cached.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.presets import RunOptions, run_preset
from repro.experiments.reporting import event_printer, format_table
from repro.pipeline.events import EventLog
from repro.pipeline.runner import PipelineAborted, graceful_interrupts
from repro.workloads.registry import ScenarioError, list_scenarios


def _parse_param(text: str) -> Any:
    try:
        return json.loads(text)
    except ValueError:
        return text


def _scenario_params(items: Sequence[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        key, _, value = item.partition("=")
        params[key] = _parse_param(value)
    return params


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _events(args: argparse.Namespace, log: EventLog):
    printer = event_printer(fmt=getattr(args, "events", None) or "text")

    def observe(event) -> None:
        log(event)
        if not args.quiet:
            printer(event)

    return observe


def _run_options(args: argparse.Namespace) -> RunOptions:
    return RunOptions(
        shards=getattr(args, "shards", 1),
        seed=args.seed,
        store=getattr(args, "store", None),
        cycles=args.cycles,
        epsilon=args.epsilon,
        scale=args.scale,
        names=tuple(args.names) if args.names else None,
        alphas=tuple(args.alphas) if args.alphas else None,
        time_limit=args.time_limit,
        optimizer=getattr(args, "optimizer", None),
        time_budget=getattr(args, "time_budget", None),
        pool_size=getattr(args, "pool_size", None),
        size=getattr(args, "size", None),
        params=_scenario_params(args.param or []),
    )


def _render_result(result: Dict[str, Any], stream) -> None:
    print(format_table(result["headers"], result["rows"]), file=stream, end="")
    for key, value in result.get("summary", {}).items():
        print(f"{key}: {value}", file=stream)


def _write_output(result: Dict[str, Any], args: argparse.Namespace) -> None:
    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        if not args.quiet:
            print(f"wrote {path}")


def _fault_plan(args: argparse.Namespace):
    """The FaultPlan declared by --inject/--fault-seed (None without them)."""
    if not getattr(args, "inject", None):
        return None
    from repro.resilience import FaultPlan

    return FaultPlan.from_spec(args.inject, seed=getattr(args, "fault_seed", 0))


def _open_journal(args: argparse.Namespace, run_id: str):
    """The RunJournal for --run-id/--resume (requires --store)."""
    from repro.resilience import RunJournal

    if args.store is None:
        raise SystemExit(
            "error: --run-id/--resume need --store "
            "(the journal lives next to the artifact store)"
        )
    return RunJournal.for_store(args.store, run_id)


def _merge_spans(
    trace_id: str, extra: Optional[Sequence[Dict[str, Any]]] = None
) -> List[Dict[str, Any]]:
    """Local ring spans of one trace merged with remote ones (ring wins)."""
    from repro.obs.trace import ring_spans

    by_id: Dict[str, Dict[str, Any]] = {
        record["span_id"]: record
        for record in extra or []
        if isinstance(record, dict) and record.get("span_id")
    }
    for record in ring_spans(trace_id):
        by_id[record["span_id"]] = record
    return sorted(
        by_id.values(),
        key=lambda r: (r.get("started_unix") or 0.0, r.get("span_id") or ""),
    )


def _print_profile(
    trace_id: str,
    spans: Sequence[Dict[str, Any]],
    quiet: bool = False,
) -> None:
    """The ``--profile`` report: span tree, self-time table, Chrome JSON."""
    from repro.obs.profile import format_profile, format_tree, write_chrome_trace

    print(f"trace: {trace_id}")
    print(format_tree(spans))
    print(format_profile(spans))
    path = write_chrome_trace(Path(f"trace-{trace_id}.json"), spans)
    if not quiet:
        print(f"profile: wrote {path} (open in chrome://tracing or Perfetto)")


def cmd_run(args: argparse.Namespace) -> int:
    from repro.resilience import injected, journaling, optional_scope
    from repro.resilience.journal import JournalError

    if args.deadline is not None and args.deadline <= 0:
        print("error: --deadline must be positive seconds", file=sys.stderr)
        return 2
    try:
        plan = _fault_plan(args)
    except ValueError as exc:
        print(f"error: bad --inject spec: {exc}", file=sys.stderr)
        return 2

    if args.run_id and args.resume:
        print(
            "error: use --run-id to start a journaled run or --resume to "
            "continue one, not both",
            file=sys.stderr,
        )
        return 2
    target: Optional[str] = args.target
    options = _run_options(args)
    run_id = args.run_id or args.resume
    journal = None
    try:
        if run_id is not None:
            journal = _open_journal(args, run_id)
        if args.resume:
            manifest = journal.manifest()
            if manifest is None:
                print(
                    f"error: no journaled run {run_id!r} under {args.store} "
                    "(start one with --run-id)",
                    file=sys.stderr,
                )
                return 2
            if target is not None and target != manifest.get("target"):
                print(
                    f"error: --resume {run_id} journals target "
                    f"{manifest.get('target')!r}, not {target!r}",
                    file=sys.stderr,
                )
                return 2
            # The manifest is the source of truth: a resume re-declares the
            # original compute options bit-identically; only execution knobs
            # (--shards/--store) come from this invocation.
            target = str(manifest["target"])
            options = RunOptions.from_mapping(
                manifest.get("options") or {}
            ).with_execution(args.shards, args.store)
        if target is None:
            print(
                "error: a run target is required (or --resume <run-id>)",
                file=sys.stderr,
            )
            return 2
        if journal is not None:
            journal.write_manifest(target, options.describe())
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    log = EventLog()
    root_trace = None
    try:
        with contextlib.ExitStack() as stack:
            if getattr(args, "profile", False):
                from repro.obs import trace as _obs

                if args.store is not None:
                    # Spans also land next to the store, so a later
                    # `repro trace show --store` finds this run.
                    _obs.set_trace_sink(_obs.store_sink_path(args.store))
                root_trace = stack.enter_context(
                    _obs.start_trace(f"run:{target}")
                )
            stack.enter_context(graceful_interrupts())
            stack.enter_context(injected(plan))
            stack.enter_context(journaling(journal))
            stack.enter_context(optional_scope(args.deadline))
            result = run_preset(target, options, _events(args, log))
    except PipelineAborted as exc:
        hint = (
            f"resume with --resume {run_id}" if journal is not None
            else "re-run to finish"
        )
        print(
            f"interrupted: {exc.completed}/{exc.total} job(s) completed "
            f"(published artifacts are kept; {hint})",
            file=sys.stderr,
        )
        return 130
    _render_result(result, sys.stdout)
    for entry in result.get("degraded") or []:
        print(
            f"degraded: {entry.get('job_id')}: {entry.get('reason')} "
            "(answer is a fallback; it was not cached)",
            file=sys.stderr,
        )
    if args.store is not None and not args.quiet:
        done = len(log.of_kind("job-done"))
        print(f"store: {log.cached_jobs}/{done} job(s) served from {args.store}")
    _write_output(result, args)
    if root_trace is not None:
        _print_profile(
            root_trace.trace_id,
            _merge_spans(root_trace.trace_id),
            quiet=args.quiet,
        )
    return 0


def cmd_list_scenarios(args: argparse.Namespace) -> int:
    specs = list_scenarios(family=args.family, tag=args.tag)
    rows = [
        (
            spec.name,
            spec.family,
            ",".join(f"{k}={v}" for k, v in sorted(spec.defaults.items())),
            spec.description,
        )
        for spec in specs
    ]
    print(format_table(["scenario", "family", "defaults", "description"], rows),
          end="")
    print(f"{len(specs)} scenario(s); run one with: python -m repro run <scenario>")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.file)
    try:
        result = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read result file {path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(result, dict) or "headers" not in result:
        print(f"{path} is not a repro run result", file=sys.stderr)
        return 2
    print(f"target: {result.get('target', '?')}")
    _render_result(result, sys.stdout)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        if args.workers > 1:
            from repro.service.fleet import serve_fleet

            return serve_fleet(
                host=args.host,
                port=args.port,
                store=args.store,
                workers=args.workers,
                shards=args.shards,
                queue_limit=args.queue_limit,
                quiet=args.quiet,
                metrics_digest=args.metrics,
            )
        # --workers 1 is the unchanged single-process server: same code
        # path as before fleet mode existed, byte-identical behavior.
        from repro.service.server import serve

        return serve(
            host=args.host,
            port=args.port,
            store=args.store,
            shards=args.shards,
            queue_limit=args.queue_limit,
            quiet=args.quiet,
            metrics_digest=args.metrics,
        )
    except OSError as exc:
        # Bind failures (port in use, bad address) are user input errors,
        # not tracebacks.
        print(f"error: cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.pipeline.events import PipelineEvent
    from repro.service.client import ServiceBusy, ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port, timeout=args.timeout)
    # One source of truth for what counts as a compute option: anything
    # RunOptions.describe() reports and the caller actually set.  A flag
    # added to add_compute_options/RunOptions flows through automatically,
    # keeping `submit` bit-identical to `run`.
    options: Dict[str, Any] = {
        key: value
        for key, value in _run_options(args).describe().items()
        if value not in (None, {}, [])
    }

    printer = event_printer(fmt=getattr(args, "events", None) or "text")

    def on_event(event: Dict[str, Any]) -> None:
        if not args.quiet:
            printer(PipelineEvent(**event))

    if args.deadline is not None and args.deadline <= 0:
        print("error: --deadline must be positive seconds", file=sys.stderr)
        return 2

    profile_cm: Any = contextlib.nullcontext()
    if getattr(args, "profile", False):
        from repro.obs import trace as _obs

        # The client attaches the ambient trace ref to the submit body, so
        # router route-spans and worker request/execute spans all land in
        # this trace; the remote halves are fetched back below.
        profile_cm = _obs.start_trace(f"submit:{args.target}")

    trace_id: Optional[str] = None
    try:
        with profile_cm as root:
            trace_id = getattr(root, "trace_id", None)
            record = client.submit_run(
                args.target, options, deadline=args.deadline
            )
            if args.no_wait:
                print(json.dumps(record, indent=2))
                return 0
            if record.get("status") == "done":
                document = client.result(record["id"])
            else:
                document = client.wait(
                    record["id"], timeout=args.timeout, on_event=on_event
                )
    except ServiceBusy as exc:
        print(f"service busy: {exc}", file=sys.stderr)
        return 3
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2

    result = document.get("result") or {}
    if not args.quiet and document.get("cached"):
        print(f"service: answered from {document['cached']} cache")
    if isinstance(result, dict):
        for entry in result.get("degraded") or []:
            print(
                f"degraded: {entry.get('job_id')}: {entry.get('reason')} "
                "(answer is a fallback; the service did not cache it)",
                file=sys.stderr,
            )
    if isinstance(result, dict) and "headers" in result:
        _render_result(result, sys.stdout)
    else:
        print(json.dumps(result, indent=2))
    _write_output(result, args)
    if trace_id is not None:
        remote: List[Dict[str, Any]] = []
        try:
            remote = client.trace_spans(trace_id).get("spans") or []
        except (ServiceError, OSError, TimeoutError, ValueError):
            # Server-side spans are a bonus; the local root still profiles.
            pass
        _print_profile(
            trace_id, _merge_spans(trace_id, remote), quiet=args.quiet
        )
    return 0


def cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.obs.profile import format_profile, format_tree

    spans: List[Dict[str, Any]]
    if args.store is not None:
        from repro.obs.trace import read_sink, store_sink_path

        spans = [
            record
            for record in read_sink(store_sink_path(args.store), args.trace_id)
            if isinstance(record, dict)
        ]
    else:
        from repro.service.client import ServiceClient, ServiceError

        client = ServiceClient(
            host=args.host, port=args.port, timeout=args.timeout
        )
        try:
            spans = client.trace_spans(args.trace_id).get("spans") or []
        except (ServiceError, OSError, TimeoutError) as exc:
            print(f"service error: {exc}", file=sys.stderr)
            return 2
    if not spans:
        print(f"no spans recorded for trace {args.trace_id!r}", file=sys.stderr)
        return 1
    print(f"trace: {args.trace_id}")
    print(format_tree(spans))
    print(format_profile(spans))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_compute_options(command: argparse.ArgumentParser) -> None:
        command.add_argument("--seed", type=int, default=None,
                             help="root seed (default: the experiment's published seed)")
        command.add_argument("--cycles", type=int, default=None,
                             help="simulation cycles per configuration")
        command.add_argument("--epsilon", type=float, default=None,
                             help="MIN_EFF_CYC throughput step")
        command.add_argument("--scale", type=float, default=None,
                             help="benchmark size multiplier (table1/table2)")
        command.add_argument("--names", nargs="+", default=None,
                             help="circuit subset (table2) or circuit (table1)")
        command.add_argument("--alphas", nargs="+", type=float, default=None,
                             help="alpha values (motivational)")
        command.add_argument("--time-limit", type=float, default=60.0,
                             help="MILP time limit in seconds (default 60)")
        command.add_argument("--optimizer", default=None,
                             choices=("milp", "descent", "anneal", "portfolio"),
                             help="Optimize stage engine: the exact MILP "
                                  "(default) or the heuristic search")
        command.add_argument("--time-budget", type=float, default=None,
                             help="search budget in seconds (heuristic "
                                  "optimizers; default 30)")
        command.add_argument("--pool-size", type=_positive_int, default=None,
                             help="candidate moves evaluated per batched "
                                  "search step (heuristic optimizers; "
                                  "default 24)")
        command.add_argument("--size", default=None,
                             choices=("tiny", "small", "medium", "large"),
                             help="large-scale preset instance size "
                                  "(default small)")
        command.add_argument("--param", action="append", default=None,
                             metavar="KEY=VALUE",
                             help="scenario parameter override (repeatable)")
        command.add_argument("--output", default=None,
                             help="write the run result as JSON to this file")
        command.add_argument("--events", choices=("text", "json"), default="text",
                             help="progress event format (default text)")
        command.add_argument("--quiet", action="store_true",
                             help="suppress progress events")

    run = sub.add_parser("run", help="run an experiment preset or scenario")
    run.add_argument("target", nargs="?", default=None,
                     help="experiment preset or scenario name "
                          "(optional with --resume)")
    run.add_argument("--shards", type=int, default=1,
                     help="worker processes (default 1 = serial)")
    run.add_argument("--store", default=None,
                     help="persistent artifact store directory")
    run.add_argument("--deadline", type=float, default=None,
                     help="overall run budget in seconds; an exact MILP that "
                          "would overshoot degrades to the heuristic "
                          "portfolio instead of failing")
    run.add_argument("--inject", default=None,
                     metavar="SITE:RATE[,SITE:RATE...]",
                     help="seeded deterministic fault injection, e.g. "
                          "store_write:0.1,stage:0.05 (sites: store_read, "
                          "store_write, stage, worker_start, solver_stall, "
                          "connection)")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="root seed of the --inject fault plan (default 0)")
    run.add_argument("--run-id", default=None,
                     help="journal completed jobs under this id next to "
                          "--store, enabling --resume after a crash")
    run.add_argument("--resume", default=None, metavar="RUN_ID",
                     help="resume a journaled run: re-declares its target "
                          "and options, skips journaled-complete jobs")
    run.add_argument("--profile", action="store_true",
                     help="trace the run and print a span tree, a self-time "
                          "table and a chrome://tracing JSON artifact")
    add_compute_options(run)
    run.set_defaults(func=cmd_run)

    ls = sub.add_parser("list-scenarios", help="list registered scenarios")
    ls.add_argument("--family", default=None,
                    help="filter by family (example/iscas/random/ablation)")
    ls.add_argument("--tag", default=None, help="filter by tag")
    ls.set_defaults(func=cmd_list_scenarios)

    rep = sub.add_parser("report", help="re-render a saved run result")
    rep.add_argument("file", help="result JSON written by `run --output`")
    rep.set_defaults(func=cmd_report)

    srv = sub.add_parser("serve", help="start the optimization service")
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument("--port", type=int, default=8642,
                     help="listen port (0 picks a free one; default 8642)")
    srv.add_argument("--store", default=None,
                     help="persistent artifact store shared by all requests")
    srv.add_argument("--shards", type=int, default=1,
                     help="worker processes per pipeline run (default 1)")
    srv.add_argument("--queue-limit", type=int, default=32,
                     help="max queued requests before 429 (default 32)")
    srv.add_argument("--workers", type=int, default=1,
                     help="worker processes; >1 starts a fleet: a router on "
                          "--port sharding requests across N single-process "
                          "servers by result fingerprint (default 1)")
    srv.add_argument("--metrics", action="store_true",
                     help="print a one-line metrics digest every few seconds "
                          "(the full exposition lives on GET /metrics)")
    srv.add_argument("--quiet", action="store_true",
                     help="suppress service log lines")
    srv.set_defaults(func=cmd_serve)

    sbm = sub.add_parser("submit",
                         help="submit a run request to a running service")
    sbm.add_argument("target", help="experiment preset or scenario name")
    sbm.add_argument("--host", default="127.0.0.1", help="service host")
    sbm.add_argument("--port", type=int, default=8642, help="service port")
    sbm.add_argument("--timeout", type=float, default=600.0,
                     help="overall wait timeout in seconds (default 600)")
    sbm.add_argument("--deadline", type=float, default=None,
                     help="server-side compute budget in seconds (the run "
                          "degrades rather than overshoot it)")
    sbm.add_argument("--no-wait", action="store_true",
                     help="print the queued record instead of waiting")
    sbm.add_argument("--profile", action="store_true",
                     help="trace the request end to end (client, router, "
                          "worker) and print the merged span profile")
    add_compute_options(sbm)
    sbm.set_defaults(func=cmd_submit)

    trc = sub.add_parser("trace", help="inspect recorded request traces")
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    show = trc_sub.add_parser(
        "show", help="render one trace as a span tree + self-time table"
    )
    show.add_argument("trace_id", help="trace id printed by --profile runs")
    show.add_argument("--store", default=None,
                      help="read spans from the JSONL sink next to this "
                           "artifact store instead of a live service")
    show.add_argument("--host", default="127.0.0.1", help="service host")
    show.add_argument("--port", type=int, default=8642, help="service port")
    show.add_argument("--timeout", type=float, default=30.0,
                      help="request timeout in seconds (default 30)")
    show.set_defaults(func=cmd_trace_show)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed mid-table (e.g. `... | head`); exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
