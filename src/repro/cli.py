"""The ``repro`` command line: reproduce the paper through the pipeline.

Subcommands:

* ``list-scenarios`` — every registered workload scenario;
* ``run <target>`` — run an experiment preset (``motivational``, ``table1``,
  ``table2``, ``table2-small``, ``ablations``) or any registry scenario as a
  sharded pipeline sweep;
* ``report <file>`` — re-render the tables of a saved run result.

Examples::

    python -m repro list-scenarios
    python -m repro run motivational
    python -m repro run table2-small --shards 2 --store .repro-store
    python -m repro run table2 --names s27 s382 --scale 0.25 --shards 4
    python -m repro run figure1a --param alpha=0.9
    python -m repro run table1 --output table1.json
    python -m repro report table1.json

Every ``run`` accepts ``--shards`` (process-parallel sweep), ``--store``
(persistent artifact cache: a second identical run is pure disk hits) and
``--seed`` (the root seed all per-job seeds derive from, so serial and
sharded runs print identical tables).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.core.milp import MilpSettings
from repro.experiments.ablations import (
    average_error,
    early_evaluation_placement_study,
    lp_error_study,
)
from repro.experiments.motivational import run_motivational
from repro.experiments.reporting import event_printer, format_table
from repro.experiments.table1 import (
    table1_as_rows,
    table1_from_payload,
    table1_job,
)
from repro.experiments.table2 import (
    average_improvement,
    run_table2,
    table2_as_rows,
)
from repro.pipeline.events import EventLog
from repro.pipeline.runner import run_jobs
from repro.pipeline.stages import BuildSpec, Job, OptimizeParams, SimulateParams
from repro.workloads.examples import figure1a_rrg
from repro.workloads.registry import (
    ScenarioError,
    has_scenario,
    list_scenarios,
    scenario,
)

#: run targets that are not plain registry scenarios.
EXPERIMENT_TARGETS = (
    "motivational",
    "table1",
    "table2",
    "table2-small",
    "ablations",
)

TABLE1_HEADERS = ["name", "tau", "Theta_lp", "Theta", "err%", "xi_lp", "xi"]
TABLE2_HEADERS = [
    "name", "|N1|", "|N2|", "|E|", "xi*", "xi_nee", "xi_lp", "xi_sim", "I%",
]


def _parse_param(text: str) -> Any:
    try:
        return json.loads(text)
    except ValueError:
        return text


def _scenario_params(items: Sequence[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        key, _, value = item.partition("=")
        params[key] = _parse_param(value)
    return params


def _events(args: argparse.Namespace, log: EventLog):
    printer = event_printer()

    def observe(event) -> None:
        log(event)
        if not args.quiet:
            printer(event)

    return observe


def _settings(args: argparse.Namespace) -> MilpSettings:
    return MilpSettings(time_limit=args.time_limit)


def _result(
    target: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    summary: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "target": target,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "summary": summary,
    }


def _run_motivational(args: argparse.Namespace, log: EventLog) -> Dict[str, Any]:
    rows = run_motivational(
        alphas=tuple(args.alphas or (0.5, 0.9)),
        cycles=args.cycles or 20000,
        seed=args.seed if args.seed is not None else 1,
        shards=args.shards,
        store=args.store,
        events=_events(args, log),
    )
    formatted = [
        (
            f"Figure {row.figure}",
            row.alpha,
            round(row.cycle_time, 2),
            round(row.exact, 4),
            round(row.simulated, 4),
            round(row.lp_bound, 4),
            "-" if row.expected is None else round(row.expected, 4),
        )
        for row in rows
    ]
    headers = ["config", "alpha", "tau", "Theta", "Theta_sim", "Theta_lp", "paper"]
    return _result("motivational", headers, formatted, {})


def _run_table1(args: argparse.Namespace, log: EventLog) -> Dict[str, Any]:
    circuit = (args.names or ["s526"])[0]
    # --seed is the root: it moves both graph generation and the simulation
    # lanes (defaults reproduce examples/pareto_exploration.py).
    job = table1_job(
        BuildSpec.from_scenario(
            "iscas",
            name=circuit,
            scale=args.scale if args.scale is not None else 0.4,
            seed=args.seed if args.seed is not None else 42,
        ),
        epsilon=args.epsilon or 0.05,
        cycles=args.cycles or 4000,
        seed=args.seed if args.seed is not None else 7,
        settings=_settings(args),
        job_id=circuit,
    )
    payload = run_jobs(
        [job], shards=args.shards, store=args.store, events=_events(args, log)
    )[0]
    result = table1_from_payload(payload)
    return _result(
        "table1",
        TABLE1_HEADERS,
        table1_as_rows(result),
        {"delta_percent": round(result.delta_percent, 3)},
    )


def _run_table2(args: argparse.Namespace, log: EventLog, small: bool) -> Dict[str, Any]:
    if small:
        defaults = {"scale": 0.15, "names": ["s27", "s208", "s420"],
                    "epsilon": 0.1, "cycles": 1500}
    else:
        defaults = {"scale": 0.25, "names": None, "epsilon": 0.05, "cycles": 4000}
    rows = run_table2(
        scale=args.scale if args.scale is not None else defaults["scale"],
        names=args.names or defaults["names"],
        epsilon=args.epsilon or defaults["epsilon"],
        cycles=args.cycles or defaults["cycles"],
        seed=args.seed if args.seed is not None else 2009,
        settings=_settings(args),
        shards=args.shards,
        store=args.store,
        events=_events(args, log),
    )
    return _result(
        "table2-small" if small else "table2",
        TABLE2_HEADERS,
        table2_as_rows(rows),
        {"average_improvement_percent": round(average_improvement(rows), 3)},
    )


def _run_ablations(args: argparse.Namespace, log: EventLog) -> Dict[str, Any]:
    events = _events(args, log)
    placement = early_evaluation_placement_study(
        epsilon=args.epsilon or 0.02,
        cycles=args.cycles or 4000,
        seed=args.seed if args.seed is not None else 3,
        settings=_settings(args),
        shards=args.shards,
        store=args.store,
        events=events,
    )
    samples = lp_error_study(
        [figure1a_rrg(0.8)],
        epsilon=0.1,
        cycles=args.cycles or 4000,
        seed=args.seed if args.seed is not None else 5,
        settings=_settings(args),
        shards=args.shards,
        store=args.store,
        events=events,
    )
    rows = [
        ("placement: I% with early join", round(placement.improvement_with_early, 2)),
        ("placement: I% without early join",
         round(placement.improvement_without_early, 2)),
        ("LP bound: samples", len(samples)),
        ("LP bound: average |err|%", round(average_error(samples), 2)),
    ]
    return _result("ablations", ["observation", "value"], rows, {})


def _run_scenario(args: argparse.Namespace, log: EventLog) -> Dict[str, Any]:
    params = _scenario_params(args.param or [])
    # --seed is the root: when the scenario generates from a seed and the
    # user did not pin one with --param seed=..., the root seed drives it.
    if args.seed is not None and "seed" not in params and (
        "seed" in scenario(args.target).defaults
    ):
        params["seed"] = args.seed
    job = Job(
        job_id=args.target,
        build=BuildSpec(scenario=args.target, params=params),
        optimize=OptimizeParams.from_settings(
            _settings(args), k=5, epsilon=args.epsilon or 0.05
        ),
        simulate=SimulateParams(
            cycles=args.cycles or 4000,
            seed=args.seed if args.seed is not None else 7,
        ),
    )
    payload = run_jobs(
        [job], shards=args.shards, store=args.store, events=_events(args, log)
    )[0]
    result = table1_from_payload(payload)
    return _result(
        args.target,
        TABLE1_HEADERS,
        table1_as_rows(result),
        {"delta_percent": round(result.delta_percent, 3)},
    )


def _render_result(result: Dict[str, Any], stream) -> None:
    print(format_table(result["headers"], result["rows"]), file=stream, end="")
    for key, value in result.get("summary", {}).items():
        print(f"{key}: {value}", file=stream)


def cmd_run(args: argparse.Namespace) -> int:
    target = args.target
    log = EventLog()
    if target == "motivational":
        result = _run_motivational(args, log)
    elif target == "table1":
        result = _run_table1(args, log)
    elif target in ("table2", "table2-small"):
        result = _run_table2(args, log, small=target.endswith("small"))
    elif target == "ablations":
        result = _run_ablations(args, log)
    elif has_scenario(target):
        result = _run_scenario(args, log)
    else:
        known = ", ".join(EXPERIMENT_TARGETS)
        print(
            f"unknown target {target!r}; expected one of {known} "
            "or a scenario name (see list-scenarios)",
            file=sys.stderr,
        )
        return 2
    _render_result(result, sys.stdout)
    if args.store is not None and not args.quiet:
        done = len(log.of_kind("job-done"))
        print(f"store: {log.cached_jobs}/{done} job(s) served from {args.store}")
    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        if not args.quiet:
            print(f"wrote {path}")
    return 0


def cmd_list_scenarios(args: argparse.Namespace) -> int:
    specs = list_scenarios(family=args.family, tag=args.tag)
    rows = [
        (
            spec.name,
            spec.family,
            ",".join(f"{k}={v}" for k, v in sorted(spec.defaults.items())),
            spec.description,
        )
        for spec in specs
    ]
    print(format_table(["scenario", "family", "defaults", "description"], rows),
          end="")
    print(f"{len(specs)} scenario(s); run one with: python -m repro run <scenario>")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.file)
    try:
        result = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read result file {path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(result, dict) or "headers" not in result:
        print(f"{path} is not a repro run result", file=sys.stderr)
        return 2
    print(f"target: {result.get('target', '?')}")
    _render_result(result, sys.stdout)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an experiment preset or scenario")
    run.add_argument("target", help="experiment preset or scenario name")
    run.add_argument("--shards", type=int, default=1,
                     help="worker processes (default 1 = serial)")
    run.add_argument("--seed", type=int, default=None,
                     help="root seed (default: the experiment's published seed)")
    run.add_argument("--store", default=None,
                     help="persistent artifact store directory")
    run.add_argument("--cycles", type=int, default=None,
                     help="simulation cycles per configuration")
    run.add_argument("--epsilon", type=float, default=None,
                     help="MIN_EFF_CYC throughput step")
    run.add_argument("--scale", type=float, default=None,
                     help="benchmark size multiplier (table1/table2)")
    run.add_argument("--names", nargs="+", default=None,
                     help="circuit subset (table2) or circuit (table1)")
    run.add_argument("--alphas", nargs="+", type=float, default=None,
                     help="alpha values (motivational)")
    run.add_argument("--time-limit", type=float, default=60.0,
                     help="MILP time limit in seconds (default 60)")
    run.add_argument("--param", action="append", default=None,
                     metavar="KEY=VALUE",
                     help="scenario parameter override (repeatable)")
    run.add_argument("--output", default=None,
                     help="write the run result as JSON to this file")
    run.add_argument("--quiet", action="store_true",
                     help="suppress progress events")
    run.set_defaults(func=cmd_run)

    ls = sub.add_parser("list-scenarios", help="list registered scenarios")
    ls.add_argument("--family", default=None,
                    help="filter by family (example/iscas/random/ablation)")
    ls.add_argument("--tag", default=None, help="filter by tag")
    ls.set_defaults(func=cmd_list_scenarios)

    rep = sub.add_parser("report", help="re-render a saved run result")
    rep.add_argument("file", help="result JSON written by `run --output`")
    rep.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed mid-table (e.g. `... | head`); exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
