"""Hand-built example RRGs, including the paper's motivational example.

The motivational example (Figures 1 and 2 of the paper) is a five-node loop:
three unit-delay blocks ``F1, F2, F3``, a zero-delay block ``f`` that fans out
to a multiplexer ``m`` through two parallel channels, and the multiplexer
feeding back to ``F1``.  The multiplexer selects its top input with
probability ``alpha``.

* Figure 1(a): one token between ``m`` and ``F1``, three tokens on the top
  ``f -> m`` channel; cycle time 3, throughput 1.
* Figure 1(b): one retiming move plus two bubbles; cycle time 1; with early
  evaluation the throughput is ~0.491 at alpha = 0.5 and ~0.719 at
  alpha = 0.9.
* Figure 2: the optimal retiming-and-recycling solution; the bottom channel
  carries two anti-tokens and the throughput is exactly ``1 / (3 - 2 alpha)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.rrg import RRG


def _motivational_skeleton(alpha: float, name: str) -> RRG:
    """Nodes and edge order shared by all motivational-example variants.

    Edge order (indices): 0: m->F1, 1: F1->F2, 2: F2->F3, 3: F3->f,
    4: f->m (top, probability alpha), 5: f->m (bottom, probability 1-alpha).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie strictly between 0 and 1, got {alpha}")
    rrg = RRG(name)
    rrg.add_node("m", delay=0.0, early=True)
    rrg.add_node("F1", delay=1.0)
    rrg.add_node("F2", delay=1.0)
    rrg.add_node("F3", delay=1.0)
    rrg.add_node("f", delay=0.0)
    return rrg


def figure1a_rrg(alpha: float = 0.5, name: str = "figure1a") -> RRG:
    """The initial elastic system of Figure 1(a): cycle time 3, throughput 1."""
    rrg = _motivational_skeleton(alpha, name)
    rrg.add_edge("m", "F1", tokens=1, buffers=1)
    rrg.add_edge("F1", "F2", tokens=0, buffers=0)
    rrg.add_edge("F2", "F3", tokens=0, buffers=0)
    rrg.add_edge("F3", "f", tokens=0, buffers=0)
    rrg.add_edge("f", "m", tokens=3, buffers=3, probability=alpha)
    rrg.add_edge("f", "m", tokens=0, buffers=0, probability=1.0 - alpha)
    rrg.validate()
    return rrg


def figure1b_rrg(alpha: float = 0.5, name: str = "figure1b") -> RRG:
    """Figure 1(b): one retiming move and two bubbles; cycle time 1."""
    rrg = _motivational_skeleton(alpha, name)
    rrg.add_edge("m", "F1", tokens=0, buffers=0)
    rrg.add_edge("F1", "F2", tokens=1, buffers=1)
    rrg.add_edge("F2", "F3", tokens=0, buffers=1)
    rrg.add_edge("F3", "f", tokens=0, buffers=0)
    rrg.add_edge("f", "m", tokens=3, buffers=3, probability=alpha)
    rrg.add_edge("f", "m", tokens=0, buffers=1, probability=1.0 - alpha)
    rrg.validate()
    return rrg


def figure2_rrg(alpha: float = 0.5, name: str = "figure2") -> RRG:
    """Figure 2: the optimal solution with early evaluation.

    Obtained from Figure 1(a) by the retiming vector r(m) = r(F1) = -2,
    r(F2) = -1, r(F3) = r(f) = 0 plus recycling; the bottom channel into the
    multiplexer carries two anti-tokens and the exact throughput is
    ``1 / (3 - 2 alpha)``.
    """
    rrg = _motivational_skeleton(alpha, name)
    rrg.add_edge("m", "F1", tokens=1, buffers=1)
    rrg.add_edge("F1", "F2", tokens=1, buffers=1)
    rrg.add_edge("F2", "F3", tokens=1, buffers=1)
    rrg.add_edge("F3", "f", tokens=0, buffers=0)
    rrg.add_edge("f", "m", tokens=1, buffers=1, probability=alpha)
    rrg.add_edge("f", "m", tokens=-2, buffers=0, probability=1.0 - alpha)
    rrg.validate()
    return rrg


def figure2_expected_throughput(alpha: float) -> float:
    """The analytical throughput of the Figure 2 configuration."""
    return 1.0 / (3.0 - 2.0 * alpha)


def linear_pipeline(
    stages: int = 4,
    delays: Optional[Sequence[float]] = None,
    tokens_per_stage: int = 1,
    name: str = "pipeline",
) -> RRG:
    """A closed linear pipeline: ``n0 -> n1 -> ... -> n_{k-1} -> n0``.

    Every stage edge carries ``tokens_per_stage`` tokens (and as many buffers),
    so the initial throughput is 1 and the cycle time equals the largest stage
    delay when each edge holds at least one buffer.
    """
    if stages < 2:
        raise ValueError("a pipeline needs at least two stages")
    if delays is None:
        delays = [float(i + 1) for i in range(stages)]
    if len(delays) != stages:
        raise ValueError("delays must have one entry per stage")
    rrg = RRG(name)
    for i in range(stages):
        rrg.add_node(f"s{i}", delay=float(delays[i]))
    for i in range(stages):
        rrg.add_edge(
            f"s{i}",
            f"s{(i + 1) % stages}",
            tokens=tokens_per_stage,
            buffers=tokens_per_stage,
        )
    rrg.validate()
    return rrg


def ring_rrg(
    length: int = 5,
    total_tokens: int = 2,
    delay: float = 1.0,
    name: str = "ring",
) -> RRG:
    """A single-token-constrained ring of identical unit blocks.

    The ``total_tokens`` tokens are spread as evenly as possible around the
    ring.  The throughput of such a marked-graph ring is
    ``total_tokens / length`` when every edge holds one buffer.
    """
    if length < 2:
        raise ValueError("ring length must be at least 2")
    if not 0 < total_tokens <= length:
        raise ValueError("total_tokens must lie in [1, length]")
    rrg = RRG(name)
    for i in range(length):
        rrg.add_node(f"n{i}", delay=delay)
    for i in range(length):
        tokens = 1 if i < total_tokens else 0
        rrg.add_edge(f"n{i}", f"n{(i + 1) % length}", tokens=tokens, buffers=1)
    rrg.validate()
    return rrg


def unbalanced_fork_join(
    alpha: float = 0.8,
    long_branch_delay: float = 8.0,
    short_branch_delay: float = 1.0,
    long_branch_stages: int = 4,
    name: str = "fork-join",
) -> RRG:
    """A fork/join loop whose join is an early-evaluation multiplexer.

    The long branch is a chain of ``long_branch_stages`` blocks that together
    account for ``long_branch_delay``; it is selected with probability
    ``1 - alpha``.  With early evaluation, bubbles inserted along the long
    branch cut the cycle time while barely hurting throughput (the branch is
    rarely waited for), which is exactly the situation where
    retiming-and-recycling beats plain retiming.  With late evaluation the
    same bubbles stall every token, so the optimisation gains nothing.
    """
    if long_branch_stages < 1:
        raise ValueError("the long branch needs at least one stage")
    rrg = RRG(name)
    rrg.add_node("src", delay=1.0)
    stage_delay = float(long_branch_delay) / long_branch_stages
    for i in range(long_branch_stages):
        rrg.add_node(f"long{i}", delay=stage_delay)
    rrg.add_node("short", delay=float(short_branch_delay))
    rrg.add_node("join", delay=0.0, early=True)
    rrg.add_node("sink", delay=1.0)

    rrg.add_edge("src", "long0", tokens=0, buffers=0)
    for i in range(long_branch_stages - 1):
        rrg.add_edge(f"long{i}", f"long{i + 1}", tokens=0, buffers=0)
    rrg.add_edge("src", "short", tokens=0, buffers=0)
    rrg.add_edge(
        f"long{long_branch_stages - 1}",
        "join",
        tokens=0,
        buffers=0,
        probability=1.0 - alpha,
    )
    rrg.add_edge("short", "join", tokens=0, buffers=0, probability=alpha)
    rrg.add_edge("join", "sink", tokens=0, buffers=0)
    rrg.add_edge("sink", "src", tokens=1, buffers=1)
    rrg.validate()
    return rrg
