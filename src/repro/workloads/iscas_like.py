"""Synthetic ISCAS89-like benchmark structures (Table 2 of the paper).

The paper extracts the largest strongly connected component of each ISCAS89
circuit and keeps only its graph structure; everything else (delays, tokens,
early-evaluation marking, branch probabilities) is randomised.  The original
netlists are not shipped with this reproduction, so this module synthesises
strongly connected multigraphs that match the *published sizes* of every
benchmark row of Table 2 — the number of simple nodes |N1|, of
early-evaluation nodes |N2| and of edges |E| — and then applies the same
randomisation recipe (:mod:`repro.workloads.random_rrg`).

Because the structures are synthetic, absolute cycle times and throughputs
differ from the paper; the reproduction targets the qualitative behaviour
(who wins, where improvements vanish) rather than the exact numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.rrg import RRG
from repro.workloads.random_rrg import RandomRRGConfig, _feedback_edges


@dataclass(frozen=True)
class ISCASLikeSpec:
    """Size specification of one Table 2 benchmark.

    Attributes:
        name: ISCAS89 circuit name the sizes were taken from.
        simple_nodes: |N1| — number of late-evaluation nodes.
        early_nodes: |N2| — number of early-evaluation nodes.
        edges: |E| — number of channels.
    """

    name: str
    simple_nodes: int
    early_nodes: int
    edges: int

    @property
    def total_nodes(self) -> int:
        return self.simple_nodes + self.early_nodes


#: Sizes of every row of Table 2 in the paper.
TABLE2_SPECS: List[ISCASLikeSpec] = [
    ISCASLikeSpec("s208", 7, 1, 9),
    ISCASLikeSpec("s641", 206, 15, 270),
    ISCASLikeSpec("s27", 9, 5, 24),
    ISCASLikeSpec("s444", 45, 13, 82),
    ISCASLikeSpec("s838", 7, 1, 9),
    ISCASLikeSpec("s386", 36, 12, 131),
    ISCASLikeSpec("s344", 122, 13, 176),
    ISCASLikeSpec("s400", 37, 9, 66),
    ISCASLikeSpec("s526", 43, 7, 71),
    ISCASLikeSpec("s382", 35, 7, 60),
    ISCASLikeSpec("s420", 7, 1, 9),
    ISCASLikeSpec("s832", 76, 41, 462),
    ISCASLikeSpec("s1488", 85, 48, 572),
    ISCASLikeSpec("s510", 63, 40, 407),
    ISCASLikeSpec("s953", 232, 36, 371),
    ISCASLikeSpec("s713", 229, 27, 341),
    ISCASLikeSpec("s1494", 88, 48, 572),
    ISCASLikeSpec("s820", 72, 38, 424),
]

SPEC_BY_NAME: Dict[str, ISCASLikeSpec] = {spec.name: spec for spec in TABLE2_SPECS}


def scaled_spec(spec: ISCASLikeSpec, scale: float) -> ISCASLikeSpec:
    """Shrink a specification while keeping its shape.

    Used by the benchmark harness to run the full Table 2 sweep in minutes on
    a laptop; ``scale = 1.0`` reproduces the published sizes.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must lie in (0, 1]")
    if scale == 1.0:
        return spec
    early = max(1, round(spec.early_nodes * scale))
    simple = max(2, round(spec.simple_nodes * scale))
    # Keep at least a cycle plus two extra inputs per early node.
    edges = max(simple + early + 2 * early, round(spec.edges * scale))
    return ISCASLikeSpec(spec.name, simple, early, edges)


def _build_structure(
    spec: ISCASLikeSpec, rng: random.Random
) -> Tuple[List[str], List[Tuple[str, str]], List[str]]:
    """Build a strongly connected structure with the requested early fan-in.

    Returns the node list, the edge list and the names chosen as
    early-evaluation nodes (each guaranteed to have at least two inputs).
    """
    total = spec.total_nodes
    if total < 2:
        raise ValueError(f"{spec.name}: need at least two nodes")
    minimum_edges = total + spec.early_nodes  # cycle + one extra input per mux
    if spec.edges < minimum_edges:
        raise ValueError(
            f"{spec.name}: {spec.edges} edges cannot give {spec.early_nodes} "
            f"nodes a second input on top of a covering cycle"
        )
    names = [f"{spec.name}_n{i}" for i in range(total)]
    early_names = rng.sample(names, spec.early_nodes)
    early_set = set(early_names)

    order = list(names)
    rng.shuffle(order)
    edges: List[Tuple[str, str]] = [
        (order[i], order[(i + 1) % total]) for i in range(total)
    ]
    fanin: Dict[str, int] = {name: 0 for name in names}
    for _, dst in edges:
        fanin[dst] += 1

    # Give every early node a second input first.
    for name in early_names:
        while fanin[name] < 2:
            src = rng.choice(names)
            if src == name:
                continue
            edges.append((src, name))
            fanin[name] += 1

    # Spend the remaining edge budget; bias towards early nodes so that their
    # fan-in distribution resembles multiplexer-heavy circuits.
    while len(edges) < spec.edges:
        src = rng.choice(names)
        if early_set and rng.random() < 0.45:
            dst = rng.choice(early_names)
        else:
            dst = rng.choice(names)
        if dst == src:
            continue
        edges.append((src, dst))
        fanin[dst] += 1

    return names, edges, early_names


def iscas_like_rrg(
    spec: ISCASLikeSpec,
    config: Optional[RandomRRGConfig] = None,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> RRG:
    """Generate an RRG matching a Table 2 size specification.

    Unlike :func:`repro.workloads.random_rrg.randomize_rrg`, the set of
    early-evaluation nodes is chosen up front so that |N2| matches the
    specification exactly (the random 0.4 marking of Section 5 is what
    produced those counts in the paper).
    """
    config = config or RandomRRGConfig()
    rng = random.Random(seed)
    names, edges, early_names = _build_structure(spec, rng)
    early_set = set(early_names)

    rrg = RRG(name or spec.name)
    for node_name in names:
        delay = rng.uniform(config.delay_low, config.delay_high)
        if delay <= config.delay_low:
            delay = config.delay_high * 0.5
        rrg.add_node(node_name, delay=delay, early=node_name in early_set)

    forced = _feedback_edges(edges, names)
    branch_weights: Dict[str, List[Tuple[int, float]]] = {}
    for index, (src, dst) in enumerate(edges):
        tokens = 1 if index in forced else 0
        if tokens == 0 and rng.random() < config.token_probability:
            tokens = 1
        if dst in early_set:
            weight = config.min_branch_probability + rng.random()
            branch_weights.setdefault(dst, []).append((index, weight))
        # Branch probabilities are attached after normalisation below.
        rrg.add_edge(src, dst, tokens=tokens, buffers=tokens, probability=None)

    for dst, weighted in branch_weights.items():
        total = sum(weight for _, weight in weighted)
        for index, weight in weighted:
            rrg.edge(index).probability = weight / total

    rrg.validate()
    return rrg


def table2_benchmark_suite(
    scale: float = 1.0,
    config: Optional[RandomRRGConfig] = None,
    seed: int = 2009,
    names: Optional[List[str]] = None,
) -> Dict[str, RRG]:
    """Generate the whole Table 2 suite (optionally scaled down).

    Args:
        scale: Size multiplier in (0, 1]; 1.0 reproduces the published sizes.
        config: Randomisation parameters.
        seed: Base seed; each benchmark gets ``seed + row_index``.
        names: Optional subset of circuit names to generate.

    Returns:
        Mapping from circuit name to RRG.
    """
    suite: Dict[str, RRG] = {}
    for offset, spec in enumerate(TABLE2_SPECS):
        if names is not None and spec.name not in names:
            continue
        shrunk = scaled_spec(spec, scale)
        suite[spec.name] = iscas_like_rrg(
            shrunk, config=config, seed=seed + offset, name=spec.name
        )
    return suite
