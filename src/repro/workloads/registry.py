"""Scenario registry: every workload generator as a named, parameterized spec.

The pipeline (:mod:`repro.pipeline`) never ships builder callables across
process boundaries — a job references its workload as ``(scenario name,
parameter dict)`` and each shard rebuilds the RRG from this registry.  That
keeps jobs picklable, makes every experiment a declarative spec, and gives
the artifact store a canonical description of what was built.

Three kinds of entries:

* **hand-built examples** (:mod:`repro.workloads.examples`) — the
  motivational figures, pipelines, rings and the fork/join ablation graph;
* **ISCAS-like benchmarks** (:mod:`repro.workloads.iscas_like`) — one
  scenario per Table 2 circuit plus the generic ``iscas`` spec taking the
  circuit name as a parameter;
* **random families** (:mod:`repro.workloads.random_rrg`) — parameterized
  generators that, combined with :func:`expand_grid`, enumerate hundreds of
  circuits for scale sweeps.

Scenario builders must be deterministic functions of their parameters (seeded
generators take an explicit ``seed`` parameter), so a scenario instance
``(name, params)`` identifies one graph, reproducibly, on any shard.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.rrg import RRG
from repro.workloads.examples import (
    figure1a_rrg,
    figure1b_rrg,
    figure2_rrg,
    linear_pipeline,
    ring_rrg,
    unbalanced_fork_join,
)
from repro.workloads.iscas_like import (
    SPEC_BY_NAME,
    TABLE2_SPECS,
    iscas_like_rrg,
    scaled_spec,
)
from repro.workloads.random_rrg import large_random_rrg, random_rrg


class ScenarioError(Exception):
    """Raised for unknown scenarios or invalid scenario parameters."""


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, parameterized workload generator.

    Attributes:
        name: Registry key (unique).
        description: One-line human description for ``list-scenarios``.
        builder: Callable building one RRG from keyword parameters.
        defaults: Default parameter values; calls may override any subset.
        family: Coarse grouping ("example", "iscas", "random", "ablation").
        tags: Free-form labels (e.g. "motivational", "table2").
    """

    name: str
    description: str
    builder: Callable[..., RRG]
    defaults: Mapping[str, object] = field(default_factory=dict)
    family: str = "example"
    tags: Tuple[str, ...] = ()

    def normalize(self, overrides: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Defaults merged with ``overrides``, validated but not built.

        This is the canonical parameter set of one scenario instance: the
        service validates remote requests with it (rejecting unknown
        parameters before anything is queued) and uses the result for
        request keys, so an explicitly-passed default and an omitted one
        key identically.
        """
        params = dict(self.defaults)
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} has no parameters {sorted(unknown)}; "
                f"available: {sorted(self.defaults)}"
            )
        params.update(overrides)
        return params

    def build(self, **overrides: object) -> RRG:
        """Build the RRG with ``defaults`` overridden by ``overrides``."""
        return self.builder(**self.normalize(overrides))


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the registry; raises on duplicate names."""
    if spec.name in _REGISTRY:
        raise ScenarioError(f"duplicate scenario name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ScenarioError(
            f"unknown scenario {name!r}; see list_scenarios()"
        ) from exc


def has_scenario(name: str) -> bool:
    return name in _REGISTRY


def list_scenarios(
    family: Optional[str] = None, tag: Optional[str] = None
) -> List[ScenarioSpec]:
    """All registered scenarios, optionally filtered, sorted by name."""
    specs = [
        spec
        for spec in _REGISTRY.values()
        if (family is None or spec.family == family)
        and (tag is None or tag in spec.tags)
    ]
    return sorted(specs, key=lambda s: s.name)


def build_scenario(name: str, params: Optional[Mapping[str, object]] = None) -> RRG:
    """Build one scenario instance (the workers' entry point)."""
    return scenario(name).build(**dict(params or {}))


def resolve_scenario(
    name: str, params: Optional[Mapping[str, object]] = None
) -> Tuple[ScenarioSpec, Dict[str, object]]:
    """Spec-by-name resolution for remote requests.

    Returns the spec and the fully-normalized parameter dict; raises
    :class:`ScenarioError` for unknown names or parameters, so a service can
    turn bad input into a 400 without building anything.
    """
    spec = scenario(name)
    return spec, spec.normalize(params)


def expand_grid(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Cartesian product of parameter axes as a list of parameter dicts.

    ``expand_grid(alpha=(0.5, 0.9), seed=range(3))`` yields six dicts; combine
    with a scenario name to enumerate a parametric family of circuits.
    """
    names = sorted(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def scenario_grid(
    name: str, **axes: Sequence[object]
) -> List[Tuple[str, Dict[str, object]]]:
    """A parametric family: one ``(scenario, params)`` instance per grid point.

    The scenario must exist; parameters are validated lazily at build time.
    """
    scenario(name)  # validate the name eagerly
    return [(name, params) for params in expand_grid(**axes)]


# -- registrations ----------------------------------------------------------

def _register_examples() -> None:
    register_scenario(ScenarioSpec(
        name="figure1a",
        description="Motivational Figure 1(a): tau 3, throughput 1",
        builder=figure1a_rrg,
        defaults={"alpha": 0.5},
        tags=("motivational",),
    ))
    register_scenario(ScenarioSpec(
        name="figure1b",
        description="Motivational Figure 1(b): retimed + two bubbles",
        builder=figure1b_rrg,
        defaults={"alpha": 0.5},
        tags=("motivational",),
    ))
    register_scenario(ScenarioSpec(
        name="figure2",
        description="Motivational Figure 2: optimal, Theta = 1/(3 - 2 alpha)",
        builder=figure2_rrg,
        defaults={"alpha": 0.5},
        tags=("motivational",),
    ))
    register_scenario(ScenarioSpec(
        name="pipeline",
        description="Closed linear pipeline of increasing stage delays",
        builder=linear_pipeline,
        defaults={"stages": 4, "tokens_per_stage": 1},
    ))
    register_scenario(ScenarioSpec(
        name="ring",
        description="Token-constrained ring of identical unit blocks",
        builder=ring_rrg,
        defaults={"length": 5, "total_tokens": 2, "delay": 1.0},
    ))
    register_scenario(ScenarioSpec(
        name="fork-join-early",
        description="Unbalanced fork/join with an early-evaluation join",
        builder=lambda alpha, long_branch_delay: unbalanced_fork_join(
            alpha=alpha,
            long_branch_delay=long_branch_delay,
            name="fork-join-early",
        ),
        defaults={"alpha": 0.85, "long_branch_delay": 8.0},
        family="ablation",
        tags=("ablation",),
    ))
    register_scenario(ScenarioSpec(
        name="fork-join-late",
        description="The same fork/join with every node evaluating late",
        builder=lambda alpha, long_branch_delay: unbalanced_fork_join(
            alpha=alpha,
            long_branch_delay=long_branch_delay,
            name="fork-join-early",
        ).as_late_evaluation("fork-join-late"),
        defaults={"alpha": 0.85, "long_branch_delay": 8.0},
        family="ablation",
        tags=("ablation",),
    ))


def _register_iscas() -> None:
    def _build_iscas(name: str, scale: float, seed: int) -> RRG:
        spec = SPEC_BY_NAME.get(str(name))
        if spec is None:
            raise ScenarioError(f"unknown ISCAS circuit {name!r}")
        return iscas_like_rrg(
            scaled_spec(spec, float(scale)), seed=int(seed), name=spec.name
        )

    register_scenario(ScenarioSpec(
        name="iscas",
        description="ISCAS89-like benchmark by circuit name (Table 2 sizes)",
        builder=_build_iscas,
        defaults={"name": "s27", "scale": 1.0, "seed": 2009},
        family="iscas",
        tags=("table2",),
    ))
    for offset, spec in enumerate(TABLE2_SPECS):
        register_scenario(ScenarioSpec(
            name=f"iscas-{spec.name}",
            description=(
                f"{spec.name}: |N1|={spec.simple_nodes}, "
                f"|N2|={spec.early_nodes}, |E|={spec.edges}"
            ),
            builder=_build_iscas,
            # The per-circuit default seed matches table2_benchmark_suite's
            # ``seed + row_index`` derivation at the default root seed 2009.
            defaults={"name": spec.name, "scale": 1.0, "seed": 2009 + offset},
            family="iscas",
            tags=("table2",),
        ))


def _register_random() -> None:
    def _build_random(num_nodes: int, num_edges: int, seed: int) -> RRG:
        return random_rrg(int(num_nodes), int(num_edges), seed=int(seed))

    register_scenario(ScenarioSpec(
        name="random",
        description="Random strongly connected RRG (Section 5 recipe)",
        builder=_build_random,
        defaults={"num_nodes": 20, "num_edges": 40, "seed": 0},
        family="random",
    ))

    def _build_large(
        num_nodes: int, edge_factor: float, early_fraction: float,
        token_probability: float, seed: int,
    ) -> RRG:
        return large_random_rrg(
            int(num_nodes),
            edge_factor=float(edge_factor),
            early_fraction=float(early_fraction),
            token_probability=float(token_probability),
            seed=int(seed),
        )

    register_scenario(ScenarioSpec(
        name="large-rrg",
        description="Large random RRG for heuristic search (500-5000 nodes)",
        builder=_build_large,
        defaults={
            "num_nodes": 500,
            "edge_factor": 2.0,
            "early_fraction": 0.2,
            "token_probability": 0.25,
            "seed": 1,
        },
        family="random",
        tags=("large", "search"),
    ))


_register_examples()
_register_iscas()
_register_random()


def random_sweep_family(
    sizes: Sequence[Tuple[int, int]] = ((10, 20), (20, 40), (40, 80), (80, 160)),
    seeds: Iterable[int] = range(8),
) -> List[Tuple[str, Dict[str, object]]]:
    """A size x seed grid of random circuits (a ready-made large sweep)."""
    instances: List[Tuple[str, Dict[str, object]]] = []
    for num_nodes, num_edges in sizes:
        instances.extend(scenario_grid(
            "random",
            num_nodes=(num_nodes,),
            num_edges=(num_edges,),
            seed=list(seeds),
        ))
    return instances


def large_rrg_family(
    sizes: Sequence[int] = (500, 1000, 2000, 5000),
    seeds: Iterable[int] = range(2),
    early_fraction: float = 0.2,
) -> List[Tuple[str, Dict[str, object]]]:
    """A size x seed grid of large search workloads (the scale sweep)."""
    instances: List[Tuple[str, Dict[str, object]]] = []
    for num_nodes in sizes:
        instances.extend(scenario_grid(
            "large-rrg",
            num_nodes=(int(num_nodes),),
            early_fraction=(float(early_fraction),),
            seed=list(seeds),
        ))
    return instances


def iscas_scale_family(
    scales: Sequence[float] = (0.15, 0.25, 0.5),
    names: Optional[Sequence[str]] = None,
    seed: int = 2009,
) -> List[Tuple[str, Dict[str, object]]]:
    """Every Table 2 circuit at several scales (scenario x config sweep)."""
    instances: List[Tuple[str, Dict[str, object]]] = []
    for offset, spec in enumerate(TABLE2_SPECS):
        if names is not None and spec.name not in names:
            continue
        for scale in scales:
            instances.append((
                "iscas",
                {"name": spec.name, "scale": float(scale), "seed": seed + offset},
            ))
    return instances
