"""Workload construction: example graphs and random benchmark generation.

* :mod:`repro.workloads.examples` — the hand-built RRGs of the paper's
  figures (the motivational example) plus a few textbook pipelines.
* :mod:`repro.workloads.random_rrg` — the random RRG recipe of Section 5
  (token probability 0.25, delays uniform in (0, 20], early-evaluation
  probability 0.4).
* :mod:`repro.workloads.iscas_like` — synthetic strongly-connected graph
  structures matching the published node/edge counts of the ISCAS89-derived
  benchmarks in Table 2.
"""

from repro.workloads.examples import (
    figure1a_rrg,
    figure1b_rrg,
    figure2_rrg,
    linear_pipeline,
    ring_rrg,
    unbalanced_fork_join,
)
from repro.workloads.random_rrg import RandomRRGConfig, randomize_rrg, random_rrg
from repro.workloads.iscas_like import (
    ISCASLikeSpec,
    TABLE2_SPECS,
    iscas_like_rrg,
    table2_benchmark_suite,
)

__all__ = [
    "figure1a_rrg",
    "figure1b_rrg",
    "figure2_rrg",
    "linear_pipeline",
    "ring_rrg",
    "unbalanced_fork_join",
    "RandomRRGConfig",
    "randomize_rrg",
    "random_rrg",
    "ISCASLikeSpec",
    "TABLE2_SPECS",
    "iscas_like_rrg",
    "table2_benchmark_suite",
]
