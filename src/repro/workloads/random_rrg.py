"""Random RRG generation following the recipe of Section 5.

The paper derives its benchmarks from ISCAS89 circuit graph structures and
then randomises every attribute:

* each edge receives an initialised register (a token with its buffer) with
  probability 0.25,
* each node receives a combinational delay uniformly distributed in (0, 20],
* each node with more than one input is marked early-evaluating with
  probability 0.4, with random branch probabilities.

Two extra rules keep the generated graphs valid elastic systems:

* tokens are forced onto a feedback-edge set (one back edge of every cycle),
  so every directed cycle carries at least one token (liveness);
* branch probabilities are normalised to sum to one per early node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.rrg import RRG


@dataclass
class RandomRRGConfig:
    """Randomisation parameters of Section 5.

    Attributes:
        token_probability: Probability that an edge carries an initial token.
        delay_low: Exclusive lower bound of the node-delay distribution.
        delay_high: Inclusive upper bound of the node-delay distribution.
        early_probability: Probability that a multi-input node evaluates
            early.
        min_branch_probability: Floor applied to each branch probability
            before normalisation (gamma must be strictly positive).
    """

    token_probability: float = 0.25
    delay_low: float = 0.0
    delay_high: float = 20.0
    early_probability: float = 0.4
    min_branch_probability: float = 0.05


def _feedback_edges(edges: Sequence[Tuple[str, str]], nodes: Iterable[str]) -> Set[int]:
    """Indices of edges whose removal makes the graph acyclic (DFS back edges).

    Every directed cycle contains at least one back edge of any depth-first
    traversal, so forcing a token on each back edge guarantees liveness.
    """
    adjacency: Dict[str, List[Tuple[int, str]]] = {node: [] for node in nodes}
    for index, (src, dst) in enumerate(edges):
        adjacency[src].append((index, dst))

    color: Dict[str, int] = {node: 0 for node in adjacency}  # 0 white, 1 grey, 2 black
    back: Set[int] = set()

    for root in adjacency:
        if color[root] != 0:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            node, pointer = stack[-1]
            if pointer < len(adjacency[node]):
                stack[-1] = (node, pointer + 1)
                edge_index, target = adjacency[node][pointer]
                if color[target] == 0:
                    color[target] = 1
                    stack.append((target, 0))
                elif color[target] == 1:
                    back.add(edge_index)
            else:
                color[node] = 2
                stack.pop()
    return back


def randomize_rrg(
    structure: Sequence[Tuple[str, str]],
    nodes: Optional[Sequence[str]] = None,
    config: Optional[RandomRRGConfig] = None,
    seed: Optional[int] = None,
    name: str = "random-rrg",
) -> RRG:
    """Attach random delays, tokens and early-evaluation marks to a structure.

    Args:
        structure: Edge list (src, dst); parallel edges are allowed.
        nodes: Node names; inferred from the edge list when omitted.
        config: Randomisation parameters (defaults to the paper's values).
        seed: Seed of the pseudo-random generator (reproducible benchmarks).
        name: Name of the resulting RRG.
    """
    config = config or RandomRRGConfig()
    rng = random.Random(seed)
    if nodes is None:
        seen: List[str] = []
        seen_set: Set[str] = set()
        for src, dst in structure:
            if src not in seen_set:
                seen_set.add(src)
                seen.append(src)
            if dst not in seen_set:
                seen_set.add(dst)
                seen.append(dst)
        nodes = seen

    rrg = RRG(name)
    fanin: Dict[str, int] = {node: 0 for node in nodes}
    for _, dst in structure:
        fanin[dst] += 1

    for node in nodes:
        delay = rng.uniform(config.delay_low, config.delay_high)
        if delay <= config.delay_low:
            delay = config.delay_high * 0.5
        early = fanin[node] > 1 and rng.random() < config.early_probability
        rrg.add_node(node, delay=delay, early=early)

    forced_tokens = _feedback_edges(structure, nodes)
    branch_weights: Dict[str, List[Tuple[int, float]]] = {}
    for index, (src, dst) in enumerate(structure):
        tokens = 1 if index in forced_tokens else 0
        if tokens == 0 and rng.random() < config.token_probability:
            tokens = 1
        if rrg.node(dst).early:
            weight = config.min_branch_probability + rng.random()
            branch_weights.setdefault(dst, []).append((index, weight))
        # Branch probabilities are attached after normalisation below.
        rrg.add_edge(src, dst, tokens=tokens, buffers=tokens, probability=None)

    # Normalise branch probabilities per early node.
    for dst, weighted in branch_weights.items():
        total = sum(weight for _, weight in weighted)
        for index, weight in weighted:
            rrg.edge(index).probability = weight / total

    rrg.validate()
    return rrg


def random_structure(
    num_nodes: int,
    num_edges: int,
    seed: Optional[int] = None,
    multi_input_nodes: int = 0,
) -> List[Tuple[str, str]]:
    """Random strongly connected edge list with ``num_nodes`` nodes.

    The first ``num_nodes`` edges form a Hamiltonian cycle (which guarantees
    strong connectivity); the remaining edges are random, with a bias towards
    the ``multi_input_nodes`` first nodes so that enough nodes end up with
    more than one input (candidates for early evaluation).
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if num_edges < num_nodes:
        raise ValueError("need at least as many edges as nodes for a cycle")
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(num_nodes)]
    # Name -> position lookup once, up front: the self-loop redirection below
    # must stay O(1) per edge (a ``names.index`` scan there made the whole
    # generator quadratic, which is prohibitive at the large_rrg sizes).
    position = {name: i for i, name in enumerate(names)}
    order = list(names)
    rng.shuffle(order)
    edges: List[Tuple[str, str]] = [
        (order[i], order[(i + 1) % num_nodes]) for i in range(num_nodes)
    ]
    favoured = names[: multi_input_nodes or 0]
    for _ in range(num_edges - num_nodes):
        src = rng.choice(names)
        if favoured and rng.random() < 0.6:
            dst = rng.choice(favoured)
        else:
            dst = rng.choice(names)
        if dst == src:
            dst = names[(position[src] + 1) % num_nodes]
        edges.append((src, dst))
    return edges


def random_rrg(
    num_nodes: int,
    num_edges: int,
    config: Optional[RandomRRGConfig] = None,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    multi_input_nodes: int = 0,
) -> RRG:
    """A random strongly connected RRG following the Section 5 recipe."""
    structure = random_structure(
        num_nodes, num_edges, seed=seed, multi_input_nodes=multi_input_nodes
    )
    return randomize_rrg(
        structure,
        nodes=[f"n{i}" for i in range(num_nodes)],
        config=config,
        seed=None if seed is None else seed + 1,
        name=name or f"random-{num_nodes}n-{num_edges}e",
    )


def large_random_rrg(
    num_nodes: int,
    edge_factor: float = 2.0,
    early_fraction: float = 0.2,
    token_probability: float = 0.25,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> RRG:
    """A large random RRG for the heuristic-search workloads (``large_rrg``).

    The Section 5 recipe, parameterized the way the search subsystem needs:

    * ``num_nodes`` nodes with ``round(num_nodes * edge_factor)`` edges,
      biased so a fraction of the nodes collect multiple inputs (candidates
      for early evaluation);
    * ``early_fraction`` is the probability that a multi-input node becomes
      early-evaluating (the paper's recipe fixes 0.4; large sweeps want this
      as a knob);
    * generation and validation are both O(V + E): the structure generator,
      the attribute randomiser and the liveness check all stay linear, so a
      5000-node instance builds in well under a second.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if edge_factor < 1.0:
        raise ValueError("edge_factor must be >= 1 (strong connectivity)")
    if not 0.0 <= early_fraction <= 1.0:
        raise ValueError("early_fraction must lie in [0, 1]")
    num_edges = max(num_nodes + 1, int(round(num_nodes * edge_factor)))
    config = RandomRRGConfig(
        token_probability=token_probability,
        early_probability=early_fraction,
    )
    return random_rrg(
        num_nodes,
        num_edges,
        config=config,
        seed=seed,
        name=name or f"large-{num_nodes}n-{num_edges}e",
        multi_input_nodes=max(2, num_nodes // 8),
    )


def largest_scc_structure(
    graph: nx.DiGraph,
) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Extract the largest strongly connected component of a digraph.

    Mirrors the paper's preprocessing of the ISCAS89 circuits: only the
    largest SCC is kept, the rest of the nodes and edges are removed.
    """
    if graph.number_of_nodes() == 0:
        return [], []
    components = list(nx.strongly_connected_components(graph))
    largest = max(components, key=len)
    nodes = sorted(str(n) for n in largest)
    node_set = set(nodes)
    edges = [
        (str(u), str(v))
        for u, v in graph.edges()
        if str(u) in node_set and str(v) in node_set
    ]
    return nodes, edges
