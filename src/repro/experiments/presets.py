"""Run presets: every CLI target as a plain function of declarative options.

``python -m repro run`` and the optimization service
(:mod:`repro.service`) execute the same targets — the experiment presets
(``motivational``, ``table1``, ``table2``, ``table2-small``, ``ablations``)
and any registry scenario — so the execution lives here, behind one entry
point:

* :class:`RunOptions` — the declarative knobs a run accepts (shards, seeds,
  store, cycles, ...), constructible from CLI arguments or from a JSON
  request body (:meth:`RunOptions.from_mapping` validates remote input);
* :func:`run_preset` — execute a target and return the rendered result
  dictionary (``{"target", "headers", "rows", "summary"}``).

Because both front ends share this function, a result served over HTTP is
bit-identical to the one the CLI prints for the same options — which is also
what makes service-side caching sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.milp import MilpSettings
from repro.experiments.ablations import (
    average_error,
    early_evaluation_placement_study,
    lp_error_study,
)
from repro.experiments.motivational import run_motivational
from repro.experiments.table1 import (
    table1_as_rows,
    table1_from_payload,
    table1_job,
)
from repro.experiments.table2 import (
    average_improvement,
    run_table2,
    table2_as_rows,
)
from repro.pipeline import events as ev
from repro.pipeline.events import EventCallback
from repro.pipeline.runner import derive_seed, run_jobs
from repro.pipeline.stages import (
    OPTIMIZERS,
    BuildSpec,
    Job,
    OptimizeParams,
    SimulateParams,
)
from repro.workloads.examples import figure1a_rrg
from repro.workloads.registry import ScenarioError, has_scenario, scenario

#: run targets that are not plain registry scenarios.
EXPERIMENT_TARGETS = (
    "motivational",
    "table1",
    "table2",
    "table2-small",
    "ablations",
    "large-scale",
)

#: `large-scale` instance sizes (nodes of the large-rrg scenario).  ``tiny``
#: exists for tests and local smoke runs; the paper-relevant range is
#: small-large.
LARGE_SCALE_SIZES = {
    "tiny": 120,
    "small": 500,
    "medium": 1500,
    "large": 5000,
}

LARGE_SCALE_HEADERS = [
    "name", "|N|", "|E|", "optimizer", "tau", "Theta", "xi",
    "strategy", "evaluations",
]

TABLE1_HEADERS = ["name", "tau", "Theta_lp", "Theta", "err%", "xi_lp", "xi"]
TABLE2_HEADERS = [
    "name", "|N1|", "|N2|", "|E|", "xi*", "xi_nee", "xi_lp", "xi_sim", "I%",
]


class UnknownTargetError(ScenarioError):
    """Raised for a run target that is neither a preset nor a scenario."""


@dataclass(frozen=True)
class RunOptions:
    """Declarative options of one ``run``/``submit`` invocation.

    ``None`` means "use the target's published default" — the preset
    functions resolve them exactly as the CLI always did, so two option sets
    that differ only in explicit-vs-defaulted values execute identically
    (but canonicalise differently; see :meth:`describe`).
    """

    shards: int = 1
    seed: Optional[int] = None
    store: Optional[str] = None
    cycles: Optional[int] = None
    epsilon: Optional[float] = None
    scale: Optional[float] = None
    names: Optional[Tuple[str, ...]] = None
    alphas: Optional[Tuple[float, ...]] = None
    time_limit: Optional[float] = 60.0
    optimizer: Optional[str] = None
    time_budget: Optional[float] = None
    pool_size: Optional[int] = None
    size: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    #: Options that change *what* is computed (not how it is executed);
    #: only these enter request/cache keys.
    COMPUTE_FIELDS = (
        "seed", "cycles", "epsilon", "scale", "names", "alphas",
        "time_limit", "optimizer", "time_budget", "pool_size", "size",
        "params",
    )

    def settings(self) -> MilpSettings:
        return MilpSettings(time_limit=self.time_limit)

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "RunOptions":
        """Build options from untrusted input (a service request body).

        Unknown keys raise :class:`ScenarioError` so a bad request fails
        before it is queued.  Execution knobs (``shards``, ``store``) are
        rejected too: a remote caller must never direct server-side
        filesystem writes or worker fan-out — the service substitutes its
        own.  Sequences are normalised to tuples; scenario ``params`` stay
        a dict and are validated later against the registry.
        """
        known = {f.name for f in fields(cls)} - {"COMPUTE_FIELDS"}
        remote_forbidden = {"shards", "store"} & set(data)
        if remote_forbidden:
            raise ScenarioError(
                f"option(s) {sorted(remote_forbidden)} are execution knobs "
                "of the serving side and cannot be set per request"
            )
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown run option(s) {sorted(unknown)}; "
                f"available: {sorted(known - {'shards', 'store'})}"
            )
        values: Dict[str, Any] = dict(data)
        try:
            for name in ("seed", "cycles", "pool_size"):
                if values.get(name) is not None:
                    values[name] = int(values[name])
            for name in ("epsilon", "scale", "time_limit", "time_budget"):
                if values.get(name) is not None:
                    values[name] = float(values[name])
            for name in ("optimizer", "size"):
                if values.get(name) is not None:
                    values[name] = str(values[name])
            if values.get("names") is not None:
                values["names"] = tuple(str(n) for n in values["names"])
            if values.get("alphas") is not None:
                values["alphas"] = tuple(float(a) for a in values["alphas"])
            if values.get("params") is not None:
                values["params"] = dict(values["params"])
        except (TypeError, ValueError) as exc:
            # Admission-time 400, not a server-side 500 mid-execution.
            raise ScenarioError(f"invalid run option value: {exc}") from exc
        if values.get("optimizer") is not None and (
            values["optimizer"] not in OPTIMIZERS
        ):
            raise ScenarioError(
                f"unknown optimizer {values['optimizer']!r}; "
                f"expected one of {OPTIMIZERS}"
            )
        if values.get("pool_size") is not None and values["pool_size"] <= 0:
            raise ScenarioError("pool_size must be a positive integer")
        if values.get("size") is not None and (
            values["size"] not in LARGE_SCALE_SIZES
        ):
            raise ScenarioError(
                f"unknown size {values['size']!r}; "
                f"expected one of {tuple(LARGE_SCALE_SIZES)}"
            )
        return cls(**values)

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON form of the *compute-relevant* options.

        Execution knobs (shards, store) are excluded: a request computes the
        same result regardless of how it is fanned out or persisted, so they
        must not split the request-cache key space.
        """
        out: Dict[str, Any] = {}
        for name in self.COMPUTE_FIELDS:
            value = getattr(self, name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, Mapping):
                value = dict(value)
            out[name] = value
        return out

    def with_execution(
        self, shards: int, store: Optional[str]
    ) -> "RunOptions":
        """A copy with *both* execution knobs overwritten.

        Unconditional on purpose: the serving side owns where artifacts go
        and how work fans out, whatever the request carried (``store=None``
        means "no persistence", not "keep the caller's value").
        """
        return replace(self, shards=shards, store=store)


def _result(
    target: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    summary: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "target": target,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "summary": summary,
    }


def _run_motivational(options: RunOptions, events) -> Dict[str, Any]:
    rows = run_motivational(
        alphas=tuple(options.alphas or (0.5, 0.9)),
        cycles=options.cycles or 20000,
        seed=options.seed if options.seed is not None else 1,
        shards=options.shards,
        store=options.store,
        events=events,
    )
    formatted = [
        (
            f"Figure {row.figure}",
            row.alpha,
            round(row.cycle_time, 2),
            round(row.exact, 4),
            round(row.simulated, 4),
            round(row.lp_bound, 4),
            "-" if row.expected is None else round(row.expected, 4),
        )
        for row in rows
    ]
    headers = ["config", "alpha", "tau", "Theta", "Theta_sim", "Theta_lp", "paper"]
    return _result("motivational", headers, formatted, {})


def _run_table1(options: RunOptions, events) -> Dict[str, Any]:
    circuit = options.names[0] if options.names else "s526"
    # --seed is the root: it moves both graph generation and the simulation
    # lanes (defaults reproduce examples/pareto_exploration.py).
    job = table1_job(
        BuildSpec.from_scenario(
            "iscas",
            name=circuit,
            scale=options.scale if options.scale is not None else 0.4,
            seed=options.seed if options.seed is not None else 42,
        ),
        epsilon=options.epsilon or 0.05,
        cycles=options.cycles or 4000,
        seed=options.seed if options.seed is not None else 7,
        settings=options.settings(),
        job_id=circuit,
    )
    payload = run_jobs(
        [job], shards=options.shards, store=options.store, events=events
    )[0]
    result = table1_from_payload(payload)
    return _result(
        "table1",
        TABLE1_HEADERS,
        table1_as_rows(result),
        {"delta_percent": round(result.delta_percent, 3)},
    )


def _run_table2(options: RunOptions, events, small: bool) -> Dict[str, Any]:
    if small:
        defaults = {"scale": 0.15, "names": ["s27", "s208", "s420"],
                    "epsilon": 0.1, "cycles": 1500}
    else:
        defaults = {"scale": 0.25, "names": None, "epsilon": 0.05, "cycles": 4000}
    rows = run_table2(
        scale=options.scale if options.scale is not None else defaults["scale"],
        names=list(options.names) if options.names else defaults["names"],
        epsilon=options.epsilon or defaults["epsilon"],
        cycles=options.cycles or defaults["cycles"],
        seed=options.seed if options.seed is not None else 2009,
        settings=options.settings(),
        shards=options.shards,
        store=options.store,
        events=events,
    )
    return _result(
        "table2-small" if small else "table2",
        TABLE2_HEADERS,
        table2_as_rows(rows),
        {"average_improvement_percent": round(average_improvement(rows), 3)},
    )


def _run_ablations(options: RunOptions, events) -> Dict[str, Any]:
    placement = early_evaluation_placement_study(
        epsilon=options.epsilon or 0.02,
        cycles=options.cycles or 4000,
        seed=options.seed if options.seed is not None else 3,
        settings=options.settings(),
        shards=options.shards,
        store=options.store,
        events=events,
    )
    samples = lp_error_study(
        [figure1a_rrg(0.8)],
        epsilon=0.1,
        cycles=options.cycles or 4000,
        seed=options.seed if options.seed is not None else 5,
        settings=options.settings(),
        shards=options.shards,
        store=options.store,
        events=events,
    )
    rows = [
        ("placement: I% with early join", round(placement.improvement_with_early, 2)),
        ("placement: I% without early join",
         round(placement.improvement_without_early, 2)),
        ("LP bound: samples", len(samples)),
        ("LP bound: average |err|%", round(average_error(samples), 2)),
    ]
    return _result("ablations", ["observation", "value"], rows, {})


def optimize_params_for(
    options: RunOptions, job_id: str, k: int = 5
) -> OptimizeParams:
    """The Optimize-stage parameters a run's options declare.

    The search seed derives from the root seed and the job id through the
    pipeline's hash-derivation scheme, so a portfolio inside a sharded sweep
    is seeded identically to the serial run — and differently from any other
    job of the same sweep.
    """
    base = OptimizeParams.from_settings(
        options.settings(), k=k, epsilon=options.epsilon or 0.05
    )
    optimizer = options.optimizer or "milp"
    if optimizer == "milp":
        return base
    root_seed = options.seed if options.seed is not None else 0
    return replace(
        base,
        optimizer=optimizer,
        time_budget=options.time_budget or 30.0,
        search_seed=derive_seed(root_seed, "search", job_id),
        search_pool=options.pool_size,
    )


def scenario_job(target: str, options: RunOptions) -> Job:
    """The single pipeline job a plain-scenario run declares.

    Exposed separately so the service can derive the request's cache key
    (RRG fingerprint + stage parameters) without executing anything.
    """
    params = dict(options.params)
    # The root seed drives generation when the scenario takes a seed and the
    # caller did not pin one explicitly.
    if options.seed is not None and "seed" not in params and (
        "seed" in scenario(target).defaults
    ):
        params["seed"] = options.seed
    return Job(
        job_id=target,
        build=BuildSpec(scenario=target, params=params),
        optimize=optimize_params_for(options, target),
        simulate=SimulateParams(
            cycles=options.cycles or 4000,
            seed=options.seed if options.seed is not None else 7,
        ),
    )


def large_scale_job(options: RunOptions) -> Job:
    """The single search job the ``large-scale`` preset declares.

    Graph generation and the search both derive from the root seed (default
    2009), through the same hash-splitting the rest of the pipeline uses, so
    a fixed ``--seed`` pins the whole run — CLI and service paths alike.
    """
    size = options.size or "small"
    if size not in LARGE_SCALE_SIZES:
        raise ScenarioError(
            f"unknown size {size!r}; expected one of {tuple(LARGE_SCALE_SIZES)}"
        )
    root_seed = options.seed if options.seed is not None else 2009
    job_id = f"large-{size}"
    effective = replace(
        options,
        seed=root_seed,
        optimizer=options.optimizer or "portfolio",
        time_budget=options.time_budget or 30.0,
    )
    return Job(
        job_id=job_id,
        build=BuildSpec.from_scenario(
            "large-rrg",
            num_nodes=LARGE_SCALE_SIZES[size],
            seed=derive_seed(root_seed, "large-rrg", size),
        ),
        # No Simulate stage: the search already measures every incumbent
        # through the compiled engine at its own (deterministic) fidelity.
        optimize=optimize_params_for(effective, job_id),
        simulate=None,
    )


def _run_large_scale(options: RunOptions, events) -> Dict[str, Any]:
    job = large_scale_job(options)
    payload = run_jobs(
        [job], shards=options.shards, store=options.store, events=events
    )[0]
    graph = payload["graph"]
    best = payload["optimize"]["best"]
    search = payload["optimize"]["search"]
    xi = (
        best["cycle_time"] / best["throughput"]
        if best.get("throughput") else math.inf
    )
    rows = [(
        graph["name"],
        graph["num_nodes"],
        graph["num_edges"],
        payload["optimize"]["optimizer"],
        round(best["cycle_time"], 2),
        round(best["throughput"], 4),
        round(xi, 3),
        search["strategy"],
        search["evaluations"],
    )]
    return _result(
        "large-scale",
        LARGE_SCALE_HEADERS,
        rows,
        {
            "size": options.size or "small",
            "time_budget": search["time_budget"],
            "completed": search["completed"],
            "incumbent_xi": round(xi, 6),
            "initial_cycle_time": round(graph["initial_cycle_time"], 3),
        },
    )


def _run_scenario(target: str, options: RunOptions, events) -> Dict[str, Any]:
    job = scenario_job(target, options)
    payload = run_jobs(
        [job], shards=options.shards, store=options.store, events=events
    )[0]
    result = table1_from_payload(payload)
    return _result(
        target,
        TABLE1_HEADERS,
        table1_as_rows(result),
        {"delta_percent": round(result.delta_percent, 3)},
    )


def run_preset(
    target: str,
    options: Optional[RunOptions] = None,
    events: Optional[EventCallback] = None,
) -> Dict[str, Any]:
    """Execute a run target and return its rendered result dictionary.

    Args:
        target: An experiment preset (:data:`EXPERIMENT_TARGETS`) or any
            registered scenario name.
        options: Run options; defaults reproduce the published tables.
        events: Structured progress callback (None ignores events).

    Raises:
        UnknownTargetError: For a target that is neither preset nor scenario.
    """
    options = options or RunOptions()
    # Reject option/target combinations that would silently do nothing: the
    # paper presets always run the exact MILP (their tables are defined by
    # it), and --size only parameterizes the large-scale preset.  Catching
    # this here keeps the CLI honest and stops the service from keying
    # identical computations under different digests.
    if target in ("motivational", "table1", "table2", "table2-small",
                  "ablations"):
        if options.optimizer not in (None, "milp") or (
            options.time_budget is not None
        ) or options.pool_size is not None:
            raise ScenarioError(
                f"preset {target!r} always runs the exact MILP; "
                "--optimizer/--time-budget/--pool-size apply to scenario "
                "runs and the large-scale preset"
            )
    if options.size is not None and target != "large-scale":
        raise ScenarioError(
            "--size parameterizes the large-scale preset only"
        )

    # Watch the event stream for ``degraded`` markers: reducers flatten
    # payloads into rows, so this is the only place a deadline fallback deep
    # inside a sweep can reach the rendered result (callers — the service,
    # the CLI — must be able to tell a degraded answer from an exact one,
    # and must never cache it).
    degraded: List[Dict[str, Any]] = []

    def observe(event) -> None:
        if event.kind == ev.DEGRADED:
            degraded.append({
                "job_id": event.job_id, "reason": event.message,
            })
        if events is not None:
            events(event)

    if target == "motivational":
        result = _run_motivational(options, observe)
    elif target == "table1":
        result = _run_table1(options, observe)
    elif target in ("table2", "table2-small"):
        result = _run_table2(options, observe, small=target.endswith("small"))
    elif target == "ablations":
        result = _run_ablations(options, observe)
    elif target == "large-scale":
        result = _run_large_scale(options, observe)
    elif has_scenario(target):
        result = _run_scenario(target, options, observe)
    else:
        known = ", ".join(EXPERIMENT_TARGETS)
        raise UnknownTargetError(
            f"unknown target {target!r}; expected one of {known} "
            "or a scenario name (see list-scenarios)"
        )
    if degraded:
        result["degraded"] = degraded
    return result


def is_run_target(target: str) -> bool:
    """Whether ``target`` is executable by :func:`run_preset`."""
    return target in EXPERIMENT_TARGETS or has_scenario(target)


__all__ = [
    "EXPERIMENT_TARGETS",
    "LARGE_SCALE_HEADERS",
    "LARGE_SCALE_SIZES",
    "TABLE1_HEADERS",
    "TABLE2_HEADERS",
    "RunOptions",
    "UnknownTargetError",
    "is_run_target",
    "large_scale_job",
    "optimize_params_for",
    "run_preset",
    "scenario_job",
]
