"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width text table.

    Args:
        headers: Column titles.
        rows: Row values; floats are formatted with ``float_format``, other
            values with ``str``.
        float_format: Format string applied to float cells.

    Returns:
        The formatted table, ending with a newline.
    """
    rendered: List[List[str]] = [list(map(str, headers))]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)

    widths = [0] * len(rendered[0])
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    lines = []
    for index, cells in enumerate(rendered):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
    return "\n".join(lines) + "\n"
