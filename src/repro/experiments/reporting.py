"""Plain-text rendering of experiment results and pipeline progress.

Experiments themselves no longer print: they emit structured
:class:`~repro.pipeline.events.PipelineEvent` records through the runner's
callback.  This module renders those events (and result tables) as text for
the CLI and the example scripts; other consumers can aggregate the same
events however they like.
"""

from __future__ import annotations

import json
import sys
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.pipeline import events as ev


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width text table.

    Args:
        headers: Column titles.
        rows: Row values; floats are formatted with ``float_format``, other
            values with ``str``.
        float_format: Format string applied to float cells.

    Returns:
        The formatted table, ending with a newline.
    """
    rendered: List[List[str]] = [list(map(str, headers))]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)

    widths = [0] * len(rendered[0])
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    lines = []
    for index, cells in enumerate(rendered):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
    return "\n".join(lines) + "\n"


def render_event(event: ev.PipelineEvent) -> Optional[str]:
    """One line of text for a pipeline event (None for events not rendered).

    Job-start events are skipped — in a sharded run every job "starts" at
    submission time, so rendering them would only double the output.
    """
    if event.kind == ev.PIPELINE_START:
        mode = "serial" if (event.shards or 1) <= 1 else f"{event.shards} shards"
        return f"pipeline: {event.total} job(s), {mode}"
    if event.kind == ev.JOB_DONE:
        suffix = " (cached)" if event.cached else ""
        seconds = f" in {event.seconds:.2f}s" if event.seconds is not None else ""
        return f"[{event.index}/{event.total}] {event.job_id}: done{seconds}{suffix}"
    if event.kind == ev.JOB_FAILED:
        return f"[{event.index}/{event.total}] {event.job_id}: FAILED {event.message}"
    if event.kind in (ev.FALLBACK, ev.WORKER_RETRY, ev.ABORTED):
        return f"pipeline: {event.message}"
    if event.kind == ev.DEGRADED:
        return (
            f"[{event.index}/{event.total}] {event.job_id}: "
            f"DEGRADED ({event.message})"
        )
    if event.kind == ev.PIPELINE_DONE:
        seconds = f" in {event.seconds:.2f}s" if event.seconds is not None else ""
        return f"pipeline: finished {event.total} job(s){seconds}"
    return None


def render_event_json(event: ev.PipelineEvent) -> str:
    """One event as a compact JSON line (the wire format of the service).

    Unlike :func:`render_event`, *every* event renders — including
    ``job-start`` — because remote consumers track in-flight work from the
    stream rather than from a shared terminal.  The object round-trips via
    ``PipelineEvent(**json.loads(line))``.
    """
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


def event_printer(
    stream: Optional[TextIO] = None, fmt: str = "text"
) -> ev.EventCallback:
    """An event callback that prints rendered events (the CLI's observer).

    Args:
        stream: Output stream (default stdout).
        fmt: ``"text"`` for the human one-liners (byte-identical to the
            historical output) or ``"json"`` for one JSON object per line.
    """
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown event format {fmt!r}")
    output = stream if stream is not None else sys.stdout

    def _print(event: ev.PipelineEvent) -> None:
        if fmt == "json":
            line: Optional[str] = render_event_json(event)
        else:
            line = render_event(event)
        if line is not None:
            print(line, file=output, flush=True)

    return _print
