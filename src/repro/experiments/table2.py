"""Table 2: the full benchmark sweep.

For every benchmark the experiment reports the columns of Table 2:

* ``|N1|``, ``|N2|``, ``|E|`` — graph sizes,
* ``xi*`` — effective cycle time before optimisation (equal to the cycle time
  because the initial RRGs have no bubbles),
* ``xi_nee`` — the best late-evaluation effective cycle time (min-delay
  retiming in practice),
* ``xi_lp_min`` — effective cycle time of the configuration selected by the
  LP bound (RC_lp_min), evaluated by simulation,
* ``xi_sim_min`` — the best simulated effective cycle time among the
  candidate configurations returned by MIN_EFF_CYC (RC_min),
* ``I%`` — the improvement of early evaluation over the late-evaluation
  baseline, ``(xi_nee - xi_sim_min) / xi_nee * 100``.

The paper runs the 18 ISCAS89-derived graphs at full size with a 20-minute
CPLEX timeout per MILP; the default harness here scales the graphs down so
the whole sweep completes in minutes, which preserves the qualitative
behaviour (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.cycle_time import cycle_time
from repro.core.milp import MilpSettings
from repro.core.optimizer import min_effective_cycle_time
from repro.core.rrg import RRG
from repro.retiming.late_evaluation import late_evaluation_baseline
from repro.sim.batch import simulate_configurations
from repro.workloads.iscas_like import table2_benchmark_suite


@dataclass
class Table2Row:
    """One benchmark row of Table 2."""

    name: str
    simple_nodes: int
    early_nodes: int
    edges: int
    xi_initial: float
    xi_late: float
    xi_lp_min: float
    xi_sim_min: float

    @property
    def improvement_percent(self) -> float:
        """I% = (xi_nee - xi_sim_min) / xi_nee * 100."""
        if self.xi_late <= 0:
            return math.nan
        return (self.xi_late - self.xi_sim_min) / self.xi_late * 100.0


def evaluate_benchmark(
    rrg: RRG,
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 11,
    settings: Optional[MilpSettings] = None,
) -> Table2Row:
    """Compute one Table 2 row for a single RRG."""
    initial_tau = cycle_time(rrg)

    baseline = late_evaluation_baseline(
        rrg, epsilon=epsilon, settings=settings, full_search=False
    )
    xi_late = baseline.effective_cycle_time

    result = min_effective_cycle_time(rrg, k=5, epsilon=epsilon, settings=settings)
    # Simulate the LP-preferred configuration and every stored candidate in
    # one batched array program (all configurations share the RRG structure,
    # so they stack into the engine's 2-D state; the shared seed keeps each
    # lane bit-identical to a serial run).
    best_bound = result.best
    candidates = [best_bound.configuration] + [p.configuration for p in result.points]
    throughputs = simulate_configurations(candidates, cycles=cycles, seed=seed)

    # xi_lp_min: the configuration the LP bound prefers.
    lp_throughput = throughputs[0]
    xi_lp_min = (
        best_bound.cycle_time / lp_throughput if lp_throughput > 0 else math.inf
    )

    # xi_sim_min: the best simulated candidate.
    xi_sim_min = xi_lp_min
    for point, throughput in zip(result.points, throughputs[1:]):
        point.throughput = throughput
        if throughput > 0:
            xi_sim_min = min(xi_sim_min, point.cycle_time / throughput)

    # Early evaluation can only help; if sampling noise made the optimised
    # system look worse than the late-evaluation baseline, fall back to it
    # (the baseline configuration is always available).
    xi_sim_min = min(xi_sim_min, xi_late)
    xi_lp_min = min(xi_lp_min, xi_late)

    return Table2Row(
        name=rrg.name,
        simple_nodes=len(rrg.simple_nodes),
        early_nodes=len(rrg.early_nodes),
        edges=rrg.num_edges,
        xi_initial=initial_tau,
        xi_late=xi_late,
        xi_lp_min=xi_lp_min,
        xi_sim_min=xi_sim_min,
    )


def run_table2(
    scale: float = 0.25,
    names: Optional[Sequence[str]] = None,
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 2009,
    settings: Optional[MilpSettings] = None,
) -> List[Table2Row]:
    """Run the Table 2 sweep over (a subset of) the benchmark suite.

    Args:
        scale: Size multiplier applied to the published graph sizes; 1.0 runs
            the full-size graphs (slow), 0.25 runs in minutes.
        names: Optional subset of circuit names.
        epsilon: Throughput step of the MIN_EFF_CYC loop.
        cycles: Simulation length per configuration.
        seed: Base seed for graph generation.
        settings: MILP settings (time limits etc.).
    """
    suite = table2_benchmark_suite(scale=scale, seed=seed, names=list(names) if names else None)
    rows: List[Table2Row] = []
    for name, rrg in suite.items():
        rows.append(
            evaluate_benchmark(
                rrg, epsilon=epsilon, cycles=cycles, seed=seed, settings=settings
            )
        )
    return rows


def average_improvement(rows: Sequence[Table2Row]) -> float:
    """Average of the I% column (the paper reports 14.5 %)."""
    values = [row.improvement_percent for row in rows if not math.isnan(row.improvement_percent)]
    return sum(values) / len(values) if values else math.nan


def table2_as_rows(rows: Sequence[Table2Row]) -> List[Sequence[object]]:
    """Rows formatted like the paper's Table 2 (for printing)."""
    formatted: List[Sequence[object]] = []
    for row in rows:
        formatted.append(
            (
                row.name,
                row.simple_nodes,
                row.early_nodes,
                row.edges,
                round(row.xi_initial, 2),
                round(row.xi_late, 2),
                round(row.xi_lp_min, 2),
                round(row.xi_sim_min, 2),
                round(row.improvement_percent, 1),
            )
        )
    return formatted
