"""Table 2: the full benchmark sweep.

For every benchmark the experiment reports the columns of Table 2:

* ``|N1|``, ``|N2|``, ``|E|`` — graph sizes,
* ``xi*`` — effective cycle time before optimisation (equal to the cycle time
  because the initial RRGs have no bubbles),
* ``xi_nee`` — the best late-evaluation effective cycle time (min-delay
  retiming in practice),
* ``xi_lp_min`` — effective cycle time of the configuration selected by the
  LP bound (RC_lp_min), evaluated by simulation,
* ``xi_sim_min`` — the best simulated effective cycle time among the
  candidate configurations returned by MIN_EFF_CYC (RC_min),
* ``I%`` — the improvement of early evaluation over the late-evaluation
  baseline, ``(xi_nee - xi_sim_min) / xi_nee * 100``.

The sweep is one pipeline job per benchmark (each a Build/Optimize/Simulate
declaration over the ``iscas`` registry scenario), so ``run_table2`` fans out
over shards and reuses the artifact store when asked to; per-benchmark seeds
are derived from the root ``seed`` exactly as the serial harness always did
(``seed + row_index`` for generation, the root seed for simulation), which
keeps sharded and serial tables bit-identical.

The paper runs the 18 ISCAS89-derived graphs at full size with a 20-minute
CPLEX timeout per MILP; the default harness here scales the graphs down so
the whole sweep completes in minutes, which preserves the qualitative
behaviour (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.milp import MilpSettings
from repro.core.rrg import RRG
from repro.pipeline.events import EventCallback
from repro.pipeline.runner import StoreLike, run_jobs
from repro.pipeline.stages import (
    BuildSpec,
    Job,
    OptimizeParams,
    SimulateParams,
    best_simulated_xi,
)
from repro.workloads.iscas_like import TABLE2_SPECS


@dataclass
class Table2Row:
    """One benchmark row of Table 2."""

    name: str
    simple_nodes: int
    early_nodes: int
    edges: int
    xi_initial: float
    xi_late: float
    xi_lp_min: float
    xi_sim_min: float

    @property
    def improvement_percent(self) -> float:
        """I% = (xi_nee - xi_sim_min) / xi_nee * 100."""
        if self.xi_late <= 0:
            return math.nan
        return (self.xi_late - self.xi_sim_min) / self.xi_late * 100.0


def table2_job(
    build: BuildSpec,
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 11,
    settings: Optional[MilpSettings] = None,
    job_id: str = "table2",
) -> Job:
    """Declare the Table 2 pipeline job for one benchmark workload."""
    return Job(
        job_id=job_id,
        build=build,
        optimize=OptimizeParams.from_settings(
            settings, k=5, epsilon=epsilon, baseline=True
        ),
        # The LP-preferred configuration is simulated as lane 0 next to every
        # stored candidate, in one batched array program; the shared seed
        # keeps each lane bit-identical to a serial run.
        simulate=SimulateParams(cycles=cycles, seed=seed, include_best=True),
    )


def table2_row_from_payload(payload: Mapping[str, object]) -> Table2Row:
    """Reduce one benchmark payload to its Table 2 row (Report stage)."""
    graph = payload["graph"]
    xi_late = payload["baseline"]["effective_cycle_time"]
    best = payload["optimize"]["best"]
    throughputs = payload["simulate"]["throughputs"]

    # xi_lp_min: the configuration the LP bound prefers (lane 0).
    lp_throughput = throughputs[0]
    xi_lp_min = (
        best["cycle_time"] / lp_throughput if lp_throughput > 0 else math.inf
    )

    # xi_sim_min: the best simulated candidate.  The floor encodes that early
    # evaluation can only help: if sampling noise made the optimised system
    # look worse than the LP pick or the late-evaluation baseline, fall back
    # to those (their configurations are always available).
    xi_sim_min = best_simulated_xi(payload, floor=min(xi_lp_min, xi_late))
    xi_lp_min = min(xi_lp_min, xi_late)

    return Table2Row(
        name=graph["name"],
        simple_nodes=graph["simple_nodes"],
        early_nodes=graph["early_nodes"],
        edges=graph["num_edges"],
        xi_initial=graph["initial_cycle_time"],
        xi_late=xi_late,
        xi_lp_min=xi_lp_min,
        xi_sim_min=xi_sim_min,
    )


def evaluate_benchmark(
    rrg: RRG,
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 11,
    settings: Optional[MilpSettings] = None,
) -> Table2Row:
    """Compute one Table 2 row for a single RRG."""
    job = table2_job(
        BuildSpec.from_rrg(rrg),
        epsilon=epsilon,
        cycles=cycles,
        seed=seed,
        settings=settings,
        job_id=rrg.name,
    )
    return table2_row_from_payload(run_jobs([job])[0])


def table2_jobs(
    scale: float = 0.25,
    names: Optional[Sequence[str]] = None,
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 2009,
    settings: Optional[MilpSettings] = None,
) -> List[Job]:
    """One pipeline job per (selected) Table 2 benchmark.

    Per-benchmark generation seeds are ``seed + row_index`` with the row
    index taken over the *full* published suite, so a subset sweep builds the
    same graphs as the full one.
    """
    jobs: List[Job] = []
    for offset, spec in enumerate(TABLE2_SPECS):
        if names is not None and spec.name not in names:
            continue
        jobs.append(table2_job(
            BuildSpec.from_scenario(
                "iscas", name=spec.name, scale=scale, seed=seed + offset
            ),
            epsilon=epsilon,
            cycles=cycles,
            seed=seed,
            settings=settings,
            job_id=spec.name,
        ))
    return jobs


def run_table2(
    scale: float = 0.25,
    names: Optional[Sequence[str]] = None,
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 2009,
    settings: Optional[MilpSettings] = None,
    shards: int = 1,
    store: StoreLike = None,
    events: Optional[EventCallback] = None,
) -> List[Table2Row]:
    """Run the Table 2 sweep over (a subset of) the benchmark suite.

    Args:
        scale: Size multiplier applied to the published graph sizes; 1.0 runs
            the full-size graphs (slow), 0.25 runs in minutes.
        names: Optional subset of circuit names.
        epsilon: Throughput step of the MIN_EFF_CYC loop.
        cycles: Simulation length per configuration.
        seed: Root seed: graph generation uses ``seed + row_index``,
            simulation uses ``seed`` on every lane, so results do not depend
            on sharding.
        settings: MILP settings (time limits etc.).
        shards: Worker processes for the sweep (1 = serial).
        store: Optional persistent artifact store (path or ArtifactStore).
        events: Optional structured progress callback.
    """
    jobs = table2_jobs(
        scale=scale,
        names=list(names) if names else None,
        epsilon=epsilon,
        cycles=cycles,
        seed=seed,
        settings=settings,
    )
    payloads = run_jobs(jobs, shards=shards, store=store, events=events)
    return [table2_row_from_payload(payload) for payload in payloads]


def average_improvement(rows: Sequence[Table2Row]) -> float:
    """Average of the I% column (the paper reports 14.5 %)."""
    values = [row.improvement_percent for row in rows if not math.isnan(row.improvement_percent)]
    return sum(values) / len(values) if values else math.nan


def table2_as_rows(rows: Sequence[Table2Row]) -> List[Sequence[object]]:
    """Rows formatted like the paper's Table 2 (for printing)."""
    formatted: List[Sequence[object]] = []
    for row in rows:
        formatted.append(
            (
                row.name,
                row.simple_nodes,
                row.early_nodes,
                row.edges,
                round(row.xi_initial, 2),
                round(row.xi_late, 2),
                round(row.xi_lp_min, 2),
                round(row.xi_sim_min, 2),
                round(row.improvement_percent, 1),
            )
        )
    return formatted
