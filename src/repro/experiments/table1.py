"""Table 1: all non-dominated configurations of one benchmark.

For a single RRG the experiment runs MIN_EFF_CYC, and for every non-dominated
configuration reports the columns of Table 1:

* ``tau`` — cycle time,
* ``Theta_lp`` — LP throughput upper bound,
* ``Theta`` — simulated throughput,
* ``err%`` — relative error of the bound,
* ``xi_lp`` and ``xi`` — effective cycle times from the bound and from the
  simulation,
* ``Delta%`` — how much worse the bound-selected configuration (RC_lp_min) is
  compared with the simulation-selected one (RC_min).

The experiment is a single Optimize+Simulate pipeline job; ``run_table1`` is
the thin declaration over :mod:`repro.pipeline`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.milp import MilpSettings
from repro.core.optimizer import OptimizationResult
from repro.core.rrg import RRG
from repro.pipeline.runner import run_jobs
from repro.pipeline.stages import (
    BuildSpec,
    Job,
    OptimizeParams,
    SimulateParams,
    optimization_from_payload,
)


@dataclass
class Table1Row:
    """One non-dominated configuration (one row of Table 1)."""

    cycle_time: float
    throughput_bound: float
    throughput: float

    @property
    def error_percent(self) -> float:
        """Relative difference between the bound and the simulated throughput."""
        if self.throughput <= 0:
            return math.nan
        return (self.throughput_bound - self.throughput) / self.throughput * 100.0

    @property
    def effective_cycle_time_bound(self) -> float:
        return self.cycle_time / self.throughput_bound

    @property
    def effective_cycle_time(self) -> float:
        return self.cycle_time / self.throughput


@dataclass
class Table1Result:
    """The full Table 1 for one benchmark.

    Attributes:
        name: Benchmark name.
        rows: One row per non-dominated configuration, by increasing cycle
            time.
        delta_percent: Relative gap between the effective cycle time of the
            bound-selected configuration and the simulation-selected one
            (the ``Delta%`` column; 0 when both coincide).
        optimization: The optimiser output with live configurations,
            reconstructed from the pipeline payload (None when the reducer
            was given no RRG to bind configurations to).
    """

    name: str
    rows: List[Table1Row]
    delta_percent: float
    optimization: Optional[OptimizationResult]

    @property
    def best_by_bound(self) -> Table1Row:
        return min(self.rows, key=lambda r: r.effective_cycle_time_bound)

    @property
    def best_by_simulation(self) -> Table1Row:
        return min(self.rows, key=lambda r: r.effective_cycle_time)


def table1_job(
    build: BuildSpec,
    epsilon: float = 0.05,
    cycles: int = 5000,
    seed: int = 7,
    settings: Optional[MilpSettings] = None,
    k: int = 5,
    job_id: str = "table1",
) -> Job:
    """Declare the Table 1 pipeline job for one workload."""
    return Job(
        job_id=job_id,
        build=build,
        optimize=OptimizeParams.from_settings(settings, k=k, epsilon=epsilon),
        simulate=SimulateParams(cycles=cycles, seed=seed),
    )


def table1_from_payload(
    payload: Mapping[str, object], rrg: Optional[RRG] = None
) -> Table1Result:
    """Reduce one job payload to the public Table 1 result (Report stage)."""
    graph = payload["graph"]
    points = payload["optimize"]["points"]
    throughputs = payload["simulate"]["throughputs"]
    rows = [
        Table1Row(
            cycle_time=point["cycle_time"],
            throughput_bound=point["throughput_bound"],
            throughput=throughput,
        )
        for point, throughput in zip(points, throughputs)
    ]
    rows.sort(key=lambda r: r.cycle_time)

    best_bound = min(rows, key=lambda r: r.effective_cycle_time_bound)
    best_sim = min(rows, key=lambda r: r.effective_cycle_time)
    if best_sim.effective_cycle_time > 0:
        delta = (
            (best_bound.effective_cycle_time - best_sim.effective_cycle_time)
            / best_sim.effective_cycle_time
            * 100.0
        )
    else:
        delta = math.nan
    return Table1Result(
        name=graph["name"],
        rows=rows,
        delta_percent=delta,
        optimization=(
            optimization_from_payload(payload, rrg) if rrg is not None else None
        ),
    )


def run_table1(
    rrg: RRG,
    epsilon: float = 0.05,
    cycles: int = 5000,
    seed: int = 7,
    settings: Optional[MilpSettings] = None,
    k: int = 5,
) -> Table1Result:
    """Produce the Table 1 analysis for one benchmark RRG."""
    job = table1_job(
        BuildSpec.from_rrg(rrg),
        epsilon=epsilon,
        cycles=cycles,
        seed=seed,
        settings=settings,
        k=k,
        job_id=rrg.name,
    )
    payload = run_jobs([job])[0]
    return table1_from_payload(payload, rrg=rrg)


def table1_as_rows(result: Table1Result) -> List[Sequence[object]]:
    """Rows formatted like the paper's Table 1 (for printing)."""
    formatted: List[Sequence[object]] = []
    for row in result.rows:
        formatted.append(
            (
                result.name,
                round(row.cycle_time, 2),
                round(row.throughput_bound, 4),
                round(row.throughput, 4),
                round(row.error_percent, 2),
                round(row.effective_cycle_time_bound, 2),
                round(row.effective_cycle_time, 2),
            )
        )
    return formatted
