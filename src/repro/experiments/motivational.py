"""The motivational example of the paper (Figures 1 and 2, Section 1.4).

For each value of the select probability ``alpha`` this experiment reports,
for the three configurations of the figures:

* the cycle time,
* the exact throughput (reachable-marking Markov chain),
* a simulated throughput estimate,
* the LP upper bound,
* the effective cycle time,

and checks them against the numbers quoted in the paper: throughput 0.491 at
``alpha = 0.5`` and 0.719 at ``alpha = 0.9`` for Figure 1(b), and
``1 / (3 - 2 alpha)`` for the optimal configuration of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.cycle_time import cycle_time
from repro.gmg.lp_bound import throughput_upper_bound
from repro.gmg.markov import exact_throughput
from repro.gmg.simulation import simulate_throughput
from repro.workloads.examples import (
    figure1a_rrg,
    figure1b_rrg,
    figure2_expected_throughput,
    figure2_rrg,
)


@dataclass
class MotivationalRow:
    """One (configuration, alpha) data point of the motivational example.

    Attributes:
        figure: "1a", "1b" or "2".
        alpha: Select probability of the multiplexer's top channel.
        cycle_time: tau of the configuration.
        exact: Exact throughput from the Markov chain.
        simulated: Simulated throughput estimate.
        lp_bound: LP throughput upper bound.
        expected: Value quoted in the paper (None when the paper gives none).
    """

    figure: str
    alpha: float
    cycle_time: float
    exact: float
    simulated: float
    lp_bound: float
    expected: Optional[float] = None

    @property
    def effective_cycle_time(self) -> float:
        return self.cycle_time / self.exact if self.exact else float("inf")


#: Throughputs quoted in Section 1.4 for Figure 1(b).
PAPER_FIGURE1B_THROUGHPUT = {0.5: 0.491, 0.9: 0.719}


def run_motivational(
    alphas: Sequence[float] = (0.5, 0.9),
    cycles: int = 20000,
    seed: int = 1,
) -> List[MotivationalRow]:
    """Evaluate the three motivational configurations for each alpha."""
    rows: List[MotivationalRow] = []
    for alpha in alphas:
        builders = {
            "1a": (figure1a_rrg, None),
            "1b": (figure1b_rrg, PAPER_FIGURE1B_THROUGHPUT.get(round(alpha, 3))),
            "2": (figure2_rrg, figure2_expected_throughput(alpha)),
        }
        for figure, (builder, expected) in builders.items():
            rrg = builder(alpha)
            rows.append(
                MotivationalRow(
                    figure=figure,
                    alpha=alpha,
                    cycle_time=cycle_time(rrg),
                    exact=exact_throughput(rrg).throughput,
                    simulated=simulate_throughput(rrg, cycles=cycles, seed=seed),
                    lp_bound=throughput_upper_bound(rrg),
                    expected=expected,
                )
            )
    return rows
