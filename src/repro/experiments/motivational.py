"""The motivational example of the paper (Figures 1 and 2, Section 1.4).

For each value of the select probability ``alpha`` this experiment reports,
for the three configurations of the figures:

* the cycle time,
* the exact throughput (reachable-marking Markov chain),
* a simulated throughput estimate,
* the LP upper bound,
* the effective cycle time,

and checks them against the numbers quoted in the paper: throughput 0.491 at
``alpha = 0.5`` and 0.719 at ``alpha = 0.9`` for Figure 1(b), and
``1 / (3 - 2 alpha)`` for the optimal configuration of Figure 2.

Each (figure, alpha) data point is one evaluate-only pipeline job (no
Optimize stage — the figures *are* the configurations), so the whole study
fans out across shards like any other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.pipeline.events import EventCallback
from repro.pipeline.runner import StoreLike, run_jobs
from repro.pipeline.stages import BuildSpec, Job, SimulateParams
from repro.workloads.examples import figure2_expected_throughput


@dataclass
class MotivationalRow:
    """One (configuration, alpha) data point of the motivational example.

    Attributes:
        figure: "1a", "1b" or "2".
        alpha: Select probability of the multiplexer's top channel.
        cycle_time: tau of the configuration.
        exact: Exact throughput from the Markov chain.
        simulated: Simulated throughput estimate.
        lp_bound: LP throughput upper bound.
        expected: Value quoted in the paper (None when the paper gives none).
    """

    figure: str
    alpha: float
    cycle_time: float
    exact: float
    simulated: float
    lp_bound: float
    expected: Optional[float] = None

    @property
    def effective_cycle_time(self) -> float:
        return self.cycle_time / self.exact if self.exact else float("inf")


#: Throughputs quoted in Section 1.4 for Figure 1(b).
PAPER_FIGURE1B_THROUGHPUT = {0.5: 0.491, 0.9: 0.719}

#: (figure label, registry scenario) in the paper's presentation order.
_FIGURES = (("1a", "figure1a"), ("1b", "figure1b"), ("2", "figure2"))


def motivational_jobs(
    alphas: Sequence[float] = (0.5, 0.9),
    cycles: int = 20000,
    seed: int = 1,
) -> List[Job]:
    """One evaluate-only job per (alpha, figure) pair."""
    jobs: List[Job] = []
    for alpha in alphas:
        for figure, scenario in _FIGURES:
            jobs.append(Job(
                job_id=f"figure{figure}-alpha{alpha:g}",
                build=BuildSpec.from_scenario(scenario, alpha=alpha),
                simulate=SimulateParams(
                    cycles=cycles, seed=seed, exact=True, lp_bound=True
                ),
                meta={"figure": figure, "alpha": alpha},
            ))
    return jobs


def _expected(figure: str, alpha: float) -> Optional[float]:
    if figure == "1b":
        return PAPER_FIGURE1B_THROUGHPUT.get(round(alpha, 3))
    if figure == "2":
        return figure2_expected_throughput(alpha)
    return None


def motivational_row_from_payload(
    payload: Mapping[str, object], meta: Mapping[str, object]
) -> MotivationalRow:
    """Reduce one evaluate-only payload to its table row (Report stage)."""
    figure = str(meta["figure"])
    alpha = float(meta["alpha"])
    evaluate = payload["simulate"]
    return MotivationalRow(
        figure=figure,
        alpha=alpha,
        cycle_time=payload["graph"]["initial_cycle_time"],
        exact=evaluate["exact"],
        simulated=evaluate["simulated"],
        lp_bound=evaluate["lp_bound"],
        expected=_expected(figure, alpha),
    )


def run_motivational(
    alphas: Sequence[float] = (0.5, 0.9),
    cycles: int = 20000,
    seed: int = 1,
    shards: int = 1,
    store: StoreLike = None,
    events: Optional[EventCallback] = None,
) -> List[MotivationalRow]:
    """Evaluate the three motivational configurations for each alpha."""
    jobs = motivational_jobs(alphas=alphas, cycles=cycles, seed=seed)
    payloads = run_jobs(jobs, shards=shards, store=store, events=events)
    return [
        motivational_row_from_payload(payload, job.meta)
        for payload, job in zip(payloads, jobs)
    ]
