"""Experiment drivers that regenerate the paper's tables and figures.

* :mod:`repro.experiments.motivational` — the Figure 1/2 numbers of
  Section 1.4 (throughputs 0.491 / 0.719 and ``1/(3 - 2 alpha)``).
* :mod:`repro.experiments.table1` — all non-dominated configurations of one
  benchmark, with LP bounds and simulated throughputs (Table 1).
* :mod:`repro.experiments.table2` — the full benchmark sweep: initial,
  late-evaluation and early-evaluation effective cycle times plus the
  improvement percentage (Table 2).
* :mod:`repro.experiments.ablations` — the observations of Section 5
  (improvement requires early-evaluation nodes on critical cycles; LP bound
  error grows with the number of bubbles).
* :mod:`repro.experiments.reporting` — plain-text rendering of result tables
  and pipeline progress events, shared by the CLI, the examples and the
  benchmark harness.

Every experiment is a thin declaration over :mod:`repro.pipeline`: it builds
picklable jobs (scenario + stage parameters), hands them to the sharded
runner and reduces the returned payloads into its public dataclasses, so all
entry points accept ``shards=N`` / ``store=...`` / ``events=...`` (or expose
``*_job``/``*_from_payload`` pairs) without changing their results.
"""

from repro.experiments.motivational import MotivationalRow, run_motivational
from repro.experiments.table1 import Table1Row, run_table1
from repro.experiments.table2 import Table2Row, run_table2
from repro.experiments.ablations import (
    EarlyPlacementResult,
    LpErrorSample,
    early_evaluation_placement_study,
    lp_error_study,
)
from repro.experiments.reporting import event_printer, format_table, render_event

__all__ = [
    "MotivationalRow",
    "run_motivational",
    "Table1Row",
    "run_table1",
    "Table2Row",
    "run_table2",
    "EarlyPlacementResult",
    "LpErrorSample",
    "early_evaluation_placement_study",
    "lp_error_study",
    "format_table",
    "render_event",
    "event_printer",
]
