"""Ablation studies backing the observations of Section 5.

* Observation 1: the improvement of retiming-and-recycling with early
  evaluation depends on *where* the early-evaluation nodes sit — if the
  critical cycles (those that need bubbles) have none, early evaluation does
  not help (I% = 0 for s832, s1488, s1494 in the paper).
* Observation 3: the LP throughput bound is optimistic and its error grows
  with the number of inserted bubbles (average ~12.5 % in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.milp import MilpSettings
from repro.core.optimizer import min_effective_cycle_time
from repro.core.rrg import RRG
from repro.core.throughput import configuration_throughput_bound
from repro.retiming.late_evaluation import late_evaluation_baseline
from repro.sim.batch import simulate_configurations
from repro.workloads.examples import unbalanced_fork_join


@dataclass
class EarlyPlacementResult:
    """Improvement with and without an early-evaluation node on the loop.

    Attributes:
        improvement_with_early: I% when the join evaluates early.
        improvement_without_early: I% when the same join evaluates late.
    """

    improvement_with_early: float
    improvement_without_early: float


def _improvement(rrg: RRG, epsilon: float, cycles: int, seed: int,
                 settings: Optional[MilpSettings]) -> float:
    baseline = late_evaluation_baseline(
        rrg, epsilon=epsilon, settings=settings, full_search=False
    )
    result = min_effective_cycle_time(rrg, k=3, epsilon=epsilon, settings=settings)
    best_xi = baseline.effective_cycle_time
    throughputs = simulate_configurations(
        [point.configuration for point in result.points], cycles=cycles, seed=seed
    )
    for point, throughput in zip(result.points, throughputs):
        if throughput > 0:
            best_xi = min(best_xi, point.cycle_time / throughput)
    if baseline.effective_cycle_time <= 0:
        return math.nan
    return (
        (baseline.effective_cycle_time - best_xi)
        / baseline.effective_cycle_time
        * 100.0
    )


def early_evaluation_placement_study(
    alpha: float = 0.85,
    long_branch_delay: float = 8.0,
    epsilon: float = 0.02,
    cycles: int = 4000,
    seed: int = 3,
    settings: Optional[MilpSettings] = None,
) -> EarlyPlacementResult:
    """Observation 1 on a controlled fork/join loop.

    The same graph is optimised twice: once with its join marked
    early-evaluating and once with every node simple.  With early evaluation
    the rarely-taken long branch can absorb bubbles almost for free, so the
    improvement should be clearly positive; without it the improvement
    collapses to (almost) zero.
    """
    with_early = unbalanced_fork_join(
        alpha=alpha, long_branch_delay=long_branch_delay, name="fork-join-early"
    )
    without_early = with_early.as_late_evaluation("fork-join-late")
    return EarlyPlacementResult(
        improvement_with_early=_improvement(
            with_early, epsilon, cycles, seed, settings
        ),
        improvement_without_early=_improvement(
            without_early, epsilon, cycles, seed, settings
        ),
    )


@dataclass
class LpErrorSample:
    """One configuration's LP bound error (Observation 3)."""

    name: str
    bubbles: int
    throughput_bound: float
    throughput: float

    @property
    def error_percent(self) -> float:
        if self.throughput <= 0:
            return math.nan
        return (self.throughput_bound - self.throughput) / self.throughput * 100.0


def lp_error_study(
    rrgs: Sequence[RRG],
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 5,
    settings: Optional[MilpSettings] = None,
) -> List[LpErrorSample]:
    """Measure the LP bound error over every non-dominated configuration.

    Returns one sample per stored configuration of every input graph; callers
    typically correlate :attr:`LpErrorSample.bubbles` with
    :attr:`LpErrorSample.error_percent`.
    """
    samples: List[LpErrorSample] = []
    for rrg in rrgs:
        result = min_effective_cycle_time(rrg, k=3, epsilon=epsilon, settings=settings)
        throughputs = simulate_configurations(
            [point.configuration for point in result.points],
            cycles=cycles,
            seed=seed,
        )
        for point, throughput in zip(result.points, throughputs):
            bound = configuration_throughput_bound(point.configuration)
            samples.append(
                LpErrorSample(
                    name=rrg.name,
                    bubbles=point.configuration.total_bubbles,
                    throughput_bound=bound,
                    throughput=throughput,
                )
            )
    return samples


def average_error(samples: Sequence[LpErrorSample]) -> float:
    """Average LP-bound error in percent (the paper reports ~12.5 %)."""
    values = [abs(s.error_percent) for s in samples if not math.isnan(s.error_percent)]
    return sum(values) / len(values) if values else math.nan
