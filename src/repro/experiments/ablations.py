"""Ablation studies backing the observations of Section 5.

* Observation 1: the improvement of retiming-and-recycling with early
  evaluation depends on *where* the early-evaluation nodes sit — if the
  critical cycles (those that need bubbles) have none, early evaluation does
  not help (I% = 0 for s832, s1488, s1494 in the paper).
* Observation 3: the LP throughput bound is optimistic and its error grows
  with the number of inserted bubbles (average ~12.5 % in the paper).

Both studies are declarative pipeline jobs: the placement study is a
two-job sweep (the same fork/join loop with and without its early join), the
LP-error study one job per input graph with bound recomputation enabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.milp import MilpSettings
from repro.core.rrg import RRG
from repro.pipeline.events import EventCallback
from repro.pipeline.runner import StoreLike, run_jobs
from repro.pipeline.stages import (
    BuildSpec,
    Job,
    OptimizeParams,
    SimulateParams,
    best_simulated_xi,
    improvement_percent,
)


@dataclass
class EarlyPlacementResult:
    """Improvement with and without an early-evaluation node on the loop.

    Attributes:
        improvement_with_early: I% when the join evaluates early.
        improvement_without_early: I% when the same join evaluates late.
    """

    improvement_with_early: float
    improvement_without_early: float


def improvement_job(
    build: BuildSpec,
    epsilon: float,
    cycles: int,
    seed: int,
    settings: Optional[MilpSettings],
    job_id: str,
) -> Job:
    """One I%-style job: baseline + MIN_EFF_CYC(k=3) + candidate simulation."""
    return Job(
        job_id=job_id,
        build=build,
        optimize=OptimizeParams.from_settings(
            settings, k=3, epsilon=epsilon, baseline=True
        ),
        simulate=SimulateParams(cycles=cycles, seed=seed),
    )


def improvement_from_payload(payload: Mapping[str, object]) -> float:
    """I% of one job: best simulated candidate against the late baseline."""
    xi_late = payload["baseline"]["effective_cycle_time"]
    if xi_late <= 0:
        return math.nan
    return improvement_percent(
        xi_late, best_simulated_xi(payload, floor=xi_late)
    )


def early_evaluation_placement_study(
    alpha: float = 0.85,
    long_branch_delay: float = 8.0,
    epsilon: float = 0.02,
    cycles: int = 4000,
    seed: int = 3,
    settings: Optional[MilpSettings] = None,
    shards: int = 1,
    store: StoreLike = None,
    events: Optional[EventCallback] = None,
) -> EarlyPlacementResult:
    """Observation 1 on a controlled fork/join loop.

    The same graph is optimised twice: once with its join marked
    early-evaluating and once with every node simple.  With early evaluation
    the rarely-taken long branch can absorb bubbles almost for free, so the
    improvement should be clearly positive; without it the improvement
    collapses to (almost) zero.
    """
    jobs = [
        improvement_job(
            BuildSpec.from_scenario(
                scenario, alpha=alpha, long_branch_delay=long_branch_delay
            ),
            epsilon, cycles, seed, settings, job_id=scenario,
        )
        for scenario in ("fork-join-early", "fork-join-late")
    ]
    payloads = run_jobs(jobs, shards=shards, store=store, events=events)
    return EarlyPlacementResult(
        improvement_with_early=improvement_from_payload(payloads[0]),
        improvement_without_early=improvement_from_payload(payloads[1]),
    )


@dataclass
class LpErrorSample:
    """One configuration's LP bound error (Observation 3)."""

    name: str
    bubbles: int
    throughput_bound: float
    throughput: float

    @property
    def error_percent(self) -> float:
        if self.throughput <= 0:
            return math.nan
        return (self.throughput_bound - self.throughput) / self.throughput * 100.0


def lp_error_samples_from_payload(
    payload: Mapping[str, object],
) -> List[LpErrorSample]:
    """Per-configuration bound-error samples of one job (Report stage)."""
    name = payload["graph"]["name"]
    points = payload["optimize"]["points"]
    throughputs = payload["simulate"]["throughputs"]
    bounds = payload["simulate"]["bounds"]
    return [
        LpErrorSample(
            name=name,
            bubbles=point["bubbles"],
            throughput_bound=bound,
            throughput=throughput,
        )
        for point, bound, throughput in zip(points, bounds, throughputs)
    ]


def lp_error_study(
    rrgs: Sequence[RRG],
    epsilon: float = 0.05,
    cycles: int = 4000,
    seed: int = 5,
    settings: Optional[MilpSettings] = None,
    shards: int = 1,
    store: StoreLike = None,
    events: Optional[EventCallback] = None,
) -> List[LpErrorSample]:
    """Measure the LP bound error over every non-dominated configuration.

    Returns one sample per stored configuration of every input graph; callers
    typically correlate :attr:`LpErrorSample.bubbles` with
    :attr:`LpErrorSample.error_percent`.
    """
    jobs = [
        Job(
            job_id=f"lp-error-{index}-{rrg.name}",
            build=BuildSpec.from_rrg(rrg),
            optimize=OptimizeParams.from_settings(settings, k=3, epsilon=epsilon),
            # recompute_bounds re-derives Theta_lp per stored configuration
            # with the default backend, independently of the warm-started
            # bound the optimizer tracked during its walk.
            simulate=SimulateParams(
                cycles=cycles, seed=seed, recompute_bounds=True
            ),
        )
        for index, rrg in enumerate(rrgs)
    ]
    payloads = run_jobs(jobs, shards=shards, store=store, events=events)
    samples: List[LpErrorSample] = []
    for payload in payloads:
        samples.extend(lp_error_samples_from_payload(payload))
    return samples


def average_error(samples: Sequence[LpErrorSample]) -> float:
    """Average LP-bound error in percent (the paper reports ~12.5 %)."""
    values = [abs(s.error_percent) for s in samples if not math.isnan(s.error_percent)]
    return sum(values) / len(values) if values else math.nan
