"""Step-based local-search strategies raced by the portfolio.

A strategy is a cooperative iterator: :meth:`Strategy.step` performs one
bounded unit of work (at most ``sample_size`` evaluation attempts) and
returns a new personal-best ``(state copy, evaluation)`` when it improved.
The racer interleaves steps across strategies, so every strategy is anytime
by construction and the interleaving order is deterministic.

Both strategies propose a *pool* of moves per step and evaluate the whole
pool through :meth:`~repro.search.problem.SearchProblem.evaluate_batch`
(one batched cycle-time sweep, one batched simulation of the uncached
lanes).  The pool size is a declarative parameter of the run — it enters
the racer's deterministic cost model — so same seed and same parameters
give the same incumbent on every host and kernel backend; the batch is
purely an executor choice.

Strategies only consume randomness from their own ``random.Random(seed)``;
evaluation attempts go through the shared :class:`~repro.search.problem.
SearchProblem` counters, which is what the racer budgets.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.search.problem import Evaluation, SearchProblem
from repro.search.state import Move, SearchState

Candidate = Tuple[SearchState, Evaluation]


def _pool_states(state: SearchState, moves: List[Move]) -> List[SearchState]:
    """One candidate state per move (apply / snapshot / revert)."""
    candidates: List[SearchState] = []
    for move in moves:
        state.apply(move)
        candidates.append(state.copy())
        state.revert(move)
    return candidates


class Strategy:
    """Base class: common bookkeeping for step-based strategies."""

    name = "strategy"

    def __init__(self) -> None:
        self.problem: Optional[SearchProblem] = None
        self.rng: Optional[random.Random] = None
        self.seed: Optional[int] = None
        self.steps = 0
        self.improvements = 0
        self.exhausted = False
        self.best_xi = math.inf

    def start(
        self, problem: SearchProblem, state: SearchState, evaluation: Evaluation,
        seed: int,
    ) -> None:
        """Bind the strategy to a problem and a starting point."""
        self.problem = problem
        self.rng = random.Random(seed)
        self.seed = seed
        self.state = state.copy()
        self.evaluation = evaluation
        self.best_xi = evaluation.effective_cycle_time

    def step(self) -> Optional[Candidate]:
        """One unit of work; a new personal best when improved, else None."""
        raise NotImplementedError

    def _record(self, evaluation: Evaluation) -> Optional[Candidate]:
        """Track the personal best; return the candidate when it improved."""
        xi = evaluation.effective_cycle_time
        if xi < self.best_xi - 1e-12:
            self.best_xi = xi
            self.improvements += 1
            return (self.state.copy(), evaluation)
        return None


class GreedyDescent(Strategy):
    """Steepest-descent over sampled neighborhoods, with random restarts.

    Each step samples up to ``sample_size`` moves, evaluates them through the
    admissible filters (threshold = the current point's ``xi``) and commits
    the best improving one.  At a local optimum the walk restarts from a
    random perturbation of the best state seen; after ``max_restarts``
    fruitless restarts the strategy is exhausted.
    """

    name = "descent"

    def __init__(
        self, sample_size: int = 12, max_restarts: int = 4,
        perturbation: int = 4,
    ) -> None:
        super().__init__()
        self.sample_size = sample_size
        self.max_restarts = max_restarts
        self.perturbation = perturbation
        self._restarts = 0

    def start(self, problem, state, evaluation, seed):  # noqa: D102
        super().start(problem, state, evaluation, seed)
        self._best_state = state.copy()
        self._restarts = 0

    def step(self) -> Optional[Candidate]:
        if self.exhausted:
            return None
        self.steps += 1
        problem, state, rng = self.problem, self.state, self.rng
        moves = problem.sample_moves(state, rng, self.sample_size)
        threshold = self.evaluation.effective_cycle_time
        evaluations = problem.evaluate_batch(
            _pool_states(state, moves), threshold=threshold
        )
        best_move: Optional[Move] = None
        best_eval: Optional[Evaluation] = None
        for move, candidate in zip(moves, evaluations):
            if candidate is None:
                continue
            if (
                best_eval is None
                or candidate.effective_cycle_time
                < best_eval.effective_cycle_time - 1e-12
            ):
                best_move, best_eval = move, candidate
        if best_move is not None and (
            best_eval.effective_cycle_time < threshold - 1e-12
        ):
            state.apply(best_move)
            self.evaluation = best_eval
            improved = self._record(best_eval)
            if improved is not None:
                self._best_state = improved[0].copy()
            return improved
        # Local optimum: restart from a perturbation of the best state.
        self._restarts += 1
        if self._restarts > self.max_restarts:
            self.exhausted = True
            return None
        self.state = self._best_state.copy()
        problem.random_walk(self.state, rng, self.perturbation)
        self.evaluation = problem.evaluate(self.state)
        return self._record(self.evaluation)


class SimulatedAnnealing(Strategy):
    """Metropolis acceptance over pooled moves, geometric cooling.

    Each step evaluates a pool of up to ``sample_size`` sampled moves in one
    batch, then walks the lanes in pool order as Metropolis *attempts*: each
    lane advances the temperature and (for uphill lanes) draws one
    acceptance uniform from the strategy's own RNG stream; the first
    accepted lane commits and the rest of the pool is discarded — those
    attempts are already spent, exactly as if they had been proposed and
    rejected one at a time.  The schedule counts attempts (= evaluation
    attempts), so the racer's deterministic budget sizing is unchanged by
    pooling; the strategy is exhausted when ``schedule_steps`` attempts
    complete or the temperature hits its floor.
    """

    name = "anneal"

    def __init__(
        self, schedule_steps: int = 200, initial_fraction: float = 0.08,
        min_temperature: float = 1e-4, sample_size: int = 6,
    ) -> None:
        super().__init__()
        self.schedule_steps = max(1, int(schedule_steps))
        self.initial_fraction = initial_fraction
        self.min_temperature = min_temperature
        self.sample_size = sample_size
        self.attempts = 0

    def start(self, problem, state, evaluation, seed):  # noqa: D102
        super().start(problem, state, evaluation, seed)
        self.attempts = 0
        xi0 = evaluation.effective_cycle_time
        scale = xi0 if math.isfinite(xi0) else 1.0
        self.temperature = max(self.initial_fraction * scale,
                               self.min_temperature)
        # Reach the floor exactly when the schedule ends.
        ratio = self.min_temperature / self.temperature
        self.cooling = ratio ** (1.0 / self.schedule_steps)

    def step(self) -> Optional[Candidate]:
        if self.exhausted:
            return None
        self.steps += 1
        problem, state, rng = self.problem, self.state, self.rng
        pool = min(self.sample_size, self.schedule_steps - self.attempts)
        moves = problem.sample_moves(state, rng, max(1, pool))
        if not moves:
            # No legal move exists from this state (move generation is
            # deterministic up to subsampling) — nothing left to anneal.
            self.exhausted = True
            return None
        # Anneal must see the true value of accepted uphill moves, so the
        # pool evaluates without the incumbent filter.
        evaluations = problem.evaluate_batch(_pool_states(state, moves))
        improved: Optional[Candidate] = None
        for move, candidate in zip(moves, evaluations):
            self.attempts += 1
            delta = (
                candidate.effective_cycle_time
                - self.evaluation.effective_cycle_time
            )
            accept = delta <= 0 or (
                math.isfinite(delta)
                and rng.random() < math.exp(-delta / self.temperature)
            )
            self.temperature *= self.cooling
            if accept:
                state.apply(move)
                self.evaluation = candidate
                improved = self._record(candidate)
                break
        if self.attempts >= self.schedule_steps or (
            self.temperature < self.min_temperature
        ):
            self.exhausted = True
        return improved


def make_strategy(name: str, **overrides) -> Strategy:
    """Instantiate a strategy by registry name (``descent`` / ``anneal``)."""
    if name == "descent":
        return GreedyDescent(**overrides)
    if name == "anneal":
        return SimulatedAnnealing(**overrides)
    raise ValueError(
        f"unknown search strategy {name!r}; expected 'descent' or 'anneal'"
    )
