"""Mutable retiming-and-recycling search state with cheap moves.

A :class:`SearchState` is the local-search view of a configuration: integer
lags per node and token/buffer counts per edge, stored in flat lists indexed
by node/edge position so a move touches only the incident edges.  Two move
kinds span the same configuration space the MILPs explore (anti-tokens
included — the compiled engine simulates negative markings exactly like the
MILP experiments' candidates):

* ``retime`` — shift one register across a node (lag +-1).  Registers move,
  bubbles stay: each incident edge keeps its bubble count
  (``R' - max(R0', 0)``), so the buffer vector follows the token shift.
* ``bubble`` — insert or remove one empty buffer on an edge.

Every move preserves feasibility by construction: ``R' >= max(R0', 0)``
holds on every edge, and liveness is inherited from the base RRG because
retiming preserves cycle token sums and bubbles do not change tokens at
all (a live cycle therefore always keeps a buffered edge, which is what
keeps the zero-buffer subgraph acyclic for the cycle-time sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.rrg import RRG

#: Move kinds.
RETIME = "retime"
BUBBLE = "bubble"


@dataclass(frozen=True)
class Move:
    """One local-search move.

    Attributes:
        kind: ``"retime"`` (target is a node position, delta a lag shift) or
            ``"bubble"`` (target is an edge index, delta a buffer change).
        target: Node position (retime) or edge index (bubble).
        delta: +1 or -1.
    """

    kind: str
    target: int
    delta: int

    def inverse(self) -> "Move":
        return Move(self.kind, self.target, -self.delta)


class SearchState:
    """Tokens, buffers and lags of one candidate configuration.

    The state never copies the RRG; it shares the immutable structure (node
    order, edge endpoints, base tokens) and owns only the three mutable
    vectors.  ``apply``/``revert`` are exact inverses, so strategies can
    explore a neighborhood by mutating one state in place.
    """

    __slots__ = ("rrg", "node_names", "_node_pos", "edge_src", "edge_dst",
                 "base_tokens", "in_edges", "out_edges", "lags", "tokens",
                 "buffers")

    def __init__(self, rrg: RRG) -> None:
        self.rrg = rrg
        self.node_names: List[str] = rrg.node_names
        self._node_pos: Dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)
        }
        edges = rrg.edges
        self.edge_src: List[int] = [self._node_pos[e.src] for e in edges]
        self.edge_dst: List[int] = [self._node_pos[e.dst] for e in edges]
        self.base_tokens: List[int] = [e.tokens for e in edges]
        self.in_edges: List[List[int]] = [[] for _ in self.node_names]
        self.out_edges: List[List[int]] = [[] for _ in self.node_names]
        for index in range(len(edges)):
            self.out_edges[self.edge_src[index]].append(index)
            self.in_edges[self.edge_dst[index]].append(index)
        self.lags: List[int] = [0] * len(self.node_names)
        self.tokens: List[int] = list(self.base_tokens)
        self.buffers: List[int] = [e.buffers for e in edges]

    # -- copies ---------------------------------------------------------------

    def copy(self) -> "SearchState":
        clone = SearchState.__new__(SearchState)
        clone.rrg = self.rrg
        clone.node_names = self.node_names
        clone._node_pos = self._node_pos
        clone.edge_src = self.edge_src
        clone.edge_dst = self.edge_dst
        clone.base_tokens = self.base_tokens
        clone.in_edges = self.in_edges
        clone.out_edges = self.out_edges
        clone.lags = list(self.lags)
        clone.tokens = list(self.tokens)
        clone.buffers = list(self.buffers)
        return clone

    # -- moves ----------------------------------------------------------------

    def can_apply(self, move: Move) -> bool:
        """Whether the move keeps the state feasible — and locally sane.

        Bubble removal needs an empty buffer to remove.  A retiming is legal
        when no incident token count is pushed (further) below zero: an edge
        driven negative keeps its buffer floor at 0, which *adds* latency to
        every cycle through it and craters throughput — so moves stay in the
        register-shift regime where retiming preserves cycle latency sums.
        States adopted from the MILP may carry anti-tokens; moves on them may
        raise a negative count, never deepen it.
        """
        if move.kind == BUBBLE:
            if move.delta > 0:
                return True
            return self.bubbles(move.target) >= 1
        if move.kind == RETIME:
            delta = move.delta
            tokens = self.tokens
            for edge in self.in_edges[move.target]:
                if self.edge_src[edge] != move.target:  # self-loops unaffected
                    new = tokens[edge] + delta
                    if new < 0 and new < tokens[edge]:
                        return False
            for edge in self.out_edges[move.target]:
                if self.edge_dst[edge] != move.target:
                    new = tokens[edge] - delta
                    if new < 0 and new < tokens[edge]:
                        return False
            return True
        raise ValueError(f"unknown move kind {move.kind!r}")

    def apply(self, move: Move) -> None:
        """Apply a legal move in place (caller checks :meth:`can_apply`)."""
        if move.kind == BUBBLE:
            self.buffers[move.target] += move.delta
            return
        delta = move.delta
        node = move.target
        tokens, buffers = self.tokens, self.buffers
        self.lags[node] += delta
        # Registers move with the retiming; bubbles (R' - max(R0', 0)) stay
        # put, so the buffer count follows the *positive part* of the token
        # count on every incident edge.
        for edge in self.in_edges[node]:
            if self.edge_src[edge] != node:  # self-loops are unaffected
                old = tokens[edge]
                tokens[edge] = old + delta
                buffers[edge] += max(old + delta, 0) - max(old, 0)
        for edge in self.out_edges[node]:
            if self.edge_dst[edge] != node:
                old = tokens[edge]
                tokens[edge] = old - delta
                buffers[edge] += max(old - delta, 0) - max(old, 0)

    def revert(self, move: Move) -> None:
        """Undo a previously applied move."""
        self.apply(move.inverse())

    # -- views ----------------------------------------------------------------

    def bubbles(self, edge: int) -> int:
        """Empty buffers on an edge (``R' - max(R0', 0)``)."""
        return self.buffers[edge] - max(self.tokens[edge], 0)

    def token_vector(self) -> Dict[int, int]:
        return {i: count for i, count in enumerate(self.tokens)}

    def buffer_vector(self) -> Dict[int, int]:
        return {i: count for i, count in enumerate(self.buffers)}

    def signature(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Hashable identity of the configuration (tokens, buffers)."""
        return (tuple(self.tokens), tuple(self.buffers))

    def as_configuration(self, label: str = "") -> RRConfiguration:
        """Materialise as a validated :class:`RRConfiguration`."""
        lags = {
            self.node_names[i]: lag for i, lag in enumerate(self.lags) if lag
        }
        return RRConfiguration(
            self.rrg,
            RetimingVector(lags),
            self.buffer_vector(),
            label=label,
        )

    @classmethod
    def from_configuration(cls, configuration: RRConfiguration) -> "SearchState":
        """State equivalent to an existing configuration (e.g. a MILP best)."""
        state = cls(configuration.rrg)
        for i, name in enumerate(state.node_names):
            state.lags[i] = configuration.retiming.lag(name)
        tokens = configuration.token_vector()
        buffers = configuration.buffer_vector()
        for index in range(len(state.tokens)):
            state.tokens[index] = tokens[index]
            state.buffers[index] = buffers[index]
        return state
