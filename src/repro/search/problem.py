"""Objective evaluation and move generation for the search subsystem.

The objective is the measured effective cycle time ``xi = tau / Theta``:

* ``tau`` — cycle time, recomputed incrementally per candidate as an
  array-based longest-path sweep over the zero-buffer subgraph (O(V + E)
  with no graph copies; the same sweep also yields the critical edges that
  focus move generation);
* ``Theta`` — throughput, measured by the compiled :mod:`repro.sim` engine:
  the template is compiled once per RRG (shared with the pipeline's
  template cache), each candidate only instantiates new marking/latency
  vectors, and results flow through the shared throughput cache so
  revisited configurations are dictionary lookups.

Two admissible filters prune candidates before the (dominant) simulation
cost:

* ``tau`` itself: ``Theta <= 1`` always, so ``xi >= tau`` — a candidate
  whose cycle time already exceeds the incumbent's ``xi`` cannot win;
* the LP throughput bound (:mod:`repro.gmg.lp_bound`): ``Theta <= Theta_lp``
  gives ``xi >= tau / Theta_lp``.  The LP is itself a solve, so this filter
  is only armed on graphs below ``lp_filter_max_nodes``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rrg import RRG
from repro.gmg.build import build_template
from repro.lp import Model, SolveStatus
from repro.search.state import BUBBLE, RETIME, Move, SearchState
from repro.sim import batch as _sim_batch
from repro.sim import cache as _sim_cache
from repro.sim.scalar import ScalarSimulator

#: Default node count up to which the LP admissible filter is armed (above
#: it the LP solve outweighs the simulation it would save).  Shared with the
#: Optimize stage, which uses the same threshold to decide whether Pareto
#: points carry an LP bound or the measured throughput.
LP_FILTER_MAX_NODES = 160


@dataclass(frozen=True)
class Evaluation:
    """One candidate's measured objective."""

    cycle_time: float
    throughput: float

    @property
    def effective_cycle_time(self) -> float:
        if self.throughput <= 0:
            return math.inf
        return self.cycle_time / self.throughput


class SearchProblem:
    """Shared evaluation context of one search run.

    Args:
        rrg: The base graph (validated by the caller).
        cycles: Measured simulation cycles per evaluation.
        warmup: Warm-up cycles (default ``cycles // 4``; short on purpose —
            the search ranks candidates, it does not publish throughputs).
        seed: Seed shared by every candidate simulation, so two evaluations
            of the same configuration return the same number and the
            throughput cache applies.
        mode: Simulation mode (``"tgmg"`` or ``"elastic"``).
        lp_filter_max_nodes: Arm the LP admissible filter only below this
            node count (the LP solve outweighs the simulation above it).
    """

    def __init__(
        self,
        rrg: RRG,
        cycles: int = 256,
        warmup: Optional[int] = None,
        seed: int = 0,
        mode: str = "tgmg",
        lp_filter_max_nodes: int = LP_FILTER_MAX_NODES,
    ) -> None:
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        self.rrg = rrg
        self.cycles = int(cycles)
        self.warmup = int(warmup) if warmup is not None else max(32, cycles // 4)
        self.seed = seed
        self.mode = mode
        self.fingerprint = _sim_cache.rrg_fingerprint(rrg)
        self.template = _sim_cache.compiled_template_for(rrg, mode=mode)
        self.delays: List[float] = [node.delay for node in rrg.nodes]
        self.lp_filter = rrg.num_nodes <= int(lp_filter_max_nodes)
        self._tgmg_template = build_template(rrg, refine=True) if self.lp_filter else None
        # Dense structure arrays for the multi-lane cycle-time sweep: edge
        # endpoints plus a CSR of out-edges grouped by source node.
        node_pos = {name: i for i, name in enumerate(rrg.node_names)}
        edge_src = [node_pos[edge.src] for edge in rrg.edges]
        edge_dst = [node_pos[edge.dst] for edge in rrg.edges]
        self._edge_src_arr = np.asarray(edge_src, dtype=np.int64)
        self._edge_dst_arr = np.asarray(edge_dst, dtype=np.int64)
        self._delays_arr = np.asarray(self.delays, dtype=np.float64)
        order = np.argsort(self._edge_src_arr, kind="stable")
        self._out_idx = order
        counts = np.bincount(self._edge_src_arr, minlength=rrg.num_nodes)
        self._out_ptr = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        # Nodes whose retiming moves actually change some token vector: a
        # node touching only self-loops shifts lags without moving a single
        # register, so its "move" would duplicate the current state.
        retimable = [False] * rrg.num_nodes
        for src, dst in zip(edge_src, edge_dst):
            if src != dst:
                retimable[src] = True
                retimable[dst] = True
        self._retimable = retimable
        # Accounting (exposed in SearchResult).
        self.evaluations = 0
        self.simulations = 0
        self.pruned_tau = 0
        self.pruned_lp = 0
        self.lp_solves = 0

    # -- cycle time ------------------------------------------------------------

    def cycle_time(self, state: SearchState) -> float:
        """Longest combinational path delay of the state (O(V + E))."""
        arrival = self._arrival_times(state)
        return max(arrival) if arrival else 0.0

    def _arrival_times(self, state: SearchState) -> List[float]:
        """Kahn sweep over the zero-buffer subgraph (feasible => acyclic)."""
        delays = self.delays
        buffers = state.buffers
        edge_src, edge_dst = state.edge_src, state.edge_dst
        num_nodes = len(delays)
        indegree = [0] * num_nodes
        zero_out: List[List[int]] = [[] for _ in range(num_nodes)]
        for edge in range(len(buffers)):
            if buffers[edge] == 0:
                zero_out[edge_src[edge]].append(edge_dst[edge])
                indegree[edge_dst[edge]] += 1
        arrival = list(delays)
        ready = [n for n in range(num_nodes) if indegree[n] == 0]
        processed = 0
        while ready:
            node = ready.pop()
            processed += 1
            reach = arrival[node]
            for succ in zero_out[node]:
                if reach + delays[succ] > arrival[succ]:
                    arrival[succ] = reach + delays[succ]
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if processed != num_nodes:
            raise ValueError(
                "state has a zero-buffer cycle (infeasible configuration)"
            )
        return arrival

    def critical_edges(self, state: SearchState) -> List[int]:
        """Zero-buffer edges on maximum-delay combinational paths.

        Backward reachability from the maximum-arrival nodes along *tight*
        edges (``arrival[dst] == arrival[src] + delay[dst]``).  These are the
        edges where a bubble cuts the critical path — and their endpoints are
        where register shifts can.
        """
        arrival = self._arrival_times(state)
        tau = max(arrival) if arrival else 0.0
        delays = self.delays
        buffers = state.buffers
        edge_src, edge_dst = state.edge_src, state.edge_dst
        tight_in: List[List[Tuple[int, int]]] = [[] for _ in delays]
        for edge in range(len(buffers)):
            if buffers[edge] == 0:
                src, dst = edge_src[edge], edge_dst[edge]
                if abs(arrival[dst] - arrival[src] - delays[dst]) <= 1e-9:
                    tight_in[dst].append((edge, src))
        on_path = [abs(arrival[n] - tau) <= 1e-9 for n in range(len(delays))]
        stack = [n for n in range(len(delays)) if on_path[n]]
        critical: List[int] = []
        while stack:
            node = stack.pop()
            for edge, src in tight_in[node]:
                critical.append(edge)
                if not on_path[src]:
                    on_path[src] = True
                    stack.append(src)
        critical.sort()
        return critical

    # -- throughput ------------------------------------------------------------

    def throughput(self, state: SearchState) -> float:
        """Measured throughput of the state via the compiled engine."""
        tokens = state.token_vector()
        buffers = state.buffer_vector()
        key = _sim_cache.throughput_key(
            self.fingerprint, self.mode, tokens, buffers,
            self.cycles, self.warmup, self.seed,
        )
        hit = _sim_cache.cached_throughput(key)
        if hit is not None:
            return hit
        model = self.template.instantiate(tokens, buffers)
        simulator = ScalarSimulator(model, seed=self.seed)
        value = float(
            simulator.run(cycles=self.cycles, warmup=self.warmup).throughputs[0]
        )
        _sim_cache.store_throughput(key, value)
        self.simulations += 1
        return value

    # -- the objective ---------------------------------------------------------

    def evaluate(self, state: SearchState) -> Evaluation:
        """Full evaluation (cycle time + simulated throughput)."""
        self.evaluations += 1
        tau = self.cycle_time(state)
        return Evaluation(cycle_time=tau, throughput=self.throughput(state))

    def evaluate_bounded(
        self, state: SearchState, threshold: float
    ) -> Optional[Evaluation]:
        """Evaluate unless an admissible bound proves ``xi >= threshold``.

        Returns None when the candidate is pruned (it cannot beat the
        threshold), otherwise the full evaluation.  Counts as one evaluation
        either way — the racer budgets evaluation *attempts*, which keeps
        run lengths deterministic whether or not the filters fire.
        """
        self.evaluations += 1
        tau = self.cycle_time(state)
        if tau >= threshold:
            self.pruned_tau += 1
            return None
        if self.lp_filter and threshold < math.inf:
            bound = self.lp_bound(state)
            if bound > 0 and tau / bound >= threshold:
                self.pruned_lp += 1
                return None
        return Evaluation(cycle_time=tau, throughput=self.throughput(state))

    # -- batched evaluation ----------------------------------------------------

    def cycle_times_batch(self, states: Sequence[SearchState]) -> np.ndarray:
        """Cycle time of every state in one level-synchronized array sweep.

        Lanes share the edge structure and differ only in buffer vectors, so
        the Kahn sweep over each lane's zero-buffer subgraph runs as one
        array program: a joint (lane, node) frontier expands along the CSR of
        out-edges, relaxes arrivals with ``np.maximum.at`` and retires
        in-degrees with ``np.subtract.at``.  The arrival of a node is the max
        over the same float additions the serial sweep performs, so every
        lane's result is bit-identical to :meth:`cycle_time`.

        Infeasible lanes (a zero-buffer cycle) yield ``math.inf`` instead of
        the serial path's ``ValueError`` — batch callers rank candidates and
        an unreachable one simply never wins.
        """
        num_lanes = len(states)
        num_nodes = len(self.delays)
        if num_lanes == 0 or num_nodes == 0:
            return np.zeros(num_lanes, dtype=np.float64)
        delays = self._delays_arr
        src = self._edge_src_arr
        dst = self._edge_dst_arr
        out_ptr, out_idx = self._out_ptr, self._out_idx
        zero = np.asarray([state.buffers for state in states], dtype=np.int64) == 0
        indegree = np.zeros((num_lanes, num_nodes), dtype=np.int64)
        lanes_z, edges_z = np.nonzero(zero)
        np.add.at(indegree, (lanes_z, dst[edges_z]), 1)
        arrival = np.tile(delays, (num_lanes, 1))
        processed = np.zeros(num_lanes, dtype=np.int64)
        lane_front, node_front = np.nonzero(indegree == 0)
        while lane_front.size:
            processed += np.bincount(lane_front, minlength=num_lanes)
            counts = out_ptr[node_front + 1] - out_ptr[node_front]
            total = int(counts.sum())
            if total == 0:
                break
            # Flat expansion of every frontier node's out-edge slice.
            starts = np.cumsum(counts) - counts
            edge_flat = out_idx[
                np.repeat(out_ptr[node_front] - starts, counts)
                + np.arange(total)
            ]
            lane_flat = np.repeat(lane_front, counts)
            keep = zero[lane_flat, edge_flat]
            lane_flat, edge_flat = lane_flat[keep], edge_flat[keep]
            if not lane_flat.size:
                break
            dst_flat = dst[edge_flat]
            np.maximum.at(
                arrival,
                (lane_flat, dst_flat),
                arrival[lane_flat, src[edge_flat]] + delays[dst_flat],
            )
            np.subtract.at(indegree, (lane_flat, dst_flat), 1)
            # A node joins the frontier the moment its last zero in-edge is
            # retired; after that nothing touches it again, so checking the
            # unique pairs of this wave finds each node exactly once.
            touched = np.unique(lane_flat * num_nodes + dst_flat)
            ready = touched[indegree.reshape(-1)[touched] == 0]
            lane_front, node_front = ready // num_nodes, ready % num_nodes
        taus = arrival.max(axis=1)
        taus[processed < num_nodes] = math.inf
        return taus

    def evaluate_batch(
        self,
        states: Sequence[SearchState],
        threshold: Optional[float] = None,
    ) -> List[Optional[Evaluation]]:
        """Evaluate a pool of candidate states as lanes of one batch.

        With ``threshold`` this is the pooled form of
        :meth:`evaluate_bounded` — pruned lanes come back ``None`` — and
        without it the pooled form of :meth:`evaluate`.  Counters advance
        exactly as the equivalent serial loop would: one evaluation per lane,
        one simulation per *distinct* uncached configuration (duplicate lanes
        and cache hits are free), and the shared throughput cache is both
        consulted and populated with the serial keys, so results are
        bit-identical whichever path computed them first.

        Infeasible lanes never raise: under a threshold they are pruned
        (``tau = inf``), otherwise they evaluate to ``xi = inf``.
        """
        results: List[Optional[Evaluation]] = [None] * len(states)
        if not states:
            return results
        self.evaluations += len(states)
        taus = self.cycle_times_batch(states)
        survivors: List[int] = []
        for index, state in enumerate(states):
            tau = float(taus[index])
            if threshold is not None:
                if tau >= threshold:
                    self.pruned_tau += 1
                    continue
                if self.lp_filter and threshold < math.inf:
                    bound = self.lp_bound(state)
                    if bound > 0 and tau / bound >= threshold:
                        self.pruned_lp += 1
                        continue
            elif not math.isfinite(tau):
                # A zero-buffer cycle deadlocks the circuit: Theta = 0.
                results[index] = Evaluation(cycle_time=tau, throughput=0.0)
                continue
            survivors.append(index)
        if not survivors:
            return results
        throughputs = self._throughput_batch([states[i] for i in survivors])
        for index, value in zip(survivors, throughputs):
            results[index] = Evaluation(
                cycle_time=float(taus[index]), throughput=value
            )
        return results

    def _throughput_batch(self, states: Sequence[SearchState]) -> List[float]:
        """Throughputs of many states: cache, dedupe, then one batched run."""
        keys = []
        for state in states:
            keys.append(
                _sim_cache.throughput_key(
                    self.fingerprint, self.mode,
                    state.token_vector(), state.buffer_vector(),
                    self.cycles, self.warmup, self.seed,
                )
            )
        values: Dict[Tuple, float] = {}
        miss_keys: List[Tuple] = []
        miss_lanes: List[int] = []
        for lane, key in enumerate(keys):
            if key in values:
                continue
            hit = _sim_cache.cached_throughput(key)
            if hit is not None:
                values[key] = hit
                continue
            values[key] = math.nan  # placeholder: pending unique miss
            miss_keys.append(key)
            miss_lanes.append(lane)
        if miss_keys:
            tokens = np.asarray(
                [states[lane].tokens for lane in miss_lanes], dtype=np.int64
            )
            buffers = np.asarray(
                [states[lane].buffers for lane in miss_lanes], dtype=np.int64
            )
            models = self.template.instantiate_batch(tokens, buffers)
            computed = _sim_batch.run_models(
                models, [self.seed] * len(models), self.cycles, self.warmup
            )
            for key, value in zip(miss_keys, computed):
                value = float(value)
                _sim_cache.store_throughput(key, value)
                values[key] = value
            self.simulations += len(miss_keys)
        return [values[key] for key in keys]

    def lp_bound(self, state: SearchState) -> float:
        """Theta_lp of the state (LP (11) over the shared TGMG template)."""
        from repro.core.throughput import add_throughput_constraints

        self.lp_solves += 1
        model = Model(f"{self.rrg.name}-search-lp", sense="min")
        x = model.add_var("x", lb=1.0)
        add_throughput_constraints(
            model,
            self.rrg,
            buffers=state.buffer_vector(),
            x=x,
            tokens=state.token_vector(),
            template=self._tgmg_template,
        )
        model.set_objective(x)
        solution = model.solve()
        if solution.status is not SolveStatus.OPTIMAL:
            return 1.0  # an unusable bound must never prune
        return 1.0 / float(solution[x])

    # -- move generation -------------------------------------------------------

    def sample_moves(
        self, state: SearchState, rng: random.Random, size: int
    ) -> List[Move]:
        """Up to ``size`` legal candidate moves, critical-cycle focused.

        The pool mixes bubble insertions on critical zero-buffer edges
        (cutting ``tau``), register shifts at their endpoints (moving
        registers onto the critical path without the throughput cost of a
        bubble) and bubble removals anywhere (recovering throughput).  The
        pool order is deterministic; ``rng`` only subsamples it.

        The pool never repeats a move key and never contains a no-op (a
        retiming that only shifts lags), so every entry maps to a distinct
        candidate configuration — batched evaluation gets one lane per
        genuinely new state instead of burning lanes on duplicates.
        """
        critical = self.critical_edges(state)
        retimes: List[Move] = []
        bubbles: List[Move] = []
        seen = set()
        retimable = self._retimable

        def add(pool: List[Move], move: Move) -> None:
            if move.kind == RETIME and not retimable[move.target]:
                return
            key = (move.kind, move.target, move.delta)
            if key not in seen and state.can_apply(move):
                seen.add(key)
                pool.append(move)

        nodes_seen: List[int] = []
        node_mark = set()
        for edge in critical:
            add(bubbles, Move(BUBBLE, edge, +1))
            for node in (state.edge_src[edge], state.edge_dst[edge]):
                if node not in node_mark:
                    node_mark.add(node)
                    nodes_seen.append(node)
        for node in nodes_seen:
            add(retimes, Move(RETIME, node, +1))
            add(retimes, Move(RETIME, node, -1))
        bubbled = [
            edge for edge in range(len(state.buffers)) if state.bubbles(edge) > 0
        ]
        if bubbled:
            for edge in (
                bubbled if len(bubbled) <= size
                else rng.sample(bubbled, size)
            ):
                add(bubbles, Move(BUBBLE, edge, -1))
        # Balance the sample across move kinds: register shifts preserve
        # throughput (the cheap wins) while bubbles trade it — a uniform
        # draw from the merged pool would drown the few legal retimings.
        rng.shuffle(retimes)
        rng.shuffle(bubbles)
        sample: List[Move] = []
        while len(sample) < size and (retimes or bubbles):
            if retimes:
                sample.append(retimes.pop())
            if len(sample) < size and bubbles:
                sample.append(bubbles.pop())
        return sample

    def random_walk(
        self, state: SearchState, rng: random.Random, steps: int
    ) -> None:
        """Perturb a state in place with ``steps`` random legal moves."""
        for _ in range(steps):
            moves = self.sample_moves(state, rng, size=8)
            if not moves:
                return
            state.apply(rng.choice(moves))
