"""Anytime portfolio racing of search strategies (and the exact MILP).

The racer interleaves step-based strategies under a shared budget and
returns the best incumbent with provenance.  Two disciplines make portfolio
runs reproducible:

* **seeds** — every strategy draws its seed from the run's root seed through
  the repository-wide hash-derivation scheme
  (:func:`repro.seeding.derive_seed`), so adding or removing a strategy
  never reshuffles the others, and a portfolio inside a sharded pipeline run
  is bit-identical to the serial one;
* **budget** — the wall-clock budget is converted once, up front, into a
  deterministic *evaluation budget* through a fixed cost model
  (:func:`evaluation_budget`).  The race stops after that many evaluation
  attempts — a pure function of (graph size, cycles, budget, pool size) —
  so two runs with the same seed return identical incumbents even when
  their wall-clock timings differ.  The model is calibrated conservatively
  for the compiled simulation kernels (:mod:`repro.sim.kernels`) and never
  consults the active backend; a hard wall-clock deadline (2x the nominal
  budget on a native backend, proportionally longer on the pure-python
  fallback so it can finish the same schedule) guards against pathological
  hosts and is reported via ``SearchResult.completed``.

On small instances the racer additionally runs the exact MILP
(:func:`repro.core.optimizer.min_effective_cycle_time`) as a portfolio
member under a share of the budget: where branch and bound is feasible the
portfolio inherits its optimum, and the heuristics race on from there.
One caveat: branch-and-bound time limits are wall-clock, so the strict
same-seed determinism guarantee holds when the MILP member either completes
its walk inside its share (the normal case below :data:`MILP_NODE_LIMIT`)
or is excluded — a truncated walk is flagged ``truncated`` in the result's
``milp`` info.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.milp import MilpSettings
from repro.core.rrg import RRG
from repro.obs import trace as _obs_trace
from repro.resilience.deadline import Deadline
from repro.search.problem import LP_FILTER_MAX_NODES, Evaluation, SearchProblem
from repro.search.state import SearchState
from repro.search.strategies import Strategy, make_strategy
from repro.seeding import derive_seed
from repro.sim import kernels as _kernels

#: Conservative throughput of the batched evaluation path, in edge-cycle
#: operations per second.  Calibrated against the compiled kernel backends
#: (numba / generated C run the reference container at ~100M ops/s;
#: deliberately ~5x below that so the deterministic budget translates into
#: *at most* the nominal wall-clock budget on slower hosts).  The model is a
#: pure function of the job — it must NOT consult the active backend, or two
#: hosts would race for different lengths and break same-seed reproduction;
#: a host stuck on the pure-python fallback instead gets a longer emergency
#: wall-clock leash (see :func:`search_minimize`).
KERNEL_OPS_PER_SECOND = 2.0e7

#: Legacy alias (pre-kernel scalar-engine calibration), kept because the
#: constant is part of the documented cost-model history.
OPS_PER_SECOND = 2.0e6

#: Modelled fixed cost of dispatching one evaluation batch (template
#: resolution, cache probes, array packing), amortised across its lanes.
BATCH_DISPATCH_SECONDS = 2.0e-3

#: Default move-pool size per strategy step (lanes per evaluation batch).
DEFAULT_POOL_SIZE = 24

#: Smallest evaluation budget the racer will run with (so a tiny budget on a
#: huge graph still improves on the identity configuration).
MIN_EVALUATIONS = 24

#: Node count up to which the exact MILP joins the portfolio by default
#: (covers the repository's table1/table2 preset instances; above it branch
#: and bound cannot be trusted to finish inside a search budget).
MILP_NODE_LIMIT = 80


def evaluation_cost(
    num_nodes: int, num_edges: int, total_cycles: int, pool_size: int = 1
) -> float:
    """Modelled seconds per evaluation (deterministic, machine-independent).

    ``pool_size`` is the number of lanes evaluated per batch: the fixed
    dispatch overhead amortises across the pool, so wider pools model (and
    get) cheaper per-evaluation cost.  Pool size is a declarative job
    parameter, which keeps the budget a pure function of the inputs.
    """
    ops = float(total_cycles) * (num_nodes + 3 * num_edges)
    seconds = ops / KERNEL_OPS_PER_SECOND
    seconds += BATCH_DISPATCH_SECONDS / max(1, int(pool_size))
    return max(seconds, 1e-6)


def evaluation_budget(
    rrg: RRG,
    cycles: int,
    warmup: int,
    time_budget: float,
    pool_size: int = 1,
) -> int:
    """Deterministic evaluation-attempt budget for a wall-clock budget."""
    cost = evaluation_cost(
        rrg.num_nodes, rrg.num_edges, cycles + warmup, pool_size=pool_size
    )
    return max(MIN_EVALUATIONS, int(time_budget / cost))


@dataclass
class Incumbent:
    """The best configuration found, with provenance."""

    configuration: Any  # RRConfiguration (kept loose for payload round-trips)
    cycle_time: float
    throughput: float
    effective_cycle_time: float
    strategy: str
    evaluation_index: int


@dataclass
class StrategyReport:
    """Per-strategy accounting of one race."""

    name: str
    seed: int
    steps: int
    improvements: int
    best_xi: float
    exhausted: bool


@dataclass
class SearchResult:
    """Outcome of :func:`search_minimize`.

    ``history`` traces every incumbent improvement as
    ``(evaluation_index, strategy, xi)`` — the anytime profile.  ``completed``
    is False only when the emergency wall-clock deadline (2x the nominal
    budget) cut the deterministic schedule short.
    """

    best: Incumbent
    history: List[Tuple[int, str, float]]
    strategies: List[StrategyReport]
    evaluations: int
    simulations: int
    pruned_tau: int
    pruned_lp: int
    lp_solves: int
    milp: Optional[Dict[str, Any]]
    seed: int
    time_budget: float
    evaluation_budget: int
    seconds: float
    completed: bool
    points: List[Incumbent] = field(default_factory=list)
    #: Lanes per evaluation batch (declarative; part of the cost model).
    pool_size: int = 1
    #: Simulation kernel backend that executed this run (live provenance
    #: only — results are backend-independent, so stored payloads must not
    #: include it).
    kernel_backend: str = "python"


class PortfolioRacer:
    """Evaluation-balanced racer over step-based strategies.

    Each turn steps the strategy that has consumed the fewest evaluation
    attempts so far (ties break by declaration order), so a strategy whose
    step is cheap (annealing: one attempt) is not starved by one whose step
    samples a whole neighborhood (descent: ``sample_size`` attempts).  The
    race ends when the shared evaluation budget is exhausted, every strategy
    is exhausted, or the emergency deadline fires.  Incumbent updates are
    strict improvements (ties keep the earlier holder), so the result is
    independent of timing.
    """

    def __init__(
        self,
        problem: SearchProblem,
        strategies: Sequence[Strategy],
        budget: int,
        deadline: Optional[float] = None,
    ) -> None:
        self.problem = problem
        self.strategies = list(strategies)
        self.budget = int(budget)
        self.deadline = deadline
        self.history: List[Tuple[int, str, float]] = []
        self.completed = True

    def race(
        self, start: SearchState, start_eval: Evaluation, seed: int
    ) -> Tuple[SearchState, Evaluation, str, int]:
        """Run the race; returns (best state, best eval, provenance, index)."""
        problem = self.problem
        best_state, best_eval = start.copy(), start_eval
        best_strategy, best_index = "identity", problem.evaluations
        for strategy in self.strategies:
            strategy.start(
                problem, start, start_eval,
                seed=derive_seed(seed, "strategy", strategy.name),
            )
        floor = problem.evaluations
        spent = {id(s): 0 for s in self.strategies}
        while True:
            alive = [s for s in self.strategies if not s.exhausted]
            if not alive:
                break
            if problem.evaluations - floor >= self.budget:
                break
            if self.deadline is not None and time.monotonic() > self.deadline:
                self.completed = False
                break
            strategy = min(alive, key=lambda s: spent[id(s)])
            before = problem.evaluations
            improved = strategy.step()
            spent[id(strategy)] += problem.evaluations - before
            if improved is not None:
                state, evaluation = improved
                if (
                    evaluation.effective_cycle_time
                    < best_eval.effective_cycle_time - 1e-12
                ):
                    best_state, best_eval = state, evaluation
                    best_strategy = strategy.name
                    best_index = problem.evaluations
                    self.history.append((
                        best_index, strategy.name,
                        evaluation.effective_cycle_time,
                    ))
        return best_state, best_eval, best_strategy, best_index

    def reports(self) -> List[StrategyReport]:
        return [
            StrategyReport(
                name=s.name, seed=s.seed or 0, steps=s.steps,
                improvements=s.improvements, best_xi=s.best_xi,
                exhausted=s.exhausted,
            )
            for s in self.strategies
        ]


class _MilpBudgetExceeded(Exception):
    """Internal: stop the MIN_EFF_CYC walk at its time share."""


def _run_milp_member(
    rrg: RRG,
    problem: SearchProblem,
    epsilon: float,
    settings: Optional[MilpSettings],
    time_share: float,
) -> Tuple[Optional[SearchState], Optional[Evaluation], Dict[str, Any]]:
    """The exact MILP as a portfolio member (small instances only).

    The whole Pareto walk is bounded: each MILP solve gets a per-solve time
    limit *and* a progress guard aborts the walk once the share is spent,
    keeping whatever non-dominated points were already stored (the walk
    improves monotonically, so a truncated walk is still a valid — just
    possibly sub-optimal — portfolio member).
    """
    from repro.core.optimizer import ParetoPoint, min_effective_cycle_time

    settings = settings or MilpSettings()
    per_solve = min(time_share, settings.time_limit or time_share)
    settings = MilpSettings(
        backend=settings.backend,
        time_limit=per_solve,
        max_buffers_per_edge=settings.max_buffers_per_edge,
        buffer_penalty=settings.buffer_penalty,
        warm_start=settings.warm_start,
    )
    started = time.perf_counter()
    deadline = started + time_share
    stored: List[ParetoPoint] = []

    def guard(index: int, point: ParetoPoint) -> None:
        stored.append(point)
        if time.perf_counter() > deadline:
            raise _MilpBudgetExceeded

    info: Dict[str, Any] = {"ran": True}
    best_point: Optional[ParetoPoint] = None
    try:
        outcome = min_effective_cycle_time(
            rrg, k=1, epsilon=epsilon, settings=settings, progress=guard
        )
        best_point = outcome.best
        info.update({
            "milp_solves": outcome.milp_solves,
            "best_xi_bound": outcome.best_effective_cycle_time_bound,
        })
    except _MilpBudgetExceeded:
        info["truncated"] = True
        if stored:
            best_point = min(
                stored, key=lambda p: p.effective_cycle_time_bound
            )
            info["best_xi_bound"] = best_point.effective_cycle_time_bound
    except Exception as exc:  # noqa: BLE001 — the MILP must never kill the race
        info.update({"error": f"{type(exc).__name__}: {exc}"})
        return None, None, info
    info["seconds"] = round(time.perf_counter() - started, 4)
    if best_point is None:
        return None, None, info
    state = SearchState.from_configuration(best_point.configuration)
    evaluation = problem.evaluate(state)
    return state, evaluation, info


def search_minimize(
    rrg: RRG,
    strategies: Sequence[str] = ("descent", "anneal"),
    time_budget: float = 30.0,
    seed: int = 0,
    cycles: int = 256,
    warmup: Optional[int] = None,
    epsilon: float = 0.05,
    settings: Optional[MilpSettings] = None,
    include_milp: Optional[bool] = None,
    milp_node_limit: int = MILP_NODE_LIMIT,
    mode: str = "tgmg",
    lp_filter_max_nodes: int = LP_FILTER_MAX_NODES,
    max_points: int = 5,
    pool_size: Optional[int] = None,
) -> SearchResult:
    """Minimise the measured effective cycle time of an RRG heuristically.

    Args:
        rrg: The base graph (validated here).
        strategies: Strategy names to race (``descent`` / ``anneal``).
        time_budget: Nominal wall-clock budget in seconds; converted into a
            deterministic evaluation budget (see the module docstring).
        seed: Root seed; per-strategy seeds derive from it.
        cycles: Measured simulation cycles per evaluation.
        warmup: Warm-up cycles per evaluation (default ``cycles // 4``).
        epsilon: Throughput step of the MILP member (small instances).
        settings: MILP settings of the MILP member.
        include_milp: Force the exact MILP in or out of the portfolio; None
            admits it on graphs up to ``milp_node_limit`` nodes.
        milp_node_limit: The auto-admission threshold.
        mode: Simulation mode.
        lp_filter_max_nodes: See :class:`~repro.search.problem.SearchProblem`.
        max_points: Incumbent-history configurations kept in ``points``.
        pool_size: Moves proposed (and evaluated as one batch) per strategy
            step; defaults to :data:`DEFAULT_POOL_SIZE`.  Part of the
            deterministic cost model — changing it changes the trajectory,
            running it on a different backend does not.

    Returns:
        A :class:`SearchResult`; ``result.best`` is the incumbent with
        provenance, ``result.points`` the distinct incumbents along the way
        (best last).
    """
    if time_budget <= 0:
        raise ValueError("time_budget must be positive")
    rrg.validate()
    pool = DEFAULT_POOL_SIZE if pool_size is None else int(pool_size)
    if pool <= 0:
        raise ValueError("pool_size must be positive")
    started = time.perf_counter()
    # Emergency wall-clock cutoff: a multiple of the nominal budget guards
    # against pathological hosts, and an ambient request deadline
    # (propagated from the service edge via Deadline.scope) tightens it
    # further — whichever expires first stops the race, reported via
    # ``completed``.  The budget is calibrated for the compiled kernels; a
    # host on the pure-python fallback runs the *same* deterministic
    # schedule (the cost model never consults the backend), so it gets a
    # proportionally longer leash to finish it — forcing
    # ``REPRO_SIM_KERNEL=python`` trades wall-clock for identical results.
    deadline_slack = 2.0 if _kernels.native_active() else 20.0
    hard_deadline = time.monotonic() + deadline_slack * time_budget
    ambient = Deadline.current()
    if ambient is not None:
        hard_deadline = min(hard_deadline, ambient.expires_at)
    problem = SearchProblem(
        rrg, cycles=cycles, warmup=warmup,
        seed=derive_seed(seed, "simulate"),
        mode=mode, lp_filter_max_nodes=lp_filter_max_nodes,
    )

    state0 = SearchState(rrg)
    eval0 = problem.evaluate(state0)
    best_state, best_eval = state0, eval0
    best_strategy, best_index = "identity", problem.evaluations
    trace: List[Tuple[SearchState, Evaluation, str]] = [
        (state0.copy(), eval0, "identity")
    ]

    milp_info: Optional[Dict[str, Any]] = None
    heuristic_budget = float(time_budget)
    run_milp = (
        include_milp if include_milp is not None
        else rrg.num_nodes <= int(milp_node_limit)
    )
    if run_milp:
        time_share = 0.5 * time_budget
        if ambient is not None:
            # Keep the exact member inside the request deadline too (its
            # walk is wall-clock bounded); a truncated walk is flagged in
            # ``milp.truncated`` as usual.
            time_share = min(time_share, max(0.05, ambient.share(0.5)))
        milp_state, milp_eval, milp_info = _run_milp_member(
            rrg, problem, epsilon, settings, time_share=time_share
        )
        # A fixed share, *not* the measured MILP wall time: the heuristic
        # evaluation budget must stay a pure function of the inputs, or two
        # runs of the same seed could race for different lengths.
        heuristic_budget = 0.5 * time_budget
        if milp_state is not None and (
            milp_eval.effective_cycle_time
            < best_eval.effective_cycle_time - 1e-12
        ):
            best_state, best_eval = milp_state, milp_eval
            best_strategy, best_index = "milp", problem.evaluations
            trace.append((milp_state.copy(), milp_eval, "milp"))

    budget = evaluation_budget(
        rrg, problem.cycles, problem.warmup, heuristic_budget,
        pool_size=pool,
    )
    members = [make_strategy(name) for name in strategies]
    for member in members:
        member.sample_size = pool
        if member.name == "anneal":
            # Size the annealing schedule (in attempts) to its fair share
            # of the budget.
            member.schedule_steps = max(
                16, budget // max(1, len(members))
            )
    racer = PortfolioRacer(
        problem, members, budget=budget, deadline=hard_deadline
    )
    race_state, race_eval, race_name, race_index = racer.race(
        best_state, best_eval, seed=seed
    )
    if (
        race_eval.effective_cycle_time
        < best_eval.effective_cycle_time - 1e-12
    ):
        best_state, best_eval = race_state, race_eval
        best_strategy, best_index = race_name, race_index
        trace.append((race_state.copy(), race_eval, race_name))

    def incumbent(state: SearchState, evaluation: Evaluation, name: str,
                  index: int) -> Incumbent:
        return Incumbent(
            configuration=state.as_configuration(label=name),
            cycle_time=evaluation.cycle_time,
            throughput=evaluation.throughput,
            effective_cycle_time=evaluation.effective_cycle_time,
            strategy=name,
            evaluation_index=index,
        )

    # Distinct trace configurations, best (the final incumbent) last.
    points: List[Incumbent] = []
    seen = set()
    for state, evaluation, name in trace[-max(1, int(max_points)):]:
        signature = state.signature()
        if signature in seen:
            continue
        seen.add(signature)
        points.append(incumbent(state, evaluation, name, 0))
    best = incumbent(best_state, best_eval, best_strategy, best_index)
    if points and points[-1].configuration.same_assignment(best.configuration):
        points[-1] = best
    else:
        points.append(best)

    result = SearchResult(
        best=best,
        history=list(racer.history),
        strategies=racer.reports(),
        evaluations=problem.evaluations,
        simulations=problem.simulations,
        pruned_tau=problem.pruned_tau,
        pruned_lp=problem.pruned_lp,
        lp_solves=problem.lp_solves,
        milp=milp_info,
        seed=seed,
        time_budget=float(time_budget),
        evaluation_budget=budget,
        seconds=round(time.perf_counter() - started, 4),
        completed=racer.completed,
        points=points,
        pool_size=pool,
        kernel_backend=_kernels.kernel_backend(),
    )
    # Observability only: a completed search span under the ambient trace
    # (no-op when tracing is off); never feeds back into the result.
    _obs_trace.record_span(
        "search",
        result.seconds,
        strategies=",".join(strategies),
        evaluations=result.evaluations,
        simulations=result.simulations,
        lp_solves=result.lp_solves,
        kernel_backend=result.kernel_backend,
        completed=result.completed,
    )
    return result
