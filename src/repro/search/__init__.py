"""Heuristic optimization subsystem for MIN_EFF_CYC on large RRGs.

The exact MILP walk (:func:`repro.core.optimizer.min_effective_cycle_time`)
is the quality oracle on paper-sized instances, but branch and bound caps it
at a few hundred nodes.  This package trades bounded optimality for scale:

* :mod:`repro.search.state` — a mutable retiming+recycling configuration
  with O(degree) move application (register shifts, bubble insertion and
  removal) and exact revert;
* :mod:`repro.search.problem` — incremental objective re-evaluation: cycle
  time by an array-based longest-path sweep over the zero-buffer subgraph,
  throughput through the compiled :mod:`repro.sim` engine (template compiled
  once, throughput cache shared with the pipeline), and two admissible
  filters — ``tau`` itself and, on small graphs, the
  :mod:`repro.gmg.lp_bound` LP bound — that prune candidates without
  simulating them;
* :mod:`repro.search.strategies` — step-based local-search strategies
  (greedy descent with restarts, simulated annealing) racing under the
  portfolio;
* :mod:`repro.search.portfolio` — the anytime portfolio racer: strategies
  (and, on small instances, the exact MILP) share one deadline and one
  hash-derived seed discipline; the incumbent is returned with provenance.

Entry point: :func:`repro.search.search_minimize`.
"""

from repro.search.portfolio import (
    DEFAULT_POOL_SIZE,
    Incumbent,
    PortfolioRacer,
    SearchResult,
    StrategyReport,
    evaluation_budget,
    search_minimize,
)
from repro.search.problem import Evaluation, SearchProblem
from repro.search.state import Move, SearchState
from repro.search.strategies import GreedyDescent, SimulatedAnnealing, Strategy

__all__ = [
    "DEFAULT_POOL_SIZE",
    "Evaluation",
    "GreedyDescent",
    "Incumbent",
    "Move",
    "PortfolioRacer",
    "SearchProblem",
    "SearchResult",
    "SearchState",
    "SimulatedAnnealing",
    "Strategy",
    "StrategyReport",
    "evaluation_budget",
    "search_minimize",
]
