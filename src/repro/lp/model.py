"""The :class:`Model` class tying variables, constraints and backends together."""

from __future__ import annotations

import enum
import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.lp.constraint import Constraint, ConstraintSense
from repro.lp.errors import ModelError, SolverError
from repro.lp.expression import LinExpr, Variable, VarType
from repro.lp.solution import Solution, SolveStatus

_MODEL_COUNTER = itertools.count(1)


class ObjectiveSense(enum.Enum):
    """Optimisation direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"

    @classmethod
    def coerce(cls, value: Union[str, "ObjectiveSense"]) -> "ObjectiveSense":
        if isinstance(value, cls):
            return value
        normalized = str(value).strip().lower()
        if normalized in ("min", "minimize", "minimise"):
            return cls.MINIMIZE
        if normalized in ("max", "maximize", "maximise"):
            return cls.MAXIMIZE
        raise ValueError(f"unknown objective sense: {value!r}")


class Objective:
    """Objective function: an affine expression and a direction."""

    def __init__(self, expr: LinExpr, sense: ObjectiveSense) -> None:
        self.expr = expr
        self.sense = sense

    def __repr__(self) -> str:
        return f"Objective({self.sense.value} {self.expr!r})"


class StandardForm:
    """Matrix form of a model, shared by all backends.

    The model is compiled to::

        minimize    c @ x  + c0
        subject to  A_ub @ x <= b_ub
                    A_eq @ x == b_eq
                    lb <= x <= ub
                    x[i] integer for i in integer_indices

    Maximisation objectives are negated during compilation and the sign is
    restored when building the :class:`Solution`.
    """

    def __init__(
        self,
        variables: Sequence[Variable],
        c: np.ndarray,
        c0: float,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        integer_mask: np.ndarray,
        maximize: bool,
    ) -> None:
        self.variables = list(variables)
        self.c = c
        self.c0 = c0
        self.a_ub = a_ub
        self.b_ub = b_ub
        self.a_eq = a_eq
        self.b_eq = b_eq
        self.lower = lower
        self.upper = upper
        self.integer_mask = integer_mask
        self.maximize = maximize
        self._prepared_lp = None

    def prepared_lp(self):
        """The pure backend's cached ``[A | I]`` build of this form.

        Built once per compiled form; bound/RHS mutations only require the
        right-hand sides to be re-read, so consecutive solves of a mutated
        model never re-assemble the constraint matrix.
        """
        from repro.lp.revised_simplex import PreparedLP

        if self._prepared_lp is None:
            self._prepared_lp = PreparedLP(
                self.c, self.a_ub, self.b_ub, self.a_eq, self.b_eq
            )
        else:
            self._prepared_lp.refresh_rhs(self.b_ub, self.b_eq)
        return self._prepared_lp

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def has_integers(self) -> bool:
        return bool(self.integer_mask.any())


class Model:
    """Container for variables, constraints and an objective.

    The model API mirrors PuLP / python-mip closely enough that the paper's
    formulations read almost verbatim.  Variables must be created through
    :meth:`add_var`; constraints are built with Python comparison operators on
    expressions and registered with :meth:`add_constr`.
    """

    def __init__(self, name: str = "model", sense: Union[str, ObjectiveSense] = "min"):
        self.name = name
        self._id = next(_MODEL_COUNTER)
        self._variables: List[Variable] = []
        self._names: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objective = Objective(LinExpr(), ObjectiveSense.coerce(sense))
        self._compiled: Optional[StandardForm] = None
        # Constraint name -> (kind, row, sign) for in-place RHS patching of
        # the cached standard form.  kind is "ub" or "eq"; sign records the
        # negation applied to >= rows during compilation.
        self._row_of: Dict[str, tuple] = {}

    def _invalidate(self) -> None:
        self._compiled = None
        self._row_of = {}

    # -- variables ---------------------------------------------------------

    def add_var(
        self,
        name: str = "",
        lb: Optional[float] = 0.0,
        ub: Optional[float] = None,
        vtype: Union[str, VarType] = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a decision variable.

        Args:
            name: Unique name; auto-generated when empty.
            lb: Lower bound, ``None`` meaning unbounded below.
            ub: Upper bound, ``None`` meaning unbounded above.
            vtype: "continuous", "integer" or "binary".

        Returns:
            The new :class:`Variable`.
        """
        if not name:
            name = f"x{len(self._variables)}"
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r} in model {self.name!r}")
        var = Variable(
            name=name,
            lb=-math.inf if lb is None else lb,
            ub=math.inf if ub is None else ub,
            vtype=vtype,
            index=len(self._variables),
            model_id=self._id,
        )
        self._variables.append(var)
        self._names[name] = var
        self._invalidate()
        return var

    def add_vars(
        self,
        count: int,
        prefix: str = "x",
        lb: Optional[float] = 0.0,
        ub: Optional[float] = None,
        vtype: Union[str, VarType] = VarType.CONTINUOUS,
    ) -> List[Variable]:
        """Create ``count`` variables named ``prefix0 .. prefix{count-1}``."""
        return [
            self.add_var(f"{prefix}{i}", lb=lb, ub=ub, vtype=vtype)
            for i in range(count)
        ]

    def var_by_name(self, name: str) -> Variable:
        """Look up a variable by name, raising :class:`ModelError` if absent."""
        try:
            return self._names[name]
        except KeyError as exc:
            raise ModelError(f"no variable named {name!r}") from exc

    @property
    def variables(self) -> List[Variable]:
        """All variables in creation order."""
        return list(self._variables)

    # -- constraints --------------------------------------------------------

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons.

        Constant constraints that trivially hold are silently dropped;
        constant constraints that cannot hold are kept so the solve reports
        infeasibility (this matches the paper's use of feasibility checks).
        """
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constr expects a Constraint (use <=, >= or == on expressions)"
            )
        self._check_ownership(constraint.expr)
        if name:
            constraint = constraint.with_name(name)
        elif not constraint.name:
            constraint = constraint.with_name(f"c{len(self._constraints)}")
        if constraint.is_trivially_feasible():
            return constraint
        self._constraints.append(constraint)
        self._invalidate()
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], prefix: str = "") -> None:
        """Register several constraints, optionally sharing a name prefix."""
        for i, constraint in enumerate(constraints):
            self.add_constr(constraint, name=f"{prefix}{i}" if prefix else "")

    @property
    def constraints(self) -> List[Constraint]:
        """All registered constraints."""
        return list(self._constraints)

    # -- objective ----------------------------------------------------------

    def set_objective(
        self, expr, sense: Optional[Union[str, ObjectiveSense]] = None
    ) -> None:
        """Set the objective expression (and optionally the direction)."""
        expr = LinExpr.from_value(expr)
        self._check_ownership(expr)
        direction = (
            self._objective.sense if sense is None else ObjectiveSense.coerce(sense)
        )
        self._objective = Objective(expr, direction)
        self._invalidate()

    @property
    def objective(self) -> Objective:
        return self._objective

    @property
    def sense(self) -> ObjectiveSense:
        return self._objective.sense

    # -- compilation ----------------------------------------------------------

    def _check_ownership(self, expr: LinExpr) -> None:
        for var in expr.terms:
            if var._model_id != self._id:
                raise ModelError(
                    f"variable {var.name!r} belongs to a different model"
                )

    def compile(self) -> StandardForm:
        """Compile the model into matrix standard form for the backends.

        The result is cached: repeated calls return the same
        :class:`StandardForm` until the model structure changes.  Bound and
        RHS mutations through :meth:`set_var_bounds` / :meth:`set_constr_rhs`
        patch the cached arrays in place, so sweeping solvers (the Pareto
        walk, branch and bound) never rebuild the matrices.
        """
        if self._compiled is not None:
            return self._compiled
        variables = self._variables
        index = {var: i for i, var in enumerate(variables)}
        n = len(variables)

        maximize = self._objective.sense is ObjectiveSense.MAXIMIZE
        c = np.zeros(n)
        for var, coeff in self._objective.expr.terms.items():
            c[index[var]] = coeff
        c0 = self._objective.expr.constant
        if maximize:
            c = -c
            c0 = -c0

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        self._row_of = {}
        for constraint in self._constraints:
            row = np.zeros(n)
            for var, coeff in constraint.expr.terms.items():
                row[index[var]] = coeff
            rhs = -constraint.expr.constant
            if constraint.sense is ConstraintSense.LE:
                self._row_of[constraint.name] = ("ub", len(ub_rows), 1.0)
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif constraint.sense is ConstraintSense.GE:
                self._row_of[constraint.name] = ("ub", len(ub_rows), -1.0)
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                self._row_of[constraint.name] = ("eq", len(eq_rows), 1.0)
                eq_rows.append(row)
                eq_rhs.append(rhs)

        a_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)

        lower = np.array([var.lb for var in variables]) if n else np.zeros(0)
        upper = np.array([var.ub for var in variables]) if n else np.zeros(0)
        integer_mask = (
            np.array([var.is_integer for var in variables], dtype=bool)
            if n
            else np.zeros(0, dtype=bool)
        )

        self._compiled = StandardForm(
            variables=variables,
            c=c,
            c0=c0,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lower=lower,
            upper=upper,
            integer_mask=integer_mask,
            maximize=maximize,
        )
        return self._compiled

    # -- incremental mutation ----------------------------------------------

    def set_var_bounds(
        self,
        var: Variable,
        lb: Optional[float],
        ub: Optional[float],
    ) -> None:
        """Change a variable's bounds without rebuilding the model.

        ``None`` means unbounded on that side, matching :meth:`add_var`.  The
        cached standard form (when present) is patched in place, so the next
        solve sees the new bounds at zero rebuild cost — this is what the
        MIN_EFF_CYC Pareto walk mutates between consecutive MILPs.
        """
        if var._model_id != self._id:
            raise ModelError(f"variable {var.name!r} belongs to a different model")
        new_lb = -math.inf if lb is None else float(lb)
        new_ub = math.inf if ub is None else float(ub)
        if new_lb > new_ub:
            raise ModelError(
                f"variable {var.name!r} would get empty domain [{new_lb}, {new_ub}]"
            )
        var.lb = new_lb
        var.ub = new_ub
        if self._compiled is not None:
            self._compiled.lower[var.index] = new_lb
            self._compiled.upper[var.index] = new_ub

    def set_constr_rhs(self, name: str, rhs: float) -> None:
        """Change the right-hand side of a named constraint in place.

        The constraint keeps its sense and coefficients; only the constant
        moves.  The cached standard form is patched without recompiling.
        """
        for i, constraint in enumerate(self._constraints):
            if constraint.name == name:
                updated = Constraint(
                    LinExpr(constraint.expr.terms, -float(rhs)),
                    constraint.sense,
                    constraint.name,
                )
                self._constraints[i] = updated
                if self._compiled is not None:
                    kind, row, sign = self._row_of[name]
                    target = (
                        self._compiled.b_ub if kind == "ub" else self._compiled.b_eq
                    )
                    target[row] = sign * float(rhs)
                return
        raise ModelError(f"no constraint named {name!r}")

    # -- solving ----------------------------------------------------------------

    def solve(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-6,
        warm_start: Optional[object] = None,
    ) -> Solution:
        """Solve the model and return a :class:`Solution`.

        Args:
            backend: "auto" (scipy if available, otherwise pure Python),
                "scipy", or "pure".
            time_limit: Optional wall-clock limit in seconds, passed to the
                backend when it supports one.
            mip_gap: Relative MIP gap used by the branch-and-bound fallback.
            warm_start: A previous :class:`Solution` (or its ``basis``) of a
                structurally identical model; the pure backend re-solves from
                that basis with the dual simplex when only bounds/RHS changed.
                Other backends ignore it.
        """
        form = self.compile()
        chosen = backend.lower()
        if chosen == "auto":
            chosen = "scipy" if _scipy_available() else "pure"
        if chosen == "scipy":
            from repro.lp.scipy_backend import ScipyBackend

            return ScipyBackend(time_limit=time_limit).solve(form)
        if chosen == "pure":
            from repro.lp.pure_backend import PureBackend

            basis = getattr(warm_start, "basis", warm_start)
            return PureBackend(time_limit=time_limit, mip_gap=mip_gap).solve(
                form, warm_basis=basis
            )
        raise SolverError(f"unknown backend {backend!r}")

    # -- diagnostics ------------------------------------------------------------

    def check_solution(self, solution: Solution, tolerance: float = 1e-5) -> bool:
        """Verify that ``solution`` satisfies all constraints and bounds."""
        if not solution.has_point:
            return False
        values = solution.values
        for var in self._variables:
            value = values.get(var)
            if value is None:
                return False
            if value < var.lb - tolerance or value > var.ub + tolerance:
                return False
            if var.is_integer and abs(value - round(value)) > tolerance:
                return False
        return all(c.is_satisfied(values, tolerance) for c in self._constraints)

    def summary(self) -> str:
        """One-line description of the model size."""
        integers = sum(1 for v in self._variables if v.is_integer)
        return (
            f"Model {self.name!r}: {len(self._variables)} vars "
            f"({integers} integer), {len(self._constraints)} constraints, "
            f"{self._objective.sense.value}"
        )

    def __repr__(self) -> str:
        return f"<{self.summary()}>"


def _scipy_available() -> bool:
    try:
        from scipy.optimize import linprog, milp  # noqa: F401
    except Exception:  # pragma: no cover - scipy is installed in this repo
        return False
    return True
