"""Variables and affine expressions for the LP/MILP modelling layer.

A :class:`Variable` is created through :meth:`repro.lp.model.Model.add_var`.
Arithmetic on variables produces :class:`LinExpr` objects (affine expressions
``sum(coeff_i * var_i) + constant``), and comparisons (``<=``, ``>=``, ``==``)
on expressions produce :class:`repro.lp.constraint.Constraint` objects that
can be added to a model.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"

    @classmethod
    def coerce(cls, value: Union[str, "VarType"]) -> "VarType":
        """Accept either a :class:`VarType` or its string name/value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            normalized = value.strip().lower()
            aliases = {
                "c": cls.CONTINUOUS,
                "continuous": cls.CONTINUOUS,
                "real": cls.CONTINUOUS,
                "i": cls.INTEGER,
                "int": cls.INTEGER,
                "integer": cls.INTEGER,
                "b": cls.BINARY,
                "bin": cls.BINARY,
                "binary": cls.BINARY,
            }
            if normalized in aliases:
                return aliases[normalized]
        raise ValueError(f"unknown variable type: {value!r}")


class Variable:
    """A single decision variable.

    Variables are hashable by identity and ordered by their creation index
    inside their owning model, which keeps compiled matrices deterministic.

    Attributes:
        name: Human-readable unique name within the model.
        lb: Lower bound (``-inf`` allowed).
        ub: Upper bound (``+inf`` allowed).
        vtype: Variable domain (continuous / integer / binary).
        index: Column index assigned by the owning model.
    """

    __slots__ = ("name", "lb", "ub", "vtype", "index", "_model_id")

    def __init__(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: Union[str, VarType] = VarType.CONTINUOUS,
        index: int = -1,
        model_id: int = 0,
    ) -> None:
        self.name = name
        self.lb = -math.inf if lb is None else float(lb)
        self.ub = math.inf if ub is None else float(ub)
        self.vtype = VarType.coerce(vtype)
        if self.vtype is VarType.BINARY:
            self.lb = max(self.lb, 0.0)
            self.ub = min(self.ub, 1.0)
        if self.lb > self.ub:
            raise ValueError(
                f"variable {name!r} has empty domain [{self.lb}, {self.ub}]"
            )
        self.index = index
        self._model_id = model_id

    @property
    def is_integer(self) -> bool:
        """True for integer and binary variables."""
        return self.vtype in (VarType.INTEGER, VarType.BINARY)

    def to_expr(self) -> "LinExpr":
        """Return this variable as a one-term affine expression."""
        return LinExpr({self: 1.0}, 0.0)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other):
        return self.to_expr() + other

    def __radd__(self, other):
        return self.to_expr() + other

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, other):
        return self.to_expr() * other

    def __rmul__(self, other):
        return self.to_expr() * other

    def __truediv__(self, other):
        return self.to_expr() / other

    def __neg__(self):
        return -self.to_expr()

    def __pos__(self):
        return self.to_expr()

    # -- comparisons produce constraints ---------------------------------

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Variable):
            # Variables are dict/set keys throughout the modelling layer, so
            # `==` between two Variable objects must stay a plain identity
            # check.  Build equality constraints between variables with
            # `x - y == 0` (or via LinExpr) instead.
            return other is self
        return self.to_expr() == other

    def __ne__(self, other):  # type: ignore[override]
        if isinstance(other, Variable):
            return other is not self
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coeff * var) + constant``.

    Instances are immutable from the caller's point of view: every arithmetic
    operation returns a new expression.  Coefficients exactly equal to zero
    are dropped so expressions stay sparse.
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Mapping[Variable, Number] | None = None,
        constant: Number = 0.0,
    ) -> None:
        clean: Dict[Variable, float] = {}
        if terms:
            for var, coeff in terms.items():
                if not isinstance(var, Variable):
                    raise TypeError(f"expected Variable, got {type(var).__name__}")
                coeff = float(coeff)
                if coeff != 0.0:
                    clean[var] = clean.get(var, 0.0) + coeff
        self.terms: Dict[Variable, float] = clean
        self.constant = float(constant)

    # -- construction helpers --------------------------------------------

    @staticmethod
    def from_value(value) -> "LinExpr":
        """Coerce a number, Variable or LinExpr into a LinExpr."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot build a linear expression from {type(value).__name__}")

    @staticmethod
    def sum(values: Iterable) -> "LinExpr":
        """Sum an iterable of numbers, variables and expressions."""
        total = LinExpr()
        for value in values:
            total = total + value
        return total

    @staticmethod
    def dot(coefficients: Iterable[Number], variables: Iterable[Variable]) -> "LinExpr":
        """Return the inner product of a coefficient list and a variable list."""
        coeffs = list(coefficients)
        varlist = list(variables)
        if len(coeffs) != len(varlist):
            raise ValueError("dot() requires equally long coefficient/variable lists")
        terms: Dict[Variable, float] = {}
        for coeff, var in zip(coeffs, varlist):
            if coeff:
                terms[var] = terms.get(var, 0.0) + float(coeff)
        return LinExpr(terms, 0.0)

    # -- inspection --------------------------------------------------------

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Variables with a non-zero coefficient, in insertion order."""
        return tuple(self.terms.keys())

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` (0.0 if absent)."""
        return self.terms.get(var, 0.0)

    def is_constant(self) -> bool:
        """True when the expression has no variable terms."""
        return not self.terms

    def evaluate(self, assignment: Mapping[Variable, Number]) -> float:
        """Evaluate the expression under a variable assignment.

        Raises:
            KeyError: if a variable of the expression is missing from
                ``assignment``.
        """
        value = self.constant
        for var, coeff in self.terms.items():
            value += coeff * float(assignment[var])
        return value

    # -- arithmetic --------------------------------------------------------

    def _combined(self, other, sign: float) -> "LinExpr":
        other = LinExpr.from_value(other)
        terms = dict(self.terms)
        for var, coeff in other.terms.items():
            terms[var] = terms.get(var, 0.0) + sign * coeff
        return LinExpr(terms, self.constant + sign * other.constant)

    def __add__(self, other):
        return self._combined(other, 1.0)

    def __radd__(self, other):
        return self._combined(other, 1.0)

    def __sub__(self, other):
        return self._combined(other, -1.0)

    def __rsub__(self, other):
        return LinExpr.from_value(other)._combined(self, -1.0)

    def __mul__(self, other):
        if isinstance(other, (Variable, LinExpr)):
            raise TypeError("products of variables are not linear")
        factor = float(other)
        return LinExpr(
            {var: coeff * factor for var, coeff in self.terms.items()},
            self.constant * factor,
        )

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        if isinstance(other, (Variable, LinExpr)):
            raise TypeError("division by a variable is not linear")
        return self.__mul__(1.0 / float(other))

    def __neg__(self):
        return self.__mul__(-1.0)

    def __pos__(self):
        return self

    # -- comparisons produce constraints -----------------------------------

    def __le__(self, other):
        from repro.lp.constraint import Constraint, ConstraintSense

        return Constraint(self - other, ConstraintSense.LE)

    def __ge__(self, other):
        from repro.lp.constraint import Constraint, ConstraintSense

        return Constraint(self - other, ConstraintSense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from repro.lp.constraint import Constraint, ConstraintSense

        return Constraint(self - other, ConstraintSense.EQ)

    def __ne__(self, other):  # type: ignore[override]
        return NotImplemented

    def __hash__(self) -> int:  # expressions are not meant to be dict keys
        return id(self)

    def __repr__(self) -> str:
        parts = []
        for var, coeff in self.terms.items():
            parts.append(f"{coeff:+g}*{var.name}")
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"
