"""Solution objects returned by LP/MILP backends."""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional

from repro.lp.expression import LinExpr, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    FEASIBLE = "feasible"  # a feasible but not proven-optimal point (time limit)
    ERROR = "error"


class Solution:
    """Result of solving a :class:`repro.lp.model.Model`.

    Attributes:
        status: Solve outcome.
        objective: Objective value at the returned point (``None`` unless a
            point is available).
        values: Mapping from variable to its value in the returned point.
        backend: Name of the backend that produced the solution.
        message: Free-form diagnostic string from the backend.
        iterations: Backend-reported total LP/simplex iteration count
            (0 when unknown).  For MILPs this sums the iterations of every
            branch-and-bound node, so warm-start savings are observable.
        nodes: Branch-and-bound nodes explored (0 for plain LPs or when the
            backend does not report it).
        basis: Opaque warm-start token (a
            :class:`repro.lp.revised_simplex.BasisState` for the pure
            backend).  Pass it to the next ``Model.solve(warm_start=...)`` of
            a structurally identical model to reuse the final basis.
    """

    def __init__(
        self,
        status: SolveStatus,
        objective: Optional[float] = None,
        values: Optional[Mapping[Variable, float]] = None,
        backend: str = "",
        message: str = "",
        iterations: int = 0,
        nodes: int = 0,
        basis: Optional[object] = None,
    ) -> None:
        self.status = status
        self.objective = objective
        self.values: Dict[Variable, float] = dict(values or {})
        self.backend = backend
        self.message = message
        self.iterations = iterations
        self.nodes = nodes
        self.basis = basis

    @property
    def is_optimal(self) -> bool:
        """True when the backend proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    @property
    def has_point(self) -> bool:
        """True when a (not necessarily optimal) feasible point is available."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) and bool(
            self.values
        )

    def value(self, item) -> float:
        """Value of a variable or affine expression at the solution point.

        Args:
            item: a :class:`Variable` or :class:`LinExpr`.

        Raises:
            KeyError: when the item references a variable not in the solution.
        """
        if isinstance(item, Variable):
            return self.values[item]
        if isinstance(item, LinExpr):
            return item.evaluate(self.values)
        raise TypeError(f"cannot evaluate {type(item).__name__} at a solution")

    def __getitem__(self, item) -> float:
        return self.value(item)

    def __contains__(self, var) -> bool:
        return var in self.values

    def __repr__(self) -> str:
        obj = "None" if self.objective is None else f"{self.objective:.6g}"
        return (
            f"Solution(status={self.status.value}, objective={obj}, "
            f"backend={self.backend!r})"
        )
