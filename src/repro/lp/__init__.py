"""Linear and mixed-integer linear programming substrate.

The paper solves its retiming-and-recycling formulations with CPLEX.  This
package provides the equivalent substrate built from scratch:

* an algebraic modelling layer (:class:`Model`, :class:`Variable`,
  :class:`LinExpr`, :class:`Constraint`) in the spirit of PuLP / python-mip,
* a backend that compiles models to :func:`scipy.optimize.linprog` and
  :func:`scipy.optimize.milp` (HiGHS),
* a pure-Python fallback solver used when scipy is unavailable or for
  cross-checking: a bounded-variable revised simplex with warm starts
  (:class:`RevisedSimplexSolver`) under a best-first branch and bound whose
  nodes re-solve dual-simplex from the parent basis, plus the original dense
  tableau (:class:`SimplexSolver`) kept as a reference implementation.

Typical usage::

    from repro.lp import Model

    model = Model("example", sense="min")
    x = model.add_var("x", lb=0.0)
    y = model.add_var("y", lb=0.0, vtype="integer")
    model.add_constr(x + 2 * y >= 3, name="cover")
    model.set_objective(x + y)
    solution = model.solve()
    assert solution.is_optimal
    print(solution[x], solution[y], solution.objective)
"""

from repro.lp.expression import LinExpr, Variable, VarType
from repro.lp.constraint import Constraint, ConstraintSense
from repro.lp.model import Model, Objective, ObjectiveSense
from repro.lp.solution import Solution, SolveStatus
from repro.lp.errors import (
    LPError,
    ModelError,
    SolverError,
    InfeasibleError,
    UnboundedError,
)
from repro.lp.scipy_backend import ScipyBackend
from repro.lp.simplex import SimplexSolver
from repro.lp.revised_simplex import (
    BasisState,
    PreparedLP,
    RevisedSimplexSolver,
    SimplexResult,
)
from repro.lp.branch_and_bound import BranchAndBoundSolver, MilpResult
from repro.lp.pure_backend import PureBackend

__all__ = [
    "BasisState",
    "PreparedLP",
    "RevisedSimplexSolver",
    "MilpResult",
    "LinExpr",
    "Variable",
    "VarType",
    "Constraint",
    "ConstraintSense",
    "Model",
    "Objective",
    "ObjectiveSense",
    "Solution",
    "SolveStatus",
    "LPError",
    "ModelError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "ScipyBackend",
    "SimplexSolver",
    "SimplexResult",
    "BranchAndBoundSolver",
    "PureBackend",
]
