"""Pure-Python (numpy) two-phase dense tableau simplex solver.

This is the *reference* LP engine: intentionally simple — a dense tableau
with Bland's anti-cycling rule — and kept for cross-checking the optimised
:class:`repro.lp.revised_simplex.RevisedSimplexSolver`, which replaced it as
the engine of the pure backend (bounded variables handled natively, explicit
basis inverse, warm starts).  Tests solve the same models with both and with
scipy/HiGHS and require identical optima.

The solver handles the same general form as the scipy backend::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lb <= x <= ub     (entries may be +-inf)

Internally, variables are shifted/split so that every simplex variable is
non-negative, finite upper bounds become extra rows, and inequality rows get
slack variables.  Phase one minimises the sum of artificial variables; phase
two optimises the true objective starting from the phase-one basis.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.lp.revised_simplex import SimplexResult
from repro.lp.solution import SolveStatus

_EPS = 1e-9


class SimplexSolver:
    """Two-phase dense simplex with Bland's rule."""

    def __init__(self, max_iterations: int = 20000, tolerance: float = 1e-9) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def solve(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> SimplexResult:
        """Solve the LP described by the arguments (see module docstring)."""
        c = np.asarray(c, dtype=float)
        n = c.shape[0]
        if n == 0:
            return SimplexResult(SolveStatus.OPTIMAL, np.zeros(0), 0.0, 0)

        transform = _VariableTransform(lower, upper)
        c_t, extra_rows, extra_rhs = transform.apply_objective_and_bounds(c)

        rows: List[np.ndarray] = []
        rhs: List[float] = []
        senses: List[str] = []
        for row, b in zip(np.atleast_2d(a_ub) if a_ub.size else [], b_ub):
            new_row, new_b = transform.apply_row(row, b)
            rows.append(new_row)
            rhs.append(new_b)
            senses.append("<=")
        for row, b in zip(np.atleast_2d(a_eq) if a_eq.size else [], b_eq):
            new_row, new_b = transform.apply_row(row, b)
            rows.append(new_row)
            rhs.append(new_b)
            senses.append("==")
        for row, b in zip(extra_rows, extra_rhs):
            rows.append(row)
            rhs.append(b)
            senses.append("<=")

        tableau_result = self._two_phase(c_t, rows, rhs, senses, transform.dim)
        if tableau_result.status is not SolveStatus.OPTIMAL:
            return tableau_result
        x = transform.recover(tableau_result.x)
        return SimplexResult(
            SolveStatus.OPTIMAL,
            x,
            float(c @ x),
            tableau_result.iterations,
        )

    # -- core two-phase tableau --------------------------------------------

    def _two_phase(
        self,
        c: np.ndarray,
        rows: List[np.ndarray],
        rhs: List[float],
        senses: List[str],
        dim: int,
    ) -> SimplexResult:
        m = len(rows)
        if m == 0:
            # No constraints: optimum is 0 unless some cost is negative, in
            # which case the problem is unbounded below (variables are >= 0).
            if np.any(c < -self.tolerance):
                return SimplexResult(SolveStatus.UNBOUNDED, None, None, 0)
            return SimplexResult(SolveStatus.OPTIMAL, np.zeros(dim), 0.0, 0)

        a = np.vstack(rows).astype(float)
        b = np.asarray(rhs, dtype=float)
        # Normalise to non-negative right-hand sides.
        for i in range(m):
            if b[i] < 0:
                a[i] = -a[i]
                b[i] = -b[i]
                if senses[i] == "<=":
                    senses[i] = ">="
                elif senses[i] == ">=":
                    senses[i] = "<="

        num_slack = sum(1 for s in senses if s in ("<=", ">="))
        num_art = sum(1 for s in senses if s in (">=", "=="))
        total = dim + num_slack + num_art

        table = np.zeros((m, total))
        table[:, :dim] = a
        basis = [-1] * m
        slack_col = dim
        art_col = dim + num_slack
        art_columns: List[int] = []
        for i, sense in enumerate(senses):
            if sense == "<=":
                table[i, slack_col] = 1.0
                basis[i] = slack_col
                slack_col += 1
            elif sense == ">=":
                table[i, slack_col] = -1.0
                slack_col += 1
                table[i, art_col] = 1.0
                basis[i] = art_col
                art_columns.append(art_col)
                art_col += 1
            else:  # ==
                table[i, art_col] = 1.0
                basis[i] = art_col
                art_columns.append(art_col)
                art_col += 1

        iterations = 0
        if art_columns:
            phase1_cost = np.zeros(total)
            phase1_cost[art_columns] = 1.0
            status, value, iters = self._optimize(table, b, basis, phase1_cost)
            iterations += iters
            if status is not SolveStatus.OPTIMAL:
                return SimplexResult(SolveStatus.ERROR, None, None, iterations)
            if value > 1e-6:
                return SimplexResult(SolveStatus.INFEASIBLE, None, None, iterations)
            self._drive_out_artificials(table, b, basis, art_columns, dim + num_slack)
            # Rows whose artificial could not be driven out are redundant
            # (their structural coefficients are all ~0); drop them.
            art_set = set(art_columns)
            keep_rows = [i for i in range(len(basis)) if basis[i] not in art_set]
            if len(keep_rows) != len(basis):
                table = table[keep_rows, :]
                b = b[keep_rows]
                basis = [basis[i] for i in keep_rows]

        phase2_cost = np.zeros(total)
        phase2_cost[:dim] = c
        # Forbid artificial variables from re-entering the basis.
        if art_columns:
            keep = [j for j in range(total) if j not in set(art_columns)]
            remap = {old: new for new, old in enumerate(keep)}
            table = table[:, keep]
            phase2_cost = phase2_cost[keep]
            basis = [remap[bcol] for bcol in basis]
            total = len(keep)

        status, value, iters = self._optimize(table, b, basis, phase2_cost)
        iterations += iters
        if status is SolveStatus.UNBOUNDED:
            return SimplexResult(SolveStatus.UNBOUNDED, None, None, iterations)
        if status is not SolveStatus.OPTIMAL:
            return SimplexResult(SolveStatus.ERROR, None, None, iterations)

        x = np.zeros(total)
        for row_index, column in enumerate(basis):
            x[column] = b[row_index]
        return SimplexResult(SolveStatus.OPTIMAL, x[:dim], value, iterations)

    def _optimize(
        self,
        table: np.ndarray,
        b: np.ndarray,
        basis: List[int],
        cost: np.ndarray,
    ) -> Tuple[SolveStatus, float, int]:
        """Run primal simplex iterations in place; returns (status, obj, iters)."""
        m, total = table.shape
        reduced = np.empty(total)
        for iteration in range(self.max_iterations):
            # Reduced costs: cost - cost_B @ B^-1 A, computed from the tableau
            # (which is kept as B^-1 A throughout).
            cost_b = cost[basis]
            np.dot(cost_b, table, out=reduced)
            np.subtract(cost, reduced, out=reduced)
            reduced[np.abs(reduced) < self.tolerance] = 0.0
            entering_candidates = np.nonzero(reduced < -self.tolerance)[0]
            if entering_candidates.size == 0:
                objective = float(cost_b @ b)
                return SolveStatus.OPTIMAL, objective, iteration
            entering = int(entering_candidates[0])  # Bland's rule

            column = table[:, entering]
            positive = column > self.tolerance
            if not np.any(positive):
                return SolveStatus.UNBOUNDED, math.inf, iteration
            ratios = np.full(m, np.inf)
            ratios[positive] = b[positive] / column[positive]
            best = np.min(ratios)
            # Bland's rule on ties: leave the row whose basic variable has the
            # smallest column index.
            tie_rows = np.nonzero(np.abs(ratios - best) <= self.tolerance)[0]
            leaving = int(min(tie_rows, key=lambda r: basis[r]))

            self._pivot(table, b, leaving, entering)
            basis[leaving] = entering
        return SolveStatus.ERROR, math.nan, self.max_iterations

    @staticmethod
    def _pivot(table: np.ndarray, b: np.ndarray, row: int, col: int) -> None:
        pivot = table[row, col]
        table[row] /= pivot
        b[row] /= pivot
        factors = table[:, col].copy()
        factors[row] = 0.0
        factors[np.abs(factors) <= _EPS] = 0.0
        table -= np.outer(factors, table[row])
        b -= factors * b[row]
        b[(b < 0.0) & (b > -1e-11)] = 0.0

    def _drive_out_artificials(
        self,
        table: np.ndarray,
        b: np.ndarray,
        basis: List[int],
        art_columns: List[int],
        num_structural: int,
    ) -> None:
        """Pivot basic artificial variables out of the basis when possible."""
        art_set = set(art_columns)
        for row, column in enumerate(basis):
            if column not in art_set:
                continue
            # The artificial is basic at value ~0; pivot on any structural
            # column with a non-zero entry in this row.
            candidates = np.nonzero(np.abs(table[row, :num_structural]) > 1e-7)[0]
            if candidates.size:
                entering = int(candidates[0])
                self._pivot(table, b, row, entering)
                basis[row] = entering
            # If no candidate exists the row is redundant; the artificial stays
            # basic at zero, which is harmless because phase two removes its
            # column from the cost and from candidate entering columns.


class _VariableTransform:
    """Shift/split original variables so that simplex variables are >= 0.

    * Finite lower bound ``lb``: substitute ``x = lb + y`` with ``y >= 0``.
    * ``lb = -inf``: split ``x = y_plus - y_minus`` with both parts >= 0.
    * Finite upper bound: emitted as an extra ``<=`` row in the transformed
      space.
    """

    def __init__(self, lower: np.ndarray, upper: np.ndarray) -> None:
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        self.n = self.lower.shape[0]
        self.column_of: List[int] = []
        self.split: List[bool] = []
        column = 0
        for i in range(self.n):
            self.column_of.append(column)
            if math.isinf(self.lower[i]):
                self.split.append(True)
                column += 2
            else:
                self.split.append(False)
                column += 1
        self.dim = column

    def apply_objective_and_bounds(
        self, c: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray], List[float]]:
        c_t = np.zeros(self.dim)
        extra_rows: List[np.ndarray] = []
        extra_rhs: List[float] = []
        for i in range(self.n):
            col = self.column_of[i]
            if self.split[i]:
                c_t[col] = c[i]
                c_t[col + 1] = -c[i]
            else:
                c_t[col] = c[i]
            if math.isfinite(self.upper[i]):
                row = np.zeros(self.dim)
                if self.split[i]:
                    row[col] = 1.0
                    row[col + 1] = -1.0
                    extra_rhs.append(self.upper[i])
                else:
                    row[col] = 1.0
                    extra_rhs.append(self.upper[i] - self.lower[i])
                extra_rows.append(row)
        return c_t, extra_rows, extra_rhs

    def apply_row(self, row: np.ndarray, b: float) -> Tuple[np.ndarray, float]:
        new_row = np.zeros(self.dim)
        offset = 0.0
        for i in range(self.n):
            coeff = row[i]
            if coeff == 0.0:
                continue
            col = self.column_of[i]
            if self.split[i]:
                new_row[col] += coeff
                new_row[col + 1] -= coeff
            else:
                new_row[col] += coeff
                offset += coeff * self.lower[i]
        return new_row, b - offset

    def recover(self, y: np.ndarray) -> np.ndarray:
        x = np.zeros(self.n)
        for i in range(self.n):
            col = self.column_of[i]
            if self.split[i]:
                x[i] = y[col] - y[col + 1]
            else:
                x[i] = self.lower[i] + y[col]
        return x
