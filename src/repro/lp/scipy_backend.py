"""Backend that compiles models to scipy.optimize (HiGHS)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lp.errors import SolverError
from repro.lp.model import StandardForm
from repro.lp.solution import Solution, SolveStatus


class ScipyBackend:
    """Solve LPs with :func:`scipy.optimize.linprog` and MILPs with
    :func:`scipy.optimize.milp` (both powered by HiGHS).

    The backend is stateless apart from its configuration, so a single
    instance can be reused across many solves.
    """

    name = "scipy-highs"

    def __init__(self, time_limit: Optional[float] = None) -> None:
        self.time_limit = time_limit

    def solve(self, form: StandardForm) -> Solution:
        """Solve a compiled :class:`StandardForm` and return a Solution."""
        if form.num_variables == 0:
            return self._empty_model_solution(form)
        if form.has_integers:
            return self._solve_milp(form)
        return self._solve_lp(form)

    # -- helpers -----------------------------------------------------------

    def _empty_model_solution(self, form: StandardForm) -> Solution:
        # A model with no variables is feasible iff it has no (infeasible)
        # constant constraints; compile() already dropped the feasible ones.
        infeasible = form.a_ub.shape[0] > 0 and np.any(form.b_ub < -1e-12)
        infeasible = infeasible or (
            form.a_eq.shape[0] > 0 and np.any(np.abs(form.b_eq) > 1e-12)
        )
        if infeasible:
            return Solution(SolveStatus.INFEASIBLE, backend=self.name)
        objective = -form.c0 if form.maximize else form.c0
        return Solution(
            SolveStatus.OPTIMAL, objective=objective, values={}, backend=self.name
        )

    def _solve_lp(self, form: StandardForm) -> Solution:
        from scipy.optimize import linprog

        bounds = list(zip(form.lower, form.upper))
        options = {}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        result = linprog(
            c=form.c,
            A_ub=form.a_ub if form.a_ub.size else None,
            b_ub=form.b_ub if form.b_ub.size else None,
            A_eq=form.a_eq if form.a_eq.size else None,
            b_eq=form.b_eq if form.b_eq.size else None,
            bounds=bounds,
            method="highs",
            options=options or None,
        )
        return self._wrap(form, result)

    def _solve_milp(self, form: StandardForm) -> Solution:
        from scipy.optimize import Bounds, LinearConstraint, milp

        constraints = []
        if form.a_ub.size:
            constraints.append(
                LinearConstraint(form.a_ub, -np.inf, form.b_ub)
            )
        if form.a_eq.size:
            constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))
        integrality = form.integer_mask.astype(int)
        options = {}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        result = milp(
            c=form.c,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(form.lower, form.upper),
            options=options or None,
        )
        return self._wrap(form, result)

    def _wrap(self, form: StandardForm, result) -> Solution:
        status = self._status_from_result(result)
        values = {}
        objective = None
        if result.x is not None and status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
        ):
            x = np.asarray(result.x, dtype=float)
            # Snap integer variables to the nearest integer to remove solver noise.
            x = np.where(form.integer_mask, np.round(x), x)
            values = {var: float(x[i]) for i, var in enumerate(form.variables)}
            raw = float(form.c @ x + form.c0)
            objective = -raw if form.maximize else raw
        return Solution(
            status=status,
            objective=objective,
            values=values,
            backend=self.name,
            message=str(getattr(result, "message", "")),
            iterations=int(getattr(result, "nit", 0) or 0),
        )

    @staticmethod
    def _status_from_result(result) -> SolveStatus:
        # linprog and milp both expose `.status`: 0 optimal, 1 iteration/time
        # limit, 2 infeasible, 3 unbounded, 4 numerical trouble.
        status = getattr(result, "status", None)
        success = bool(getattr(result, "success", False))
        if success:
            return SolveStatus.OPTIMAL
        if status == 2:
            return SolveStatus.INFEASIBLE
        if status == 3:
            return SolveStatus.UNBOUNDED
        if status == 1 and getattr(result, "x", None) is not None:
            return SolveStatus.FEASIBLE
        if status in (1, 4):
            return SolveStatus.ERROR
        raise SolverError(f"unrecognised scipy result status: {status!r}")
