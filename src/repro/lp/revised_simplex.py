"""Bounded-variable revised simplex with primal/dual warm starts.

This is the LP core of the pure backend.  Compared to the dense two-phase
tableau kept in :mod:`repro.lp.simplex` (the reference implementation used
for cross-checks) it

* handles finite variable bounds natively in the ratio test — no split free
  variables and no extra ``<=`` rows for upper bounds, which shrinks the
  working matrix by up to 2x on the retiming models,
* keeps an explicit basis inverse, updated by rank-1 (eta) pivots and
  refactorised periodically to bound numerical drift,
* prices entering variables with Dantzig or Devex rules and falls back to
  Bland's rule automatically when a degeneracy stall is detected,
* supports warm starts: the :class:`BasisState` returned by one solve can
  seed the next solve of a structurally identical LP.  When only bounds
  changed (branch-and-bound children, the ``tau``/``Theta`` sweeps of the
  Pareto walk) the previous optimal basis stays *dual* feasible and the dual
  simplex restores primal feasibility in a handful of pivots instead of
  re-solving from scratch.

The internal computational form appends one slack column per row::

    minimize    c_ext @ z       z = (x, s)
    subject to  [A | I] @ z = b
                lb <= z <= ub

Inequality slacks get bounds ``[0, inf)``; equality slacks are fixed at
``[0, 0]``.  Every variable is nonbasic at one of its finite bounds (or at
zero when free) or basic; the ratio test lets a nonbasic variable jump to its
opposite bound without a basis change (a "bound flip").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.lp.solution import SolveStatus

# Nonbasic/basic status codes stored in BasisState.vstat.
BASIC = 0
AT_LOWER = 1
AT_UPPER = 2
FREE = 3  # nonbasic free variable, held at zero

_PIVOT_TOL = 1e-9
_DEGENERATE_STEP = 1e-10
_BLAND_TRIGGER = 30


@dataclass
class SimplexResult:
    """Outcome of a revised simplex solve.

    Attributes:
        status: OPTIMAL, INFEASIBLE, UNBOUNDED or ERROR.
        x: Primal point in the original (structural) variable space.
        objective: Objective value ``c @ x`` (``None`` unless optimal).
        iterations: Total pivot/bound-flip count over all phases.
        basis: Final basis, reusable as a warm start for the next solve of a
            structurally identical LP (``None`` when the solve failed).
    """

    status: SolveStatus
    x: Optional[np.ndarray]
    objective: Optional[float]
    iterations: int = 0
    basis: Optional["BasisState"] = None


@dataclass
class BasisState:
    """Warm-start token: which columns are basic and where nonbasics sit.

    Attributes:
        basic: Basic column index per row, shape ``(m,)``.
        vstat: Per-column status (BASIC / AT_LOWER / AT_UPPER / FREE),
            shape ``(n + m,)`` covering structural and slack columns.
        binv: Optional cached inverse of the basis matrix, so a warm start
            can skip the O(m^3) refactorisation (the dominant cost of
            branch-and-bound nodes otherwise).  Only valid together with
            ``basic`` for the same constraint matrix.
        age: Rank-1 (eta) updates applied to ``binv`` since it was last
            factorised from scratch; warm starts refactorise when this
            exceeds the solver's refactorisation period.
    """

    basic: np.ndarray
    vstat: np.ndarray
    binv: Optional[np.ndarray] = None
    age: int = 0

    def copy(self) -> "BasisState":
        return BasisState(
            self.basic.copy(),
            self.vstat.copy(),
            None if self.binv is None else self.binv.copy(),
            self.age,
        )

    def compatible_with(self, m: int, total: int) -> bool:
        """Whether this basis fits an LP with ``m`` rows and ``total`` columns.

        Beyond the shapes, the two views must agree: exactly the columns
        listed in ``basic`` are marked BASIC.  An inconsistent token would
        otherwise be installed and silently shift the nonbasic frame,
        producing a wrong "optimal" point.
        """
        if self.basic.shape != (m,) or self.vstat.shape != (total,):
            return False
        if not (bool(np.all(self.basic >= 0)) and bool(np.all(self.basic < total))):
            return False
        if int((self.vstat == BASIC).sum()) != m:
            return False
        return bool(np.all(self.vstat[self.basic] == BASIC))


class PreparedLP:
    """Shared matrix build of an LP, reusable across bound-only re-solves.

    Branch-and-bound solves thousands of LPs that differ only in variable
    bounds; building ``[A | I]`` once and passing fresh bound vectors to
    :meth:`RevisedSimplexSolver.solve_prepared` avoids re-assembling (and
    re-transforming) the constraint matrix at every node.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
    ) -> None:
        c = np.asarray(c, dtype=float)
        n = c.shape[0]
        a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
        a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
        b_ub = np.asarray(b_ub, dtype=float).ravel()
        b_eq = np.asarray(b_eq, dtype=float).ravel()
        m_ub = a_ub.shape[0]
        m_eq = a_eq.shape[0]
        m = m_ub + m_eq

        self.n = n
        self.m = m
        self.total = n + m
        self.A = np.zeros((m, self.total))
        self.A[:m_ub, :n] = a_ub
        self.A[m_ub:, :n] = a_eq
        self.A[np.arange(m), n + np.arange(m)] = 1.0
        self.b = np.concatenate([b_ub, b_eq])
        self.c_ext = np.concatenate([c, np.zeros(m)])
        self.slack_lower = np.zeros(m)
        self.slack_upper = np.concatenate([np.full(m_ub, math.inf), np.zeros(m_eq)])

    def full_bounds(self, lower: np.ndarray, upper: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Structural + slack bound vectors for one solve."""
        lo = np.concatenate([np.asarray(lower, dtype=float), self.slack_lower])
        hi = np.concatenate([np.asarray(upper, dtype=float), self.slack_upper])
        return lo, hi

    def refresh_rhs(self, b_ub: np.ndarray, b_eq: np.ndarray) -> None:
        """Re-read the right-hand sides after an in-place model mutation.

        The matrix and costs of a cached PreparedLP stay valid across
        bound/RHS-only model edits; only ``b`` has to be refreshed.
        """
        self.b = np.concatenate(
            [np.asarray(b_ub, dtype=float).ravel(), np.asarray(b_eq, dtype=float).ravel()]
        )


class _State:
    """Mutable solve state: the basis, its inverse and the basic values."""

    __slots__ = (
        "prep",
        "lo",
        "hi",
        "basic",
        "vstat",
        "binv",
        "xB",
        "pivots",
        "age",
        "devex",
    )

    def __init__(self, prep: PreparedLP, lo: np.ndarray, hi: np.ndarray) -> None:
        self.prep = prep
        self.lo = lo
        self.hi = hi
        self.basic = np.empty(prep.m, dtype=np.int64)
        self.vstat = np.empty(prep.total, dtype=np.int8)
        self.binv = np.eye(prep.m)
        self.xB = np.zeros(prep.m)
        self.pivots = 0
        self.age = 0
        self.devex = np.ones(prep.total)

    def nonbasic_values(self) -> np.ndarray:
        """Values of every column, with basic positions left at zero."""
        values = np.where(
            self.vstat == AT_LOWER,
            self.lo,
            np.where(self.vstat == AT_UPPER, self.hi, 0.0),
        )
        values[self.vstat == BASIC] = 0.0
        return values

    def recompute_xb(self) -> None:
        rhs = self.prep.b - self.prep.A @ self.nonbasic_values()
        self.xB = self.binv @ rhs

    def refactorize(self) -> bool:
        """Rebuild the basis inverse from scratch; False when B is singular."""
        try:
            self.binv = np.linalg.inv(self.prep.A[:, self.basic])
        except np.linalg.LinAlgError:
            return False
        self.age = 0
        self.recompute_xb()
        return True

    def point(self) -> np.ndarray:
        values = self.nonbasic_values()
        values[self.basic] = self.xB
        return values


class RevisedSimplexSolver:
    """Revised simplex for LPs with general bounds, warm-startable.

    Args:
        max_iterations: Pivot cap per solve (all phases combined).
        tolerance: Reduced-cost (dual) tolerance.
        feasibility_tol: Primal bound-violation tolerance.
        pricing: "dantzig" (most negative reduced cost), "devex"
            (steepest-edge-family reference weights) or "bland" (least index,
            slow but cycle-proof).  Dantzig and Devex both fall back to
            Bland's rule automatically after a run of degenerate pivots.
        refactor_every: Pivots between basis refactorisations.
    """

    def __init__(
        self,
        max_iterations: int = 50000,
        tolerance: float = 1e-9,
        feasibility_tol: float = 1e-7,
        pricing: str = "dantzig",
        refactor_every: int = 100,
    ) -> None:
        if pricing not in ("dantzig", "devex", "bland"):
            raise ValueError(f"unknown pricing rule {pricing!r}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.feasibility_tol = feasibility_tol
        self.pricing = pricing
        self.refactor_every = refactor_every

    # -- public API ---------------------------------------------------------

    def solve(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        basis: Optional[BasisState] = None,
    ) -> SimplexResult:
        """Solve the LP; same argument convention as the scipy backend."""
        prep = PreparedLP(c, a_ub, b_ub, a_eq, b_eq)
        return self.solve_prepared(prep, lower, upper, basis=basis)

    def solve_prepared(
        self,
        prep: PreparedLP,
        lower: np.ndarray,
        upper: np.ndarray,
        basis: Optional[BasisState] = None,
    ) -> SimplexResult:
        """Solve a :class:`PreparedLP` under the given bounds.

        When ``basis`` is compatible the solve warm-starts from it: a primal
        feasible basis goes straight to phase 2, a dual feasible one through
        the dual simplex; otherwise the composite phase 1 repairs it.
        """
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if prep.n == 0:
            return SimplexResult(SolveStatus.OPTIMAL, np.zeros(0), 0.0, 0)
        if np.any(lower > upper + self.feasibility_tol):
            return SimplexResult(SolveStatus.INFEASIBLE, None, None, 0)
        if prep.m == 0:
            return self._solve_box_only(prep, lower, upper)

        lo, hi = prep.full_bounds(lower, upper)
        state = _State(prep, lo, hi)

        # Anything that is not a compatible BasisState (stale token from a
        # different model, arbitrary caller garbage) silently cold-starts.
        warm = isinstance(basis, BasisState) and basis.compatible_with(
            prep.m, prep.total
        )
        if warm:
            warm = self._install_basis(state, basis)
        if not warm:
            self._cold_basis(state)

        result = self._run(state, warm=warm)
        if result.status is SolveStatus.ERROR and warm:
            # A stale or numerically hostile warm basis should never make the
            # solve fail outright; retry cold.
            state = _State(prep, lo, hi)
            self._cold_basis(state)
            retry = self._run(state, warm=False)
            retry.iterations += result.iterations
            return retry
        return result

    # -- start bases --------------------------------------------------------

    def _solve_box_only(
        self, prep: PreparedLP, lower: np.ndarray, upper: np.ndarray
    ) -> SimplexResult:
        # No rows: minimise each cost coefficient against its own bounds.
        c = prep.c_ext[: prep.n]
        x = np.zeros(prep.n)
        for i in range(prep.n):
            if c[i] > 0:
                if not math.isfinite(lower[i]):
                    return SimplexResult(SolveStatus.UNBOUNDED, None, None, 0)
                x[i] = lower[i]
            elif c[i] < 0:
                if not math.isfinite(upper[i]):
                    return SimplexResult(SolveStatus.UNBOUNDED, None, None, 0)
                x[i] = upper[i]
            else:
                x[i] = min(max(0.0, lower[i]), upper[i])
        basis = BasisState(
            np.empty(0, dtype=np.int64), np.full(prep.n, AT_LOWER, dtype=np.int8)
        )
        return SimplexResult(SolveStatus.OPTIMAL, x, float(c @ x), 0, basis)

    def _cold_basis(self, state: _State) -> None:
        """All-slack starting basis with nonbasics at their nearest bound."""
        prep = state.prep
        finite_lo = np.isfinite(state.lo)
        finite_hi = np.isfinite(state.hi)
        state.vstat[:] = np.where(
            finite_lo, AT_LOWER, np.where(finite_hi, AT_UPPER, FREE)
        )
        state.basic[:] = prep.n + np.arange(prep.m)
        state.vstat[state.basic] = BASIC
        state.binv = np.eye(prep.m)
        state.recompute_xb()
        state.devex[:] = 1.0

    def _install_basis(self, state: _State, basis: BasisState) -> bool:
        state.basic[:] = basis.basic
        state.vstat[:] = basis.vstat
        # Sanitise statuses against the *current* bounds: a variable can only
        # rest at a bound that exists.
        finite_lo = np.isfinite(state.lo)
        finite_hi = np.isfinite(state.hi)
        at_lo = state.vstat == AT_LOWER
        at_hi = state.vstat == AT_UPPER
        state.vstat[at_lo & ~finite_lo] = np.where(
            finite_hi[at_lo & ~finite_lo], AT_UPPER, FREE
        )
        at_hi = state.vstat == AT_UPPER
        state.vstat[at_hi & ~finite_hi] = np.where(
            finite_lo[at_hi & ~finite_hi], AT_LOWER, FREE
        )
        if (
            basis.binv is not None
            and basis.binv.shape == (state.prep.m, state.prep.m)
            and basis.age < self.refactor_every
        ):
            # Inherit the factorised inverse from the parent solve instead of
            # paying an O(m^3) inversion per warm start.
            state.binv = basis.binv.copy()
            state.age = basis.age
            state.recompute_xb()
        elif not state.refactorize():
            return False
        state.devex[:] = 1.0
        return True

    # -- main driver --------------------------------------------------------

    def _run(self, state: _State, warm: bool) -> SimplexResult:
        prep = state.prep
        iterations = 0

        if warm:
            primal_infeas = self._primal_infeasibility(state)
            if primal_infeas <= self.feasibility_tol:
                status, iters = self._primal(state, phase1=False)
                iterations += iters
            elif self._dual_feasible(state):
                status, iters = self._dual(state)
                iterations += iters
                if status is SolveStatus.OPTIMAL:
                    # Dual simplex stops at primal feasibility; polish with a
                    # (usually zero-iteration) primal pass for safety.
                    status, iters = self._primal(state, phase1=False)
                    iterations += iters
            else:
                status, iters = self._phase1_then_2(state)
                iterations += iters
        else:
            status, iters = self._phase1_then_2(state)
            iterations += iters

        if status is not SolveStatus.OPTIMAL:
            return SimplexResult(status, None, None, iterations)

        point = state.point()
        x = point[: prep.n]
        objective = float(prep.c_ext[: prep.n] @ x)
        return SimplexResult(
            SolveStatus.OPTIMAL,
            x,
            objective,
            iterations,
            BasisState(
                state.basic.copy(),
                state.vstat.copy(),
                state.binv.copy(),
                state.age,
            ),
        )

    def _phase1_then_2(self, state: _State) -> Tuple[SolveStatus, int]:
        iterations = 0
        if self._primal_infeasibility(state) > self.feasibility_tol:
            status, iters = self._primal(state, phase1=True)
            iterations += iters
            if status is not SolveStatus.OPTIMAL:
                return status, iterations
            if self._primal_infeasibility(state) > self.feasibility_tol:
                return SolveStatus.INFEASIBLE, iterations
        status, iters = self._primal(state, phase1=False)
        return status, iterations + iters

    # -- shared pieces ------------------------------------------------------

    def _primal_infeasibility(self, state: _State) -> float:
        lb = state.lo[state.basic]
        ub = state.hi[state.basic]
        below = np.maximum(lb - state.xB, 0.0)
        above = np.maximum(state.xB - ub, 0.0)
        below[~np.isfinite(below)] = 0.0
        above[~np.isfinite(above)] = 0.0
        return float(below.sum() + above.sum())

    def _reduced_costs(self, state: _State) -> np.ndarray:
        y = state.prep.c_ext[state.basic] @ state.binv
        return state.prep.c_ext - y @ state.prep.A

    def _dual_feasible(self, state: _State) -> bool:
        r = self._reduced_costs(state)
        tol = max(self.tolerance, 1e-7)
        bad_lo = (state.vstat == AT_LOWER) & (r < -tol)
        bad_hi = (state.vstat == AT_UPPER) & (r > tol)
        bad_free = (state.vstat == FREE) & (np.abs(r) > tol)
        return not bool(np.any(bad_lo | bad_hi | bad_free))

    def _pick_entering(
        self,
        state: _State,
        r: np.ndarray,
        bland: bool,
    ) -> Tuple[int, int]:
        """Return (column, direction) of the entering variable, or (-1, 0)."""
        tol = self.tolerance
        fixed = state.lo == state.hi
        prof_lo = (state.vstat == AT_LOWER) & (r < -tol)
        prof_hi = (state.vstat == AT_UPPER) & (r > tol)
        prof_free = (state.vstat == FREE) & (np.abs(r) > tol)
        mask = (prof_lo | prof_hi | prof_free) & ~fixed
        candidates = np.nonzero(mask)[0]
        if candidates.size == 0:
            return -1, 0
        if bland or self.pricing == "bland":
            j = int(candidates[0])
        elif self.pricing == "devex":
            scores = r[candidates] ** 2 / state.devex[candidates]
            j = int(candidates[np.argmax(scores)])
        else:  # dantzig
            j = int(candidates[np.argmax(np.abs(r[candidates]))])
        if state.vstat[j] == AT_LOWER:
            direction = 1
        elif state.vstat[j] == AT_UPPER:
            direction = -1
        else:
            direction = 1 if r[j] < 0 else -1
        return j, direction

    def _eta_update(self, state: _State, row: int, alpha: np.ndarray) -> bool:
        """Rank-1 update of the basis inverse after a pivot on ``row``.

        ``state.basic``/``state.vstat`` must already reflect the new basis.
        Refactorises periodically (which also refreshes ``xB``); returns False
        when the refactorisation finds a singular basis.
        """
        piv = alpha[row]
        br = state.binv[row] / piv
        state.binv -= np.outer(alpha, br)
        state.binv[row] = br
        state.pivots += 1
        state.age += 1
        if state.age >= self.refactor_every:
            return state.refactorize()
        return True

    def _update_devex(
        self, state: _State, row: int, col: int, alpha: np.ndarray
    ) -> None:
        """Reference-framework Devex weight update (Forrest-Goldfarb)."""
        if self.pricing != "devex":
            return
        # Pivot row of the pre-pivot tableau, over all columns.
        arow = state.binv[row] @ state.prep.A
        piv = arow[col]
        if abs(piv) < _PIVOT_TOL:
            return
        ratio = (arow / piv) ** 2 * state.devex[col]
        np.maximum(state.devex, ratio, out=state.devex)
        state.devex[state.basic[row]] = max(state.devex[col] / piv**2, 1.0)

    # -- primal simplex -----------------------------------------------------

    def _primal(self, state: _State, phase1: bool) -> Tuple[SolveStatus, int]:
        """Primal iterations; phase 1 minimises the sum of bound violations."""
        prep = state.prep
        ftol = self.feasibility_tol
        bland = self.pricing == "bland"
        degenerate_run = 0

        for iteration in range(self.max_iterations):
            lb = state.lo[state.basic]
            ub = state.hi[state.basic]
            below = state.xB < lb - ftol
            above = state.xB > ub + ftol

            if phase1:
                if not (below.any() or above.any()):
                    return SolveStatus.OPTIMAL, iteration
                d = above.astype(float) - below.astype(float)
                y = d @ state.binv
                r = -(y @ prep.A)
            else:
                below[:] = False
                above[:] = False
                r = self._reduced_costs(state)

            col, direction = self._pick_entering(state, r, bland)
            if col < 0:
                if phase1:
                    # Phase-1 optimum with residual infeasibility: infeasible.
                    return (
                        SolveStatus.INFEASIBLE
                        if self._primal_infeasibility(state) > ftol
                        else SolveStatus.OPTIMAL
                    ), iteration
                return SolveStatus.OPTIMAL, iteration

            alpha = state.binv @ prep.A[:, col]
            delta = -direction * alpha  # change rate of xB per unit step

            row, step, hit = self._primal_ratio(
                state, delta, below, above, lb, ub, bland
            )
            flip = state.hi[col] - state.lo[col]
            if not math.isfinite(flip):
                flip = math.inf

            if row < 0 and not math.isfinite(flip):
                if phase1:
                    return SolveStatus.ERROR, iteration
                return SolveStatus.UNBOUNDED, iteration

            if flip <= step or row < 0:
                # Bound flip: the entering variable crosses to its other
                # bound before any basic variable blocks.
                state.xB += delta * flip
                state.vstat[col] = AT_UPPER if state.vstat[col] == AT_LOWER else AT_LOWER
                continue

            if abs(alpha[row]) < _PIVOT_TOL:
                # Numerically hostile pivot: rebuild the inverse and redo the
                # iteration with exact data.
                if not state.refactorize():
                    return SolveStatus.ERROR, iteration
                continue

            if state.vstat[col] == AT_LOWER:
                enter_value = state.lo[col] + direction * step
            elif state.vstat[col] == AT_UPPER:
                enter_value = state.hi[col] + direction * step
            else:
                enter_value = direction * step

            self._update_devex(state, row, col, alpha)
            state.xB += delta * step
            state.xB[row] = enter_value
            leaving = state.basic[row]
            state.vstat[leaving] = AT_LOWER if hit < 0 else AT_UPPER
            state.basic[row] = col
            state.vstat[col] = BASIC
            if not self._eta_update(state, row, alpha):
                return SolveStatus.ERROR, iteration

            if step <= _DEGENERATE_STEP:
                degenerate_run += 1
                if degenerate_run > _BLAND_TRIGGER:
                    bland = True
            else:
                degenerate_run = 0
                bland = self.pricing == "bland"
        return SolveStatus.ERROR, self.max_iterations

    def _primal_ratio(
        self,
        state: _State,
        delta: np.ndarray,
        below: np.ndarray,
        above: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        bland: bool,
    ) -> Tuple[int, float, int]:
        """Bounded ratio test.

        Feasible basics block at their own bounds; infeasible basics (phase 1)
        block when they reach the bound they currently violate.  Returns
        ``(row, step, hit)`` with ``hit`` -1/+1 for the lower/upper bound the
        blocking variable lands on, or ``row = -1`` when nothing blocks.
        """
        m = delta.shape[0]
        tol = self.tolerance
        steps = np.full(m, math.inf)
        hits = np.zeros(m, dtype=np.int8)
        feasible = ~(below | above)

        down = feasible & (delta < -tol)
        if down.any():
            gap = state.xB[down] - lb[down]
            steps[down] = np.where(
                np.isfinite(gap), np.maximum(gap, 0.0) / (-delta[down]), math.inf
            )
            hits[down] = -1
        up = feasible & (delta > tol)
        if up.any():
            gap = ub[up] - state.xB[up]
            steps[up] = np.where(
                np.isfinite(gap), np.maximum(gap, 0.0) / delta[up], math.inf
            )
            hits[up] = 1
        # Phase-1 extras: an infeasible basic blocks at the violated bound as
        # soon as the step would carry it back into feasibility.
        toward_lb = below & (delta > tol)
        if toward_lb.any():
            steps[toward_lb] = (lb[toward_lb] - state.xB[toward_lb]) / delta[toward_lb]
            hits[toward_lb] = -1
        toward_ub = above & (delta < -tol)
        if toward_ub.any():
            steps[toward_ub] = (state.xB[toward_ub] - ub[toward_ub]) / (
                -delta[toward_ub]
            )
            hits[toward_ub] = 1

        best = steps.min() if m else math.inf
        if not math.isfinite(best):
            return -1, math.inf, 0
        ties = np.nonzero(steps <= best + tol)[0]
        if bland:
            row = int(min(ties, key=lambda i: state.basic[i]))
        else:
            row = int(ties[np.argmax(np.abs(delta[ties]))])
        return row, float(max(steps[row], 0.0)), int(hits[row])

    # -- dual simplex -------------------------------------------------------

    def _dual(self, state: _State) -> Tuple[SolveStatus, int]:
        """Dual simplex from a dual-feasible basis; used for warm starts."""
        prep = state.prep
        ftol = self.feasibility_tol
        fixed = state.lo == state.hi
        degenerate_run = 0
        bland = False

        for iteration in range(self.max_iterations):
            lb = state.lo[state.basic]
            ub = state.hi[state.basic]
            viol_lo = np.where(np.isfinite(lb), lb - state.xB, -math.inf)
            viol_hi = np.where(np.isfinite(ub), state.xB - ub, -math.inf)
            worst_lo = float(viol_lo.max()) if viol_lo.size else -math.inf
            worst_hi = float(viol_hi.max()) if viol_hi.size else -math.inf
            if max(worst_lo, worst_hi) <= ftol:
                return SolveStatus.OPTIMAL, iteration

            leaving_low = worst_lo >= worst_hi
            row = int(np.argmax(viol_lo if leaving_low else viol_hi))

            r = self._reduced_costs(state)
            arow = state.binv[row] @ prep.A
            if leaving_low:
                # The leaving basic sits below its lower bound: pivots must
                # increase it, so admissible nonbasics push xB[row] up.
                adm = ((state.vstat == AT_LOWER) & (arow < -_PIVOT_TOL)) | (
                    (state.vstat == AT_UPPER) & (arow > _PIVOT_TOL)
                )
            else:
                adm = ((state.vstat == AT_LOWER) & (arow > _PIVOT_TOL)) | (
                    (state.vstat == AT_UPPER) & (arow < -_PIVOT_TOL)
                )
            adm |= (state.vstat == FREE) & (np.abs(arow) > _PIVOT_TOL)
            adm &= ~fixed
            candidates = np.nonzero(adm)[0]
            if candidates.size == 0:
                return SolveStatus.INFEASIBLE, iteration

            ratios = np.abs(r[candidates]) / np.abs(arow[candidates])
            if bland:
                col = int(candidates[0])
            else:
                col = int(candidates[np.argmin(ratios)])

            alpha = state.binv @ prep.A[:, col]
            if abs(alpha[row]) < _PIVOT_TOL:
                if not state.refactorize():
                    return SolveStatus.ERROR, iteration
                continue
            leaving = state.basic[row]
            state.vstat[leaving] = AT_LOWER if leaving_low else AT_UPPER
            state.basic[row] = col
            state.vstat[col] = BASIC
            if not self._eta_update(state, row, alpha):
                return SolveStatus.ERROR, iteration
            state.recompute_xb()

            dual_step = float(np.abs(r[col]) / max(abs(arow[col]), _PIVOT_TOL))
            if dual_step <= _DEGENERATE_STEP:
                degenerate_run += 1
                if degenerate_run > _BLAND_TRIGGER:
                    bland = True
            else:
                degenerate_run = 0
                bland = False
        return SolveStatus.ERROR, self.max_iterations
