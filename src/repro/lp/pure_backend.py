"""Backend wiring the pure-Python simplex and branch-and-bound solvers."""

from __future__ import annotations

from typing import Optional

from repro.lp.branch_and_bound import BranchAndBoundSolver
from repro.lp.model import StandardForm
from repro.lp.simplex import SimplexSolver
from repro.lp.solution import Solution, SolveStatus


class PureBackend:
    """Solve compiled models without scipy.

    LPs go straight to :class:`SimplexSolver`; models with integer variables
    go through :class:`BranchAndBoundSolver`.
    """

    name = "pure-python"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-6,
        max_nodes: int = 100000,
    ) -> None:
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.max_nodes = max_nodes

    def solve(self, form: StandardForm) -> Solution:
        """Solve a compiled :class:`StandardForm` and return a Solution."""
        if form.num_variables == 0:
            import numpy as np

            infeasible = form.b_ub.size > 0 and bool(np.any(form.b_ub < -1e-12))
            infeasible = infeasible or (
                form.b_eq.size > 0 and bool(np.any(np.abs(form.b_eq) > 1e-12))
            )
            if infeasible:
                return Solution(SolveStatus.INFEASIBLE, backend=self.name)
            objective = -form.c0 if form.maximize else form.c0
            return Solution(
                SolveStatus.OPTIMAL, objective=objective, values={}, backend=self.name
            )

        if form.has_integers:
            solver = BranchAndBoundSolver(
                max_nodes=self.max_nodes,
                mip_gap=self.mip_gap,
                time_limit=self.time_limit,
            )
            result = solver.solve(
                form.c,
                form.a_ub,
                form.b_ub,
                form.a_eq,
                form.b_eq,
                form.lower,
                form.upper,
                form.integer_mask,
            )
            x = result.x
            objective = result.objective
            iterations = result.nodes_explored
        else:
            simplex = SimplexSolver()
            lp_result = simplex.solve(
                form.c,
                form.a_ub,
                form.b_ub,
                form.a_eq,
                form.b_eq,
                form.lower,
                form.upper,
            )
            result = lp_result
            x = lp_result.x
            objective = lp_result.objective
            iterations = lp_result.iterations

        if result.status is not SolveStatus.OPTIMAL or x is None:
            return Solution(result.status, backend=self.name, iterations=iterations)

        values = {var: float(x[i]) for i, var in enumerate(form.variables)}
        raw = float(objective) + form.c0
        signed = -raw if form.maximize else raw
        return Solution(
            SolveStatus.OPTIMAL,
            objective=signed,
            values=values,
            backend=self.name,
            iterations=iterations,
        )
