"""Backend wiring the pure-Python revised simplex and branch-and-bound solvers."""

from __future__ import annotations

from typing import Optional

from repro.lp.branch_and_bound import BranchAndBoundSolver
from repro.lp.model import StandardForm
from repro.lp.revised_simplex import BasisState, RevisedSimplexSolver
from repro.lp.solution import Solution, SolveStatus


class PureBackend:
    """Solve compiled models without scipy.

    LPs go straight to :class:`RevisedSimplexSolver`; models with integer
    variables go through :class:`BranchAndBoundSolver`.  Both accept an
    optional warm-start basis from a previous solve of a structurally
    identical model, and the returned :class:`Solution` carries the final
    basis so callers can chain solves (branch-and-bound does this per node
    internally; the MIN_EFF_CYC Pareto walk does it across MILPs).
    """

    name = "pure-python"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-6,
        max_nodes: int = 100000,
        warm_start: bool = True,
    ) -> None:
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.max_nodes = max_nodes
        self.warm_start = warm_start

    def solve(
        self, form: StandardForm, warm_basis: Optional[BasisState] = None
    ) -> Solution:
        """Solve a compiled :class:`StandardForm` and return a Solution."""
        if form.num_variables == 0:
            import numpy as np

            infeasible = form.b_ub.size > 0 and bool(np.any(form.b_ub < -1e-12))
            infeasible = infeasible or (
                form.b_eq.size > 0 and bool(np.any(np.abs(form.b_eq) > 1e-12))
            )
            if infeasible:
                return Solution(SolveStatus.INFEASIBLE, backend=self.name)
            objective = -form.c0 if form.maximize else form.c0
            return Solution(
                SolveStatus.OPTIMAL, objective=objective, values={}, backend=self.name
            )

        nodes = 0
        basis = None
        if form.has_integers:
            solver = BranchAndBoundSolver(
                max_nodes=self.max_nodes,
                mip_gap=self.mip_gap,
                time_limit=self.time_limit,
                warm_start=self.warm_start,
            )
            result = solver.solve(
                form.c,
                form.a_ub,
                form.b_ub,
                form.a_eq,
                form.b_eq,
                form.lower,
                form.upper,
                form.integer_mask,
                basis=warm_basis if self.warm_start else None,
                prep=form.prepared_lp(),
            )
            x = result.x
            objective = result.objective
            iterations = result.lp_iterations
            nodes = result.nodes_explored
            basis = result.basis
        else:
            simplex = RevisedSimplexSolver()
            lp_result = simplex.solve_prepared(
                form.prepared_lp(),
                form.lower,
                form.upper,
                basis=warm_basis if self.warm_start else None,
            )
            result = lp_result
            x = lp_result.x
            objective = lp_result.objective
            iterations = lp_result.iterations
            basis = lp_result.basis

        if result.status is not SolveStatus.OPTIMAL or x is None:
            return Solution(
                result.status,
                backend=self.name,
                iterations=iterations,
                nodes=nodes,
                basis=basis,
            )

        values = {var: float(x[i]) for i, var in enumerate(form.variables)}
        raw = float(objective) + form.c0
        signed = -raw if form.maximize else raw
        return Solution(
            SolveStatus.OPTIMAL,
            objective=signed,
            values=values,
            backend=self.name,
            iterations=iterations,
            nodes=nodes,
            basis=basis,
        )
