"""Linear constraints for the LP/MILP modelling layer."""

from __future__ import annotations

import enum
from typing import Mapping

from repro.lp.expression import LinExpr, Variable


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0``.

    Internally every constraint is stored in homogeneous form: an affine
    expression compared against zero.  The more familiar ``lhs <= rhs`` view
    is recovered through :attr:`lhs` (variable terms) and :attr:`rhs`
    (negated constant).
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: ConstraintSense, name: str = "") -> None:
        if not isinstance(expr, LinExpr):
            expr = LinExpr.from_value(expr)
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def lhs(self) -> LinExpr:
        """Variable part of the constraint (constant removed)."""
        return LinExpr(self.expr.terms, 0.0)

    @property
    def rhs(self) -> float:
        """Right-hand side constant of the ``lhs sense rhs`` view."""
        return -self.expr.constant

    def with_name(self, name: str) -> "Constraint":
        """Return the same constraint labelled with ``name``."""
        return Constraint(self.expr, self.sense, name)

    def is_trivially_feasible(self) -> bool:
        """True if the constraint has no variables and already holds."""
        if self.expr.terms:
            return False
        value = self.expr.constant
        if self.sense is ConstraintSense.LE:
            return value <= 1e-12
        if self.sense is ConstraintSense.GE:
            return value >= -1e-12
        return abs(value) <= 1e-12

    def is_trivially_infeasible(self) -> bool:
        """True if the constraint has no variables and cannot hold."""
        return not self.expr.terms and not self.is_trivially_feasible()

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """Return how much the constraint is violated under ``assignment``.

        A non-positive value (within solver tolerance) means the constraint is
        satisfied.
        """
        value = self.expr.evaluate(assignment)
        if self.sense is ConstraintSense.LE:
            return value
        if self.sense is ConstraintSense.GE:
            return -value
        return abs(value)

    def is_satisfied(
        self, assignment: Mapping[Variable, float], tolerance: float = 1e-6
    ) -> bool:
        """Check the constraint under ``assignment`` with a tolerance."""
        return self.violation(assignment) <= tolerance

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Constraint({self.lhs!r} {self.sense.value} {self.rhs:g}{label})"
