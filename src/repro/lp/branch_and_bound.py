"""Branch and bound on top of the revised simplex solver.

Used by :class:`repro.lp.pure_backend.PureBackend` to solve the MILPs of the
retiming-and-recycling formulations when scipy/HiGHS is not available, and by
the test-suite to cross-check the scipy backend on small instances.

The constraint matrix is prepared once (:class:`repro.lp.revised_simplex.
PreparedLP`) and every node re-solves the relaxation under its own bound
vectors.  Child nodes warm-start from the parent's optimal basis: tightening
one integer bound keeps the basis dual feasible, so the dual simplex usually
restores optimality in a handful of pivots instead of a full cold solve.

Search order is *plunging* best-first: after branching, the child whose bound
is better is processed immediately (a depth-first dive that reaches integer
feasibility — and therefore a pruning incumbent — quickly), while the other
child goes on the best-first heap.  A fix-and-solve rounding heuristic at the
root fixes every integer variable to its rounded relaxation value and
re-solves the continuous rest, which on the retiming models often produces a
strong incumbent for the price of one warm-started LP.

Branching uses *strong branching*: both children of the most promising
fractional candidates are actually solved (cheap, since each is a
warm-started dual-simplex re-solve of the parent) and the variable whose
worst child bound is largest wins; its two child solves are then reused as
the real children.  On the weak LP relaxations of the MAX_THR models this
shrinks the tree by an order of magnitude, which is worth far more than the
extra relaxations per node.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.lp.revised_simplex import (
    BasisState,
    PreparedLP,
    RevisedSimplexSolver,
    SimplexResult,
)
from repro.lp.solution import SolveStatus

_INTEGRALITY_TOL = 1e-6


@dataclass
class _Node:
    """A branch-and-bound node: the LP relaxation with tightened bounds."""

    lower: np.ndarray
    upper: np.ndarray
    depth: int
    basis: Optional[BasisState] = None


@dataclass
class MilpResult:
    """Outcome of a branch-and-bound solve.

    Attributes:
        status: OPTIMAL, INFEASIBLE, UNBOUNDED or ERROR.
        x: Incumbent point (``None`` unless optimal).
        objective: Incumbent objective value.
        nodes_explored: Number of LP relaxations solved.
        lp_iterations: Total simplex iterations summed over every node, the
            number that warm starts are meant to shrink.
        basis: Optimal basis of the *root* relaxation, reusable to warm-start
            the next MILP of the same shape (e.g. the Pareto walk).
    """

    status: SolveStatus
    x: Optional[np.ndarray]
    objective: Optional[float]
    nodes_explored: int = 0
    lp_iterations: int = 0
    basis: Optional[BasisState] = None


class BranchAndBoundSolver:
    """Minimise ``c @ x`` subject to linear constraints with integer variables.

    The search is best-first on the relaxation bound.  Branching selects the
    integer variable whose fractional part is closest to 0.5 (most-fractional
    rule), which works well on the small retiming models this repository
    produces.

    Args:
        max_nodes: Node budget before giving up.
        mip_gap: Relative gap below which a node is fathomed.
        time_limit: Optional wall-clock limit in seconds.
        simplex: LP engine to use; defaults to a fresh
            :class:`RevisedSimplexSolver` with Devex pricing (which lands on
            markedly better-branching vertices than Dantzig on the retiming
            models).
        warm_start: Re-solve child nodes from the parent basis (dual simplex)
            instead of cold-starting.  Disable only for measurements.
        strong_branching: Number of fractional candidates whose children are
            solved before committing to a branching variable (0 disables
            strong branching and falls back to most-fractional).
    """

    def __init__(
        self,
        max_nodes: int = 100000,
        mip_gap: float = 1e-6,
        time_limit: Optional[float] = None,
        simplex: Optional[RevisedSimplexSolver] = None,
        warm_start: bool = True,
        strong_branching: int = 4,
    ) -> None:
        self.max_nodes = max_nodes
        self.mip_gap = mip_gap
        self.time_limit = time_limit
        self.simplex = simplex or RevisedSimplexSolver(pricing="devex")
        self.warm_start = warm_start
        self.strong_branching = strong_branching

    def solve(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        integer_mask: np.ndarray,
        basis: Optional[BasisState] = None,
        prep: Optional[PreparedLP] = None,
    ) -> MilpResult:
        """Solve the MILP; arguments match :class:`StandardForm` fields.

        ``basis`` optionally warm-starts the root relaxation (useful when a
        structurally identical MILP was just solved with different bounds);
        ``prep`` optionally reuses an already-assembled constraint matrix.
        """
        c = np.asarray(c, dtype=float)
        integer_mask = np.asarray(integer_mask, dtype=bool)
        start = time.monotonic()
        if prep is None:
            prep = PreparedLP(c, a_ub, b_ub, a_eq, b_eq)
        lp_iterations = 0

        def relax(node: _Node) -> SimplexResult:
            seed = node.basis if self.warm_start else None
            return self.simplex.solve_prepared(
                prep, node.lower, node.upper, basis=seed
            )

        root = _Node(
            np.array(lower, dtype=float), np.array(upper, dtype=float), 0, basis
        )
        root_result = relax(root)
        lp_iterations += root_result.iterations
        if root_result.status is SolveStatus.INFEASIBLE:
            return MilpResult(SolveStatus.INFEASIBLE, None, None, 1, lp_iterations)
        if root_result.status is SolveStatus.UNBOUNDED:
            return MilpResult(SolveStatus.UNBOUNDED, None, None, 1, lp_iterations)
        if root_result.status is not SolveStatus.OPTIMAL:
            return MilpResult(SolveStatus.ERROR, None, None, 1, lp_iterations)
        root_basis = root_result.basis

        counter = itertools.count()
        heap: list = []
        best_x: Optional[np.ndarray] = None
        best_objective = math.inf
        nodes = 1

        # Fix-and-solve rounding heuristic: fix the integers to their rounded
        # root values, re-solve the continuous remainder from the root basis.
        rounded, extra_iters = self._fix_and_solve(
            prep, root, root_result, integer_mask
        )
        lp_iterations += extra_iters
        if rounded is not None:
            nodes += 1
            best_objective, best_x = rounded

        def cutoff() -> float:
            if not math.isfinite(best_objective):
                return math.inf
            return best_objective - self.mip_gap * max(1.0, abs(best_objective))

        current: Optional[tuple] = (root_result.objective, root, root_result)
        while True:
            if current is None:
                while heap:
                    bound, _, node, result = heapq.heappop(heap)
                    if bound < cutoff():
                        current = (bound, node, result)
                        break
                if current is None:
                    break
            bound, node, result = current
            current = None
            if bound >= cutoff():
                continue
            if nodes >= self.max_nodes:
                break
            if self.time_limit is not None and time.monotonic() - start > self.time_limit:
                break

            x = result.x
            candidates = self._fractional_candidates(x, integer_mask)
            if not candidates:
                # Integer feasible point.
                if result.objective < best_objective - 1e-12:
                    best_objective = result.objective
                    best_x = self._rounded(x, integer_mask)
                continue

            # Strong branching: solve both children of the leading candidates
            # and commit to the variable whose *worst* child bound is largest
            # (most pruning power).  The winning children are reused below.
            limit = max(1, self.strong_branching)
            best_children = None
            best_score = -math.inf
            fathomed = False
            for index, value in candidates[:limit]:
                floor_value = math.floor(value)
                children = []
                child_bounds = []
                for branch in ("down", "up"):
                    child_lower = node.lower.copy()
                    child_upper = node.upper.copy()
                    if branch == "down":
                        child_upper[index] = min(child_upper[index], floor_value)
                    else:
                        child_lower[index] = max(child_lower[index], floor_value + 1)
                    if child_lower[index] > child_upper[index] + 1e-12:
                        child_bounds.append(math.inf)
                        continue
                    child = _Node(
                        child_lower, child_upper, node.depth + 1, result.basis
                    )
                    child_result = relax(child)
                    nodes += 1
                    lp_iterations += child_result.iterations
                    if child_result.status is not SolveStatus.OPTIMAL:
                        child_bounds.append(math.inf)
                        continue
                    child_bounds.append(child_result.objective)
                    if child_result.objective < cutoff():
                        children.append(
                            (child_result.objective, child, child_result)
                        )
                if not children:
                    # Both children pruned or infeasible: this dichotomy
                    # proves no improving solution exists in the node.
                    fathomed = True
                    break
                score = min(child_bounds)
                if score > best_score:
                    best_score = score
                    best_children = children
                if nodes >= self.max_nodes:
                    break

            if fathomed or best_children is None:
                continue
            # Plunge into the more promising child; park the other.
            best_children.sort(key=lambda entry: entry[0])
            current = best_children[0]
            for entry in best_children[1:]:
                heapq.heappush(heap, (entry[0], next(counter), entry[1], entry[2]))

        if best_x is None:
            # Exhausted the tree without an integer point; if we stopped early
            # report an error, otherwise the instance is integer-infeasible.
            if nodes >= self.max_nodes or (
                self.time_limit is not None
                and time.monotonic() - start > self.time_limit
            ):
                return MilpResult(
                    SolveStatus.ERROR, None, None, nodes, lp_iterations, root_basis
                )
            return MilpResult(
                SolveStatus.INFEASIBLE, None, None, nodes, lp_iterations, root_basis
            )
        return MilpResult(
            SolveStatus.OPTIMAL,
            best_x,
            best_objective,
            nodes,
            lp_iterations,
            root_basis,
        )

    def _fix_and_solve(
        self,
        prep: PreparedLP,
        root: _Node,
        root_result: SimplexResult,
        integer_mask: np.ndarray,
    ):
        """Try rounding the root relaxation into an incumbent.

        Fixes every integer variable to its rounded root value and re-solves
        the continuous remainder (warm-started from the root basis).  Returns
        ``((objective, x), iterations)`` on success, ``(None, iterations)``
        otherwise.
        """
        if not integer_mask.any():
            return None, 0
        fixed = np.round(root_result.x[integer_mask])
        lower = root.lower.copy()
        upper = root.upper.copy()
        lo_int = lower[integer_mask]
        hi_int = upper[integer_mask]
        fixed = np.clip(fixed, lo_int, hi_int)
        lower[integer_mask] = fixed
        upper[integer_mask] = fixed
        seed = root_result.basis if self.warm_start else None
        result = self.simplex.solve_prepared(prep, lower, upper, basis=seed)
        if result.status is not SolveStatus.OPTIMAL:
            return None, result.iterations
        return (result.objective, self._rounded(result.x, integer_mask)), result.iterations

    @staticmethod
    def _fractional_candidates(x: np.ndarray, integer_mask: np.ndarray):
        """Fractional integer variables, most fractional (closest to .5) first."""
        scored = []
        for i in np.nonzero(integer_mask)[0]:
            value = float(x[i])
            frac = abs(value - round(value))
            if frac <= _INTEGRALITY_TOL:
                continue
            score = min(value - math.floor(value), math.ceil(value) - value)
            scored.append((score, int(i), value))
        scored.sort(reverse=True)
        return [(index, value) for _, index, value in scored]

    @staticmethod
    def _rounded(x: np.ndarray, integer_mask: np.ndarray) -> np.ndarray:
        out = np.array(x, dtype=float)
        out[integer_mask] = np.round(out[integer_mask])
        return out
