"""Best-first branch and bound on top of the pure simplex solver.

Used by :class:`repro.lp.pure_backend.PureBackend` to solve the MILPs of the
retiming-and-recycling formulations when scipy/HiGHS is not available, and by
the test-suite to cross-check the scipy backend on small instances.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.lp.simplex import SimplexResult, SimplexSolver
from repro.lp.solution import SolveStatus

_INTEGRALITY_TOL = 1e-6


@dataclass
class _Node:
    """A branch-and-bound node: the LP relaxation with tightened bounds."""

    lower: np.ndarray
    upper: np.ndarray
    depth: int


@dataclass
class MilpResult:
    """Outcome of a branch-and-bound solve."""

    status: SolveStatus
    x: Optional[np.ndarray]
    objective: Optional[float]
    nodes_explored: int = 0


class BranchAndBoundSolver:
    """Minimise ``c @ x`` subject to linear constraints with integer variables.

    The search is best-first on the relaxation bound.  Branching selects the
    integer variable whose fractional part is closest to 0.5 (most-fractional
    rule), which works well on the small retiming models this repository
    produces.
    """

    def __init__(
        self,
        max_nodes: int = 100000,
        mip_gap: float = 1e-6,
        time_limit: Optional[float] = None,
        simplex: Optional[SimplexSolver] = None,
    ) -> None:
        self.max_nodes = max_nodes
        self.mip_gap = mip_gap
        self.time_limit = time_limit
        self.simplex = simplex or SimplexSolver()

    def solve(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        integer_mask: np.ndarray,
    ) -> MilpResult:
        """Solve the MILP; arguments match :class:`StandardForm` fields."""
        c = np.asarray(c, dtype=float)
        integer_mask = np.asarray(integer_mask, dtype=bool)
        start = time.monotonic()

        def relax(node: _Node) -> SimplexResult:
            return self.simplex.solve(
                c, a_ub, b_ub, a_eq, b_eq, node.lower, node.upper
            )

        root = _Node(np.array(lower, dtype=float), np.array(upper, dtype=float), 0)
        root_result = relax(root)
        if root_result.status is SolveStatus.INFEASIBLE:
            return MilpResult(SolveStatus.INFEASIBLE, None, None, 1)
        if root_result.status is SolveStatus.UNBOUNDED:
            return MilpResult(SolveStatus.UNBOUNDED, None, None, 1)
        if root_result.status is not SolveStatus.OPTIMAL:
            return MilpResult(SolveStatus.ERROR, None, None, 1)

        counter = itertools.count()
        heap = [(root_result.objective, next(counter), root, root_result)]
        best_x: Optional[np.ndarray] = None
        best_objective = math.inf
        nodes = 1

        while heap:
            bound, _, node, result = heapq.heappop(heap)
            if bound >= best_objective - self.mip_gap * max(1.0, abs(best_objective)):
                continue
            if nodes >= self.max_nodes:
                break
            if self.time_limit is not None and time.monotonic() - start > self.time_limit:
                break

            x = result.x
            fractional = self._most_fractional(x, integer_mask)
            if fractional is None:
                # Integer feasible point.
                if result.objective < best_objective - 1e-12:
                    best_objective = result.objective
                    best_x = self._rounded(x, integer_mask)
                continue

            index, value = fractional
            floor_value = math.floor(value)
            for branch in ("down", "up"):
                child_lower = node.lower.copy()
                child_upper = node.upper.copy()
                if branch == "down":
                    child_upper[index] = min(child_upper[index], floor_value)
                else:
                    child_lower[index] = max(child_lower[index], floor_value + 1)
                if child_lower[index] > child_upper[index] + 1e-12:
                    continue
                child = _Node(child_lower, child_upper, node.depth + 1)
                child_result = relax(child)
                nodes += 1
                if child_result.status is not SolveStatus.OPTIMAL:
                    continue
                if child_result.objective >= best_objective - 1e-12:
                    continue
                heapq.heappush(
                    heap,
                    (child_result.objective, next(counter), child, child_result),
                )

        if best_x is None:
            # Exhausted the tree without an integer point; if we stopped early
            # report an error, otherwise the instance is integer-infeasible.
            if nodes >= self.max_nodes or (
                self.time_limit is not None
                and time.monotonic() - start > self.time_limit
            ):
                return MilpResult(SolveStatus.ERROR, None, None, nodes)
            return MilpResult(SolveStatus.INFEASIBLE, None, None, nodes)
        return MilpResult(SolveStatus.OPTIMAL, best_x, best_objective, nodes)

    @staticmethod
    def _most_fractional(x: np.ndarray, integer_mask: np.ndarray):
        best_index = None
        best_score = -1.0
        for i in np.nonzero(integer_mask)[0]:
            value = x[i]
            frac = abs(value - round(value))
            if frac <= _INTEGRALITY_TOL:
                continue
            score = min(value - math.floor(value), math.ceil(value) - value)
            if score > best_score:
                best_score = score
                best_index = int(i)
        if best_index is None:
            return None
        return best_index, float(x[best_index])

    @staticmethod
    def _rounded(x: np.ndarray, integer_mask: np.ndarray) -> np.ndarray:
        out = np.array(x, dtype=float)
        out[integer_mask] = np.round(out[integer_mask])
        return out
