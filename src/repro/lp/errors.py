"""Exception hierarchy for the LP/MILP substrate."""


class LPError(Exception):
    """Base class for all errors raised by :mod:`repro.lp`."""


class ModelError(LPError):
    """Raised when a model is built incorrectly.

    Examples: adding a variable that belongs to another model, constraining
    an expression with no variables, or requesting the value of a variable
    that is not part of the solved model.
    """


class SolverError(LPError):
    """Raised when a backend fails for a reason other than infeasibility."""


class InfeasibleError(LPError):
    """Raised by convenience APIs when a model is proven infeasible."""


class UnboundedError(LPError):
    """Raised by convenience APIs when a model is proven unbounded."""
