"""Profiling views over recorded span trees.

Turns the flat span dicts produced by :mod:`repro.obs.trace` into:

* a sorted self-time table (wall, CPU, call counts per span name) for
  ``repro trace show`` and the ``--profile`` flag, and
* a Chrome-trace-format JSON document (``chrome://tracing`` /
  ``ui.perfetto.dev``) with complete ``ph: "X"`` events.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.trace import assemble_tree


def self_times(spans: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate spans by name into self-time rows, longest first.

    Self time is a span's wall time minus the wall time of its direct
    children (clamped at zero — children recorded from other processes
    can overlap the parent's clock slightly).
    """

    child_seconds: Dict[str, float] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + float(
                record.get("seconds") or 0.0
            )
    rows: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        name = str(record.get("name") or "?")
        row = rows.setdefault(
            name,
            {"name": name, "calls": 0, "wall": 0.0, "self": 0.0, "cpu": 0.0},
        )
        wall = float(record.get("seconds") or 0.0)
        row["calls"] += 1
        row["wall"] += wall
        row["self"] += max(0.0, wall - child_seconds.get(record.get("span_id", ""), 0.0))
        row["cpu"] += float(record.get("cpu_seconds") or 0.0)
    return sorted(rows.values(), key=lambda row: (-row["self"], row["name"]))


def format_profile(spans: Sequence[Mapping[str, Any]]) -> str:
    """Render the self-time table as aligned text."""

    rows = self_times(spans)
    if not rows:
        return "(no spans recorded)"
    headers = ("span", "calls", "wall s", "self s", "cpu s")
    cells = [
        (
            row["name"],
            str(row["calls"]),
            f"{row['wall']:.4f}",
            f"{row['self']:.4f}",
            f"{row['cpu']:.4f}",
        )
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in cells))
        for i in range(len(headers))
    ]
    def fmt(line: Sequence[str]) -> str:
        parts = [line[0].ljust(widths[0])]
        parts.extend(line[i].rjust(widths[i]) for i in range(1, len(line)))
        return "  ".join(parts)
    out = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    out.extend(fmt(line) for line in cells)
    return "\n".join(out)


def format_tree(spans: Sequence[Mapping[str, Any]]) -> str:
    """Render the span forest with indentation, durations, annotations."""

    roots = assemble_tree(list(spans))
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []

    def walk(node: Mapping[str, Any], depth: int) -> None:
        ann = node.get("annotations") or {}
        extras = " ".join(f"{key}={ann[key]}" for key in sorted(ann))
        line = "{}{}  {:.4f}s  [{}]".format(
            "  " * depth, node.get("name"), float(node.get("seconds") or 0.0),
            node.get("span_id"),
        )
        if extras:
            line += "  " + extras
        lines.append(line)
        for child in node.get("children", []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def chrome_trace(spans: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert spans to the Chrome trace event format (complete events)."""

    events: List[Dict[str, Any]] = []
    for record in sorted(
        spans, key=lambda r: (float(r.get("started_unix") or 0.0), str(r.get("span_id")))
    ):
        events.append(
            {
                "name": record.get("name"),
                "ph": "X",
                "ts": round(float(record.get("started_unix") or 0.0) * 1e6, 3),
                "dur": round(float(record.get("seconds") or 0.0) * 1e6, 3),
                "pid": record.get("pid", 0),
                "tid": record.get("pid", 0),
                "args": {
                    "trace_id": record.get("trace_id"),
                    "span_id": record.get("span_id"),
                    "parent_id": record.get("parent_id"),
                    **(record.get("annotations") or {}),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Any, spans: Sequence[Mapping[str, Any]]
) -> Path:
    """Write the Chrome-trace JSON artifact and return its path."""

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(spans), indent=2), encoding="utf-8")
    return target
