"""Request tracing: contextvars-scoped spans with deterministic ids.

A *trace* follows one logical request (a CLI run, a service submit) across
every layer it touches; a *span* is one timed operation inside it (queue
wait, pipeline job, optimize stage, kernel batch, ...).  Spans carry:

* ``trace_id`` — opaque hex string minted once at the edge (client or CLI)
  and propagated verbatim via the ``x-repro-trace`` request field.
* ``span_id`` — hash-derived from ``(trace_id, parent_id, name, index)``
  through :func:`repro.seeding.derive_seed`, so chaos/replay tests see the
  same ids for the same request shape (no wall-clock or RNG involved).
* monotonic wall time (``time.perf_counter``) and CPU time
  (``time.process_time``), plus free-form ``annotations``.

Completed spans land in a bounded in-memory ring (queried by the
``/trace/<id>`` endpoints and ``--profile``) and, when a sink is
configured, are appended as single JSONL lines next to the artifact store
so fleet workers sharing a store directory contribute to one file.

Tracing is strictly observational: span ids and trace ids never enter
cache keys, canonical specs, or stored payloads.  When no trace is active
every hook here is a cheap no-op.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.seeding import derive_seed

# The top-level JSON field used to propagate "<trace_id>/<parent_span_id>"
# on service requests.  Stray body fields are ignored by request preparers,
# so old servers tolerate it and it can never reach a cache key.
TRACE_FIELD = "x-repro-trace"

# Bounded ring of completed span dicts (process-wide).
RING_CAPACITY = 4096

_MAX_ID_CHARS = 64


class Span:
    """One timed operation within a trace.

    Mutable while open; closed exactly once, at which point it is recorded
    to the ring (and sink).  Truthy, so call sites can guard expensive
    annotation computation with ``if span:``.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "started_unix",
        "annotations",
        "_start",
        "_cpu_start",
        "seconds",
        "cpu_seconds",
        "_children",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started_unix = time.time()
        self.annotations: Dict[str, Any] = {}
        self._start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.seconds = 0.0
        self.cpu_seconds = 0.0
        self._children = 0

    def __bool__(self) -> bool:
        return True

    def annotate(self, **fields: Any) -> None:
        """Attach observability metadata (never read by computation)."""

        self.annotations.update(fields)

    def next_child_id(self, name: str) -> str:
        index = self._children
        self._children += 1
        return derive_span_id(self.trace_id, self.span_id, name, index)

    def close(self) -> None:
        self.seconds = time.perf_counter() - self._start
        self.cpu_seconds = time.process_time() - self._cpu_start

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_unix": round(self.started_unix, 6),
            "seconds": round(self.seconds, 9),
            "cpu_seconds": round(self.cpu_seconds, 9),
            "pid": os.getpid(),
        }
        if self.annotations:
            record["annotations"] = self.annotations
        return record


class _NullSpan:
    """Falsy stand-in yielded when no trace is active; every hook no-ops."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        return None


NULL_SPAN = _NullSpan()

_current_span: ContextVar[Optional[Span]] = ContextVar("repro-obs-span", default=None)

_ring_lock = threading.Lock()
_ring: deque = deque(maxlen=RING_CAPACITY)
_sink_path: Optional[Path] = None


def new_trace_id(seed: Optional[int] = None, *labels: Any) -> str:
    """Mint a trace id: random by default, derived when a seed is given.

    Passing a seed makes trace ids reproducible for deterministic tests;
    production edges use the random form so concurrent clients never
    collide.
    """

    if seed is not None:
        return format(derive_seed(seed, "trace", *labels), "08x")
    return uuid.uuid4().hex[:16]


def derive_span_id(trace_id: str, parent_id: str, name: str, index: int) -> str:
    """Hash-derive a span id; stable for a given position in the tree."""

    return format(derive_seed(0, "span", trace_id, parent_id, name, index), "08x")


def valid_trace_ref(value: Any) -> bool:
    """Validate an ``x-repro-trace`` value: ``trace_id[/parent_span_id]``."""

    if not isinstance(value, str) or not value or len(value) > 2 * _MAX_ID_CHARS + 1:
        return False
    parts = value.split("/")
    if len(parts) > 2:
        return False
    for part in parts:
        if not part or len(part) > _MAX_ID_CHARS:
            return False
        if not all(ch.isalnum() or ch in "._-" for ch in part):
            return False
    return True


def parse_trace_ref(value: str) -> tuple[str, Optional[str]]:
    """Split a validated trace ref into ``(trace_id, parent_span_id)``."""

    trace_id, _, parent = value.partition("/")
    return trace_id, (parent or None)


def format_trace_ref(trace_id: str, span_id: Optional[str]) -> str:
    return f"{trace_id}/{span_id}" if span_id else trace_id


def current_span() -> Optional[Span]:
    return _current_span.get()


def current_trace_id() -> Optional[str]:
    active = _current_span.get()
    return active.trace_id if active is not None else None


def current_span_id() -> Optional[str]:
    active = _current_span.get()
    return active.span_id if active is not None else None


def current_context() -> Optional[str]:
    """The ``trace_id/span_id`` propagation ref for the active span."""

    active = _current_span.get()
    if active is None:
        return None
    return format_trace_ref(active.trace_id, active.span_id)


@contextmanager
def start_trace(
    name: str,
    trace_id: Optional[str] = None,
    parent_span_id: Optional[str] = None,
) -> Iterator[Span]:
    """Open a root span, minting a trace id unless one is propagated in."""

    tid = trace_id or new_trace_id()
    root = Span(
        trace_id=tid,
        span_id=derive_span_id(tid, parent_span_id or "", name, 0),
        parent_id=parent_span_id,
        name=name,
    )
    token = _current_span.set(root)
    try:
        yield root
    finally:
        _current_span.reset(token)
        root.close()
        record_raw(root.to_dict())


@contextmanager
def maybe_trace(
    trace_ref: Optional[str],
    name: str,
) -> Iterator[Any]:
    """Open a trace scope from a propagated ref, or no-op when absent.

    Used at process boundaries (service worker threads, fleet workers)
    where the caller's contextvars do not flow across.
    """

    if not trace_ref or not valid_trace_ref(trace_ref):
        yield NULL_SPAN
        return
    trace_id, parent = parse_trace_ref(trace_ref)
    with start_trace(name, trace_id=trace_id, parent_span_id=parent) as root:
        yield root


@contextmanager
def span(name: str, **annotations: Any) -> Iterator[Any]:
    """Open a child span under the active trace; no-op without one."""

    parent = _current_span.get()
    if parent is None:
        yield NULL_SPAN
        return
    child = Span(
        trace_id=parent.trace_id,
        span_id=parent.next_child_id(name),
        parent_id=parent.span_id,
        name=name,
    )
    if annotations:
        child.annotations.update(annotations)
    token = _current_span.set(child)
    try:
        yield child
    finally:
        _current_span.reset(token)
        child.close()
        record_raw(child.to_dict())


def record_span(name: str, seconds: float, **annotations: Any) -> Optional[Dict[str, Any]]:
    """Record a completed child span with an externally measured duration.

    Used where the timed work ran somewhere contextvars cannot reach —
    e.g. sharded pipeline jobs whose wall time is reported back by the
    ``ProcessPoolExecutor`` worker.
    """

    parent = _current_span.get()
    if parent is None:
        return None
    record: Dict[str, Any] = {
        "trace_id": parent.trace_id,
        "span_id": parent.next_child_id(name),
        "parent_id": parent.span_id,
        "name": name,
        "started_unix": round(time.time() - seconds, 6),
        "seconds": round(float(seconds), 9),
        "cpu_seconds": 0.0,
        "pid": os.getpid(),
    }
    if annotations:
        record["annotations"] = dict(annotations)
    record_raw(record)
    return record


def finish_span_record(
    trace_id: str,
    span_id: str,
    parent_id: Optional[str],
    name: str,
    started_unix: float,
    seconds: float,
    **annotations: Any,
) -> Dict[str, Any]:
    """Record a completed span with explicit ids and timing.

    Event-loop components (broker, fleet router) time requests with their
    own clocks and mint span ids up front for propagation; this records
    the finished span without touching the contextvar stack.
    """

    record: Dict[str, Any] = {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "started_unix": round(started_unix, 6),
        "seconds": round(max(0.0, float(seconds)), 9),
        "cpu_seconds": 0.0,
        "pid": os.getpid(),
    }
    if annotations:
        record["annotations"] = {k: v for k, v in annotations.items() if v is not None}
    record_raw(record)
    return record


def record_raw(record: Dict[str, Any]) -> None:
    """Append a completed span dict to the ring and the sink, if any."""

    with _ring_lock:
        _ring.append(record)
        sink = _sink_path
    if sink is not None:
        try:
            with open(sink, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass  # observability must never take down the request path


def ring_spans(trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
    with _ring_lock:
        records = list(_ring)
    if trace_id is None:
        return records
    return [record for record in records if record.get("trace_id") == trace_id]


def clear_ring() -> None:
    with _ring_lock:
        _ring.clear()


def set_trace_sink(path: Optional[os.PathLike] = None) -> Optional[Path]:
    """Point the JSONL sink at ``path`` (``None`` disables); returns it.

    Lines are appended with small single ``write`` calls, so multiple
    fleet workers sharing one store directory can target the same file.
    """

    global _sink_path
    with _ring_lock:
        if path is None:
            _sink_path = None
        else:
            _sink_path = Path(path)
            _sink_path.parent.mkdir(parents=True, exist_ok=True)
        return _sink_path


def trace_sink_path() -> Optional[Path]:
    with _ring_lock:
        return _sink_path


def store_sink_path(store_root: os.PathLike) -> Path:
    """Canonical sink location next to an artifact store root."""

    return Path(store_root) / "traces" / "spans.jsonl"


def read_sink(path: os.PathLike, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
    """Load spans from a JSONL sink, optionally filtered by trace id."""

    records: List[Dict[str, Any]] = []
    sink = Path(path)
    if not sink.exists():
        return records
    with open(sink, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn line from a concurrent append
            if trace_id is None or record.get("trace_id") == trace_id:
                records.append(record)
    return records


def assemble_tree(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest span dicts into forests via parent ids; roots sorted by start.

    Unknown parents (span evicted from the ring, foreign process) leave
    the child as a root rather than dropping it.
    """

    by_id: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        entry = dict(record)
        entry["children"] = []
        by_id[entry["span_id"]] = entry
    roots: List[Dict[str, Any]] = []
    for entry in by_id.values():
        parent = by_id.get(entry.get("parent_id") or "")
        if parent is not None and parent is not entry:
            parent["children"].append(entry)
        else:
            roots.append(entry)
    def _sort(nodes: List[Dict[str, Any]]) -> None:
        nodes.sort(key=lambda node: (node.get("started_unix", 0.0), node["span_id"]))
        for node in nodes:
            _sort(node["children"])
    _sort(roots)
    return roots
