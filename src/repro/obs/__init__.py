"""Observability: request tracing, unified metrics, profiling hooks.

Three pillars, wired through every layer of the stack:

* :mod:`repro.obs.trace` — contextvars-scoped ``Trace``/``Span`` records
  with hash-derived span ids, a bounded in-memory ring and an optional
  JSONL sink next to the artifact store.  Trace ids propagate client →
  fleet router → worker → broker → pipeline stage → solver/search via the
  ``x-repro-trace`` request field and the optional ``trace_id``/``span_id``
  fields of :class:`~repro.pipeline.events.PipelineEvent`; they never enter
  cache keys or stored payloads, so bit-identity guarantees hold.
* :mod:`repro.obs.metrics` — a stdlib-only :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) rendered as Prometheus text
  on ``GET /metrics``.
* :mod:`repro.obs.names` — the one canonical table mapping ``/stats``
  counter keys to metric names, shared by the single-process server and
  the fleet router's aggregation (the fix for counter-name drift).
* :mod:`repro.obs.profile` — self-time tables and Chrome-trace-format
  exports of recorded span trees (``repro trace show`` / ``--profile``).
"""

from repro.obs.metrics import MetricsRegistry, global_registry, render_metrics
from repro.obs.trace import (
    Span,
    TRACE_FIELD,
    current_context,
    current_span_id,
    current_trace_id,
    maybe_trace,
    new_trace_id,
    ring_spans,
    span,
    start_trace,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "TRACE_FIELD",
    "current_context",
    "current_span_id",
    "current_trace_id",
    "global_registry",
    "maybe_trace",
    "new_trace_id",
    "render_metrics",
    "ring_spans",
    "span",
    "start_trace",
]
