"""Stdlib-only metrics registry with Prometheus text exposition.

Counters, gauges, and fixed-bucket histograms.  Rendering is fully
deterministic: families are sorted by name, samples by label values, and
histogram bucket bounds are fixed at declaration time, so the same
sequence of observations always yields byte-identical ``/metrics`` text.

One process-global registry (:func:`global_registry`) collects
cross-cutting tallies — retry attempts, journal records — that have no
natural owner object; the broker and fleet router keep their own
registries and everything is merged at render time by
:func:`render_metrics`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

# Fixed bounds for request-latency histograms; changing them changes the
# exposition format, so treat as part of the metrics contract.
REQUEST_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in key
    )
    return "{" + inner + "}"


def format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class Metric:
    """Base family: a name, a type string, help text, and labeled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: Dict[LabelKey, float] = {}

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        with self._lock:
            return [(self.name, key, value) for key, value in sorted(self._samples.items())]


class Counter(Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def set(self, value: float, **labels: str) -> None:
        """Overwrite a sample — for counters mirrored from ``/stats`` dicts."""

        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0.0)


class Gauge(Metric):
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._callbacks: Dict[LabelKey, Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        with self._lock:
            self._callbacks[_label_key(labels)] = fn

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            callback = self._callbacks.get(key)
            if callback is None:
                return self._samples.get(key, 0.0)
        return float(callback())

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        with self._lock:
            static = dict(self._samples)
            callbacks = dict(self._callbacks)
        for key, fn in callbacks.items():
            try:
                static[key] = float(fn())
            except Exception:
                continue  # a broken gauge must not poison the whole scrape
        return [(self.name, key, value) for key, value in sorted(static.items())]


class Histogram(Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = REQUEST_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.bounds))
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        out: List[Tuple[str, LabelKey, float]] = []
        with self._lock:
            keys = sorted(self._totals)
            for key in keys:
                counts = self._counts[key]
                for bound, count in zip(self.bounds, counts):
                    bucket_key = key + (("le", format_value(bound)),)
                    out.append((self.name + "_bucket", bucket_key, float(count)))
                out.append(
                    (self.name + "_bucket", key + (("le", "+Inf"),), float(self._totals[key]))
                )
                out.append((self.name + "_sum", key, self._sums.get(key, 0.0)))
                out.append((self.name + "_count", key, float(self._totals[key])))
        return out


class MetricsRegistry:
    """A named collection of metric families with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = REQUEST_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def metrics(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render(self) -> str:
        return render_metrics(self)


def render_metrics(*registries: MetricsRegistry) -> str:
    """Merge registries into one Prometheus text document.

    Families are deduplicated by name (first registry wins on metadata;
    samples from later registries with the same family name are appended)
    and sorted, so output is stable regardless of registration order.
    """

    families: Dict[str, List[Metric]] = {}
    for registry in registries:
        for metric in registry.metrics():
            families.setdefault(metric.name, []).append(metric)
    lines: List[str] = []
    for name in sorted(families):
        group = families[name]
        head = group[0]
        if head.help:
            lines.append(f"# HELP {name} {head.help}")
        lines.append(f"# TYPE {name} {head.kind}")
        for metric in group:
            for sample_name, key, value in metric.samples():
                lines.append(f"{sample_name}{_format_labels(key)} {format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_metrics(text: str) -> Dict[str, Dict[LabelKey, float]]:
    """Parse Prometheus text back into ``{family: {labels: value}}``.

    Deliberately minimal — enough for tests and the CI smoke job to
    compare scraped values; not a general exposition-format parser.
    """

    out: Dict[str, Dict[LabelKey, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            continue
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            label_part = label_part.rstrip("}")
            labels: List[Tuple[str, str]] = []
            for chunk in label_part.split(","):
                if not chunk:
                    continue
                label_name, _, label_value = chunk.partition("=")
                labels.append((label_name, label_value.strip('"')))
            key = tuple(sorted(labels))
        else:
            name, key = name_part, ()
        try:
            value = float(value_part)
        except ValueError:
            continue
        out.setdefault(name, {})[key] = value
    return out


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """Process-wide registry for cross-cutting counters (retries, journal)."""

    return _GLOBAL


def note_retry(amount: int = 1) -> None:
    """Count a retry attempt; called from ``RetryPolicy.call``."""

    _GLOBAL.counter(
        "repro_retries_total", "Retry attempts across all retry policies"
    ).inc(amount)


def note_journal_record(amount: int = 1) -> None:
    """Count a journal completion record; called from ``RunJournal``."""

    _GLOBAL.counter(
        "repro_journal_records_total", "Job completions recorded to run journals"
    ).inc(amount)
