"""Canonical metric-name tables shared by server and fleet router.

Historically the broker's ``/stats`` counters (``cache_hits_memory``, ...)
and the fleet router's aggregation (nested ``cache.l1`` dicts summed with
ad-hoc keys) drifted apart because each side hand-rolled its own naming.
This module is the single source of truth: both the single-process
``GET /metrics`` endpoint and the router's per-worker aggregation build
their registries through :func:`stats_registry` / :func:`fleet_registry`,
so a counter exists on one side iff it exists on the other, under the
same Prometheus family name.  A parity unit test pins the tables to the
broker's live counter dict.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

# ``Broker.counters`` key -> Prometheus family.  Keys here must exactly
# match the broker's counter dict (asserted by tests/test_obs.py), so a
# counter added to one without the other fails fast instead of drifting.
REQUEST_COUNTERS = {
    "submitted": "repro_requests_submitted_total",
    "completed": "repro_requests_completed_total",
    "failed": "repro_requests_failed_total",
    "rejected": "repro_requests_rejected_total",
    "coalesced": "repro_requests_coalesced_total",
    "cache_hits_memory": "repro_request_cache_hits_l1_total",
    "cache_hits_store": "repro_request_cache_hits_store_total",
    "batches": "repro_batches_total",
    "batched_lanes": "repro_batched_lanes_total",
}

# Non-monotonic request tallies exposed as gauges.
REQUEST_GAUGES = {
    "max_batch_lanes": "repro_max_batch_lanes",
}

# ``LruCache.stats()`` / ``ArtifactStore`` counters, nested under
# ``cache.l1`` / ``cache.store`` in the ``/stats`` body.
L1_CACHE_COUNTERS = {
    "hits": "repro_cache_l1_hits_total",
    "misses": "repro_cache_l1_misses_total",
}
L1_CACHE_GAUGES = {
    "size": "repro_cache_l1_size",
    "maxsize": "repro_cache_l1_maxsize",
}
L1_HIT_RATIO_GAUGE = "repro_cache_l1_hit_ratio"
STORE_CACHE_COUNTERS = {
    "hits": "repro_cache_store_hits_total",
    "misses": "repro_cache_store_misses_total",
}

# ``queue`` sub-dict gauges.
QUEUE_GAUGES = {
    "depth": "repro_queue_depth",
    "limit": "repro_queue_limit",
    "in_flight": "repro_queue_in_flight",
    "drain_rate_rps": "repro_drain_rate_rps",
}

UPTIME_GAUGE = "repro_uptime_seconds"
KERNEL_BACKEND_INFO = "repro_kernel_backend_info"
WORKERS_LIVE_GAUGE = "repro_fleet_workers"

# ``FleetRouter.counters`` key -> Prometheus family.
ROUTER_COUNTERS = {
    "routed": "repro_router_routed_total",
    "rerouted": "repro_router_rerouted_total",
    "unrouted": "repro_router_unrouted_total",
    "lost": "repro_router_lost_total",
    "worker_deaths": "repro_router_worker_deaths_total",
    "respawns": "repro_router_respawns_total",
    "drains": "repro_router_drains_total",
}

_HELP = {
    "repro_requests_submitted_total": "Requests accepted by the broker",
    "repro_requests_completed_total": "Requests finished successfully",
    "repro_requests_failed_total": "Requests that raised during execution",
    "repro_requests_rejected_total": "Requests rejected by admission control",
    "repro_requests_coalesced_total": "Requests coalesced onto an in-flight twin",
    "repro_request_cache_hits_l1_total": "Requests served from the in-memory L1 result cache",
    "repro_request_cache_hits_store_total": "Requests served from the persistent artifact store",
    "repro_batches_total": "Executed request batches",
    "repro_batched_lanes_total": "Simulation lanes executed via batching",
    "repro_max_batch_lanes": "Largest batch executed so far",
    "repro_cache_l1_hits_total": "L1 result-cache hits",
    "repro_cache_l1_misses_total": "L1 result-cache misses",
    "repro_cache_l1_size": "Entries currently in the L1 result cache",
    "repro_cache_l1_maxsize": "L1 result-cache capacity",
    "repro_cache_l1_hit_ratio": "L1 hits / lookups (0.0 on a fresh server)",
    "repro_cache_store_hits_total": "Artifact-store read hits",
    "repro_cache_store_misses_total": "Artifact-store read misses",
    "repro_queue_depth": "Requests waiting in the broker queue",
    "repro_queue_limit": "Broker queue admission limit",
    "repro_queue_in_flight": "Distinct request keys currently in flight",
    "repro_drain_rate_rps": "Estimated queue drain rate (0.0 until history exists)",
    "repro_uptime_seconds": "Seconds since the server or router started",
    "repro_kernel_backend_info": "Active compiled simulation backend (info gauge, always 1)",
    "repro_fleet_workers": "Workers known to the fleet router",
    "repro_router_routed_total": "Requests routed to a worker",
    "repro_router_rerouted_total": "Requests routed past their primary ring owner",
    "repro_router_unrouted_total": "Requests with no live worker available",
    "repro_router_lost_total": "Tracked requests lost to a worker death",
    "repro_router_worker_deaths_total": "Worker processes observed dead",
    "repro_router_respawns_total": "Worker processes respawned",
    "repro_router_drains_total": "Workers put into draining state",
}


def help_for(name: str) -> str:
    return _HELP.get(name, "")


def _as_number(value: Any) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def stats_registry(
    stats: Mapping[str, Any],
    registry: Optional[MetricsRegistry] = None,
    **labels: str,
) -> MetricsRegistry:
    """Mirror one broker ``/stats`` payload into a registry.

    This is the canonical translation used by *both* the single-process
    server (no labels) and the fleet router (``worker="..."`` labels plus
    an unlabeled sum), which is what keeps the two sides name-compatible.
    """

    registry = registry or MetricsRegistry()
    requests = stats.get("requests") or {}
    for key, family in REQUEST_COUNTERS.items():
        value = _as_number(requests.get(key))
        if value is not None:
            counter = registry.counter(family, help_for(family))
            counter.set(counter.value(**labels) + value, **labels)
    for key, family in REQUEST_GAUGES.items():
        value = _as_number(requests.get(key))
        if value is not None:
            gauge = registry.gauge(family, help_for(family))
            gauge.set(max(gauge.value(**labels), value), **labels)
    cache = stats.get("cache") or {}
    l1 = cache.get("l1") or {}
    for key, family in L1_CACHE_COUNTERS.items():
        value = _as_number(l1.get(key))
        if value is not None:
            counter = registry.counter(family, help_for(family))
            counter.set(counter.value(**labels) + value, **labels)
    for key, family in L1_CACHE_GAUGES.items():
        value = _as_number(l1.get(key))
        if value is not None:
            gauge = registry.gauge(family, help_for(family))
            gauge.set(gauge.value(**labels) + value, **labels)
    # Derive the ratio from the (possibly fleet-summed) counters so the
    # unlabeled aggregate is hits/lookups over the whole fleet, not a sum
    # or last-write of per-worker ratios.
    hits = registry.counter(L1_CACHE_COUNTERS["hits"]).value(**labels)
    lookups = hits + registry.counter(L1_CACHE_COUNTERS["misses"]).value(**labels)
    registry.gauge(L1_HIT_RATIO_GAUGE, help_for(L1_HIT_RATIO_GAUGE)).set(
        round(hits / lookups, 6) if lookups else 0.0, **labels
    )
    store = cache.get("store") or {}
    for key, family in STORE_CACHE_COUNTERS.items():
        value = _as_number(store.get(key))
        if value is not None:
            counter = registry.counter(family, help_for(family))
            counter.set(counter.value(**labels) + value, **labels)
    queue = stats.get("queue") or {}
    for key, family in QUEUE_GAUGES.items():
        value = _as_number(queue.get(key))
        if value is not None:
            gauge = registry.gauge(family, help_for(family))
            gauge.set(gauge.value(**labels) + value, **labels)
    uptime = _as_number(stats.get("uptime_seconds"))
    if uptime is not None:
        registry.gauge(UPTIME_GAUGE, help_for(UPTIME_GAUGE)).set(uptime, **labels)
    backend = stats.get("kernel_backend")
    if isinstance(backend, str) and backend:
        registry.gauge(KERNEL_BACKEND_INFO, help_for(KERNEL_BACKEND_INFO)).set(
            1, backend=backend, **labels
        )
    return registry


def fleet_registry(
    per_worker: Mapping[str, Optional[Mapping[str, Any]]],
    router_counters: Mapping[str, Any],
    uptime_seconds: float,
) -> MetricsRegistry:
    """Aggregate worker ``/stats`` payloads plus router tallies.

    Each live worker contributes both an unlabeled sample (summed across
    the fleet) and a ``worker="name"``-labeled one, through the same
    canonical table as the single-process server — summed families are
    therefore exactly the sum of the per-worker samples.
    """

    registry = MetricsRegistry()
    live = 0
    for name, stats in sorted(per_worker.items()):
        if not isinstance(stats, Mapping):
            continue
        live += 1
        stats_registry(stats, registry)  # fleet-wide sums
        stats_registry(stats, registry, worker=name)
    registry.gauge(WORKERS_LIVE_GAUGE, help_for(WORKERS_LIVE_GAUGE)).set(
        len(per_worker)
    )
    registry.gauge(UPTIME_GAUGE, help_for(UPTIME_GAUGE)).set(
        float(uptime_seconds)
    )
    for key, family in ROUTER_COUNTERS.items():
        value = _as_number(router_counters.get(key))
        if value is not None:
            registry.counter(family, help_for(family)).set(value)
    return registry
