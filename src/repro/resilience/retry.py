"""One retry policy — jittered exponential backoff — for every layer.

The sync/async service clients, store I/O and transient stage failures all
retry through the same :class:`RetryPolicy`, replacing the previous ad-hoc
busy loops and bare re-raises.  The policy is a frozen value: delays are a
pure function of the attempt index (plus deterministic jitter when seeded),
so a chaos test can assert the exact backoff schedule.

Jitter pulls each delay *down* by up to ``jitter`` of its nominal value
(decorrelating a thundering herd without ever exceeding the exponential
envelope), and delays are capped at ``max_delay``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type

from repro.seeding import derive_seed

_DRAW_SPACE = float(2**31 - 1)


class TransientError(RuntimeError):
    """A failure the caller believes a retry can recover from.

    Raised by code that wants a :class:`RetryPolicy` wrapper above it to
    retry without widening the retryable set to all exceptions.
    """


class RetryExhausted(RuntimeError):
    """Every attempt of a retried operation failed (chains the last error)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff.

    Attributes:
        attempts: Total tries, including the first (1 = no retries).
        base_delay: Delay before the first retry, in seconds.
        multiplier: Exponential growth factor per retry.
        max_delay: Upper bound on any single delay.
        jitter: Fraction of each delay randomized away (0 disables jitter,
            0.5 means delays land in ``[0.5 * d, d]``).
        seed: When set, jitter derives deterministically from
            ``(seed, salt, attempt)`` via :func:`repro.seeding.derive_seed`;
            when None, :mod:`random` supplies it (sleep lengths never
            influence computed results, so unseeded jitter stays
            reproducibility-safe).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, attempt: int, salt: str = "") -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        nominal = min(
            self.max_delay, self.base_delay * self.multiplier ** int(attempt)
        )
        if self.jitter <= 0.0 or nominal <= 0.0:
            return nominal
        if self.seed is None:
            fraction = random.random()
        else:
            fraction = (
                derive_seed(self.seed, "retry", salt, int(attempt)) / _DRAW_SPACE
            )
        return nominal * (1.0 - self.jitter * fraction)

    def delays(self, salt: str = "") -> Iterator[float]:
        """The finite backoff schedule (one delay per retry)."""
        for attempt in range(self.attempts - 1):
            yield self.delay(attempt, salt)

    def poll_delays(self, salt: str = "") -> Iterator[float]:
        """An endless backoff schedule for polling loops.

        Grows like the retry schedule and then stays at ``max_delay`` —
        the replacement for fixed-interval busy polling.
        """
        attempt = 0
        while True:
            yield self.delay(attempt, salt)
            attempt += 1

    def call(
        self,
        operation: Callable[[int], Any],
        retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
        salt: str = "",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Run ``operation(attempt)`` with retries.

        The attempt index is passed to the operation so downstream fault
        hooks (and logging) can key on it.  Exceptions outside ``retry_on``
        propagate immediately; the final failure propagates as-is after the
        last attempt.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.attempts):
            try:
                return operation(attempt)
            except retry_on as exc:
                last = exc
                if attempt == self.attempts - 1:
                    raise
                # Lazy import: metrics depend on nothing, but keeping the
                # observability layer out of this module's import graph
                # means a stripped-down deployment can drop repro.obs.
                from repro.obs.metrics import note_retry

                note_retry()
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = self.delay(attempt, salt)
                if pause > 0:
                    sleep(pause)
        raise RetryExhausted("retry loop fell through") from last  # pragma: no cover


#: Store I/O retries: quick, local disk — short delays, a few attempts.
STORE_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.1)

#: Transient stage failures inside a job (injected faults, marked transients).
STAGE_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.25)

#: Client transport/backpressure retries (connection drops, 429 busy).
CLIENT_RETRY = RetryPolicy(attempts=4, base_delay=0.1, max_delay=2.0)
