"""Deterministic, seeded fault injection at named sites.

A :class:`FaultPlan` carries a root seed and a per-site failure rate.  The
decision for one potential fault is a **pure function** of
``(seed, site, label, attempt)`` through the repository-wide hash-derivation
scheme (:func:`repro.seeding.derive_seed`): the same plan injects the same
fault schedule on every run, in every process, regardless of thread timing
or call order.  A retried operation passes an incremented ``attempt``, so
its recovery draw is independent of the original failure — bounded retries
recover deterministically.

Sites are coarse, architectural failure points rather than line-level hooks:

=================  ==========================================================
``store_read``     Reading an artifact/throughput entry from the store.
``store_write``    Publishing an artifact (atomic replace included).
``stage``          Executing one pipeline stage of one job.
``worker_start``   A pool worker picking up a job (the injected failure is a
                   *process exit*, simulating a crashed/OOM-killed shard).
``solver_stall``   The exact MILP wedging past its deadline share (the
                   optimize stage reacts by degrading to the heuristic
                   portfolio).
``connection``     A client-side transport exchange with the service.
=================  ==========================================================

Plans install process-globally (workers re-install the plan shipped to them
by the runner) via the :func:`injected` context manager; instrumented code
calls :func:`check` which is a no-op when no plan is active.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.seeding import derive_seed

#: The named injection sites a plan may target.
FAULT_SITES = (
    "store_read",
    "store_write",
    "stage",
    "worker_start",
    "solver_stall",
    "connection",
)

#: Denominator of the hash-to-unit-interval draw (matches derive_seed range).
_DRAW_SPACE = float(2**31 - 1)


class InjectedFault(RuntimeError):
    """A fault produced by an active :class:`FaultPlan` (transient)."""

    def __init__(self, site: str, label: str, attempt: int) -> None:
        super().__init__(
            f"injected fault at {site}[{label}] (attempt {attempt})"
        )
        self.site = site
        self.label = label
        self.attempt = attempt


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injected failures at named sites.

    ``rates`` maps a site name to a failure probability in ``[0, 1]``.  The
    plan is picklable (plain ints/floats/strings), so the sharded runner can
    ship it to pool workers; the injected schedule is identical in every
    process because decisions never consult process state.
    """

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for site, rate in self.rates.items():
            if site not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; expected one of {FAULT_SITES}"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate!r}"
                )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the CLI form ``"site:rate,site:rate"`` (e.g. ``stage:0.05``)."""
        rates: Dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            site, sep, rate_text = item.partition(":")
            if not sep:
                raise ValueError(
                    f"fault spec item {item!r} must look like site:rate"
                )
            try:
                rates[site.strip()] = float(rate_text)
            except ValueError as exc:
                raise ValueError(
                    f"fault rate in {item!r} is not a number"
                ) from exc
        return cls(seed=int(seed), rates=rates)

    def to_spec(self) -> str:
        """The canonical CLI spec string (inverse of :meth:`from_spec`)."""
        return ",".join(
            f"{site}:{self.rates[site]:g}" for site in sorted(self.rates)
        )

    def rate(self, site: str) -> float:
        return float(self.rates.get(site, 0.0))

    def should_fail(self, site: str, label: str, attempt: int = 0) -> bool:
        """The deterministic injection decision for one potential fault."""
        rate = self.rate(site)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        draw = derive_seed(self.seed, "fault", site, str(label), int(attempt))
        return draw / _DRAW_SPACE < rate

    def check(self, site: str, label: str, attempt: int = 0) -> None:
        """Raise :class:`InjectedFault` when the plan schedules one here."""
        if self.should_fail(site, label, attempt):
            _count_injection(site)
            raise InjectedFault(site, str(label), int(attempt))

    def schedule(
        self, site: str, labels, attempts: int = 1
    ) -> Tuple[Tuple[str, int], ...]:
        """The ``(label, attempt)`` pairs the plan fails for — test/debug aid."""
        return tuple(
            (str(label), attempt)
            for label in labels
            for attempt in range(int(attempts))
            if self.should_fail(site, label, attempt)
        )


# -- process-global installation ---------------------------------------------
#
# One plan at a time, shared by every thread: the store, stages and clients
# are driven from executor threads and pool workers, and a chaos run means
# "this process is faulty", not "this thread is faulty".

_LOCK = threading.Lock()
_ACTIVE: Optional[FaultPlan] = None
_INJECTED: Dict[str, int] = {}


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-globally (None uninstalls)."""
    global _ACTIVE
    with _LOCK:
        _ACTIVE = plan


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextlib.contextmanager
def injected(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scope ``plan`` as the process-global fault plan."""
    with _LOCK:
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _LOCK:
            _ACTIVE = previous


def check(site: str, label: str, attempt: int = 0) -> None:
    """Injection hook: no-op without an active plan."""
    plan = _ACTIVE
    if plan is not None:
        plan.check(site, label, attempt)


def should_crash_worker(label: str, attempt: int = 0) -> bool:
    """Whether the active plan schedules a worker-process crash here.

    Separate from :func:`check` because the reaction is not an exception —
    the pool worker calls ``os._exit`` to simulate a killed process — and the
    call site must be able to count the injection before dying.
    """
    plan = _ACTIVE
    if plan is None or not plan.should_fail("worker_start", label, attempt):
        return False
    _count_injection("worker_start")
    return True


def _count_injection(site: str) -> None:
    with _LOCK:
        _INJECTED[site] = _INJECTED.get(site, 0) + 1


def injection_counts() -> Dict[str, int]:
    """Per-site injected-fault counts of this process (observability)."""
    with _LOCK:
        return dict(_INJECTED)


def reset_injection_counts() -> None:
    with _LOCK:
        _INJECTED.clear()
