"""Request-scoped deadlines, propagated through layers without plumbing.

A :class:`Deadline` is an absolute expiry on the monotonic clock plus the
budget it was created with.  The service's worker bridge opens a
:meth:`Deadline.scope` around a run, and every layer below — stages, the
MILP walk, the search portfolio — reads :meth:`Deadline.current` to bound
its own work, so a deadline set at the API edge reaches the innermost solver
loop without threading a parameter through every signature.

Scopes are :mod:`contextvars`-based: each executor thread (and each asyncio
task) sees only the deadline it opened, so concurrent requests cannot leak
budgets into each other.  ``Deadline.current()`` returns None outside any
scope — callers treat that as "unbounded" and keep their historical
behaviour.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Iterator, Optional


class DeadlineExceeded(TimeoutError):
    """An operation ran past its request deadline."""


_CURRENT: contextvars.ContextVar[Optional["Deadline"]] = contextvars.ContextVar(
    "repro_deadline", default=None
)


class Deadline:
    """An absolute expiry on the monotonic clock.

    Attributes:
        expires_at: ``time.monotonic()`` value after which the deadline has
            passed.
        budget: The total budget in seconds the deadline was created with
            (provenance; ``remaining()`` is the live value).
    """

    __slots__ = ("expires_at", "budget")

    def __init__(self, expires_at: float, budget: float) -> None:
        self.expires_at = float(expires_at)
        self.budget = float(budget)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        seconds = float(seconds)
        if seconds <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        return cls(time.monotonic() + seconds, seconds)

    @staticmethod
    def current() -> Optional["Deadline"]:
        """The deadline of the innermost open scope (None when unbounded)."""
        return _CURRENT.get()

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def require(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its deadline ({self.budget:g}s budget)"
            )

    def share(self, fraction: float) -> float:
        """``fraction`` of the remaining budget, in seconds."""
        return self.remaining() * float(fraction)

    @contextlib.contextmanager
    def scope(self) -> Iterator["Deadline"]:
        """Make this deadline :meth:`current` for the enclosed block."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s, budget={self.budget:g}s)"


@contextlib.contextmanager
def optional_scope(seconds: Optional[float]) -> Iterator[Optional[Deadline]]:
    """Open ``Deadline.after(seconds).scope()`` when ``seconds`` is set.

    The convenience form for call sites whose deadline is an optional request
    field: ``with optional_scope(prepared.deadline): ...`` behaves like a
    plain pass-through when no deadline was requested.
    """
    if seconds is None:
        yield None
        return
    deadline = Deadline.after(seconds)
    with deadline.scope():
        yield deadline
