"""Cross-cutting fault tolerance for the pipeline, search and service layers.

Four pillars, each usable on its own and wired through the rest of the
repository:

* :mod:`repro.resilience.faults` — **deterministic fault injection**: a
  seeded :class:`FaultPlan` decides, as a pure function of
  ``(seed, site, label, attempt)``, whether a named site (store read/write,
  stage execution, worker startup, solver stall, connection) fails.  Chaos
  runs are reproducible from a seed and expressible from the CLI
  (``--inject store_write:0.1,stage:0.05``).
* :mod:`repro.resilience.deadline` — **deadline propagation**: a
  request-scoped :class:`Deadline` carried from the service API through the
  broker, worker bridge and stages into the MILP/portfolio budgets.
* :mod:`repro.resilience.retry` — one **retry policy** (jittered exponential
  backoff) shared by the sync/async clients, store I/O and transient stage
  failures.
* :mod:`repro.resilience.journal` — **crash-safe sweeps**: atomic per-job
  completion records next to the artifact store, so a killed worker's shard
  is retried on a fresh process and ``python -m repro run --resume <run-id>``
  skips journaled-complete jobs bit-identically.
"""

from repro.resilience.deadline import Deadline, DeadlineExceeded, optional_scope
from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    InjectedFault,
    active_plan,
    check,
    injected,
)
from repro.resilience.journal import RunJournal, active_journal, journaling
from repro.resilience.retry import RetryPolicy, TransientError

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "FAULT_SITES",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "RunJournal",
    "TransientError",
    "active_journal",
    "active_plan",
    "check",
    "injected",
    "journaling",
    "optional_scope",
]
