"""Crash-safe sweep journal: atomic per-job completion records.

The :class:`~repro.pipeline.store.ArtifactStore` already makes re-runs
cheap (identical jobs become disk hits), but a resume still has to rebuild
every graph to recompute store keys.  A :class:`RunJournal` sits next to the
store (``<store>/journal/<run-id>/``) and records, atomically and in the
parent process, each completed job's id and store key, plus a manifest of
the run's target and options.  That gives:

* **crash-safe resume** — ``python -m repro run --resume <run-id>`` reloads
  the manifest, skips journaled-complete jobs without even building their
  graphs, and serves their payloads from the store bit-identically;
* **crash accounting** — a killed worker leaves its job unjournaled, so the
  retried run recomputes exactly the missing work.

Records are one file per job (``<sha256(job_id)>.json``, published with the
same tempfile + ``os.replace`` pattern the store uses), so concurrent
completions never contend and a crash mid-write can only lose the record
being written — never corrupt an existing one.  Corrupt or stale records
degrade to "not complete" (the job recomputes; the store usually answers).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional

#: Journal record/manifest layout version; bump on incompatible change.
JOURNAL_VERSION = 1

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class JournalError(ValueError):
    """A malformed run id or unreadable manifest."""


def validate_run_id(run_id: str) -> str:
    """Run ids become directory names; keep them filesystem-safe."""
    if not isinstance(run_id, str) or not _RUN_ID_RE.match(run_id):
        raise JournalError(
            f"invalid run id {run_id!r}: use 1-64 letters, digits, '.', '_' "
            "or '-' (must start with a letter or digit)"
        )
    return run_id


def _atomic_write(path: Path, document: Mapping[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(document, sort_keys=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or document.get("version") != JOURNAL_VERSION:
        return None
    return document


class RunJournal:
    """Completion records and the manifest of one named sweep run."""

    def __init__(self, root: os.PathLike, run_id: str) -> None:
        self.run_id = validate_run_id(run_id)
        self.root = Path(root) / "journal" / self.run_id
        self._lock = threading.Lock()

    @classmethod
    def for_store(cls, store_root: os.PathLike, run_id: str) -> "RunJournal":
        """The journal living next to the artifact store at ``store_root``."""
        return cls(store_root, run_id)

    # -- manifest ------------------------------------------------------------

    def write_manifest(self, target: str, options: Mapping[str, Any]) -> None:
        """Record what this run executes, so ``--resume`` can re-declare it.

        Idempotent for identical content; a *different* manifest under the
        same run id is an error — silently mixing two option sets in one
        journal would make "resume" skip jobs of the wrong run.
        """
        document = {
            "version": JOURNAL_VERSION,
            "run_id": self.run_id,
            "target": str(target),
            "options": dict(options),
        }
        existing = self.manifest()
        if existing is not None:
            if (
                existing.get("target") != document["target"]
                or existing.get("options") != document["options"]
            ):
                raise JournalError(
                    f"run id {self.run_id!r} already journals a different "
                    "run (target/options mismatch); pick a new --run-id"
                )
            return
        _atomic_write(self.root / "manifest.json", document)

    def manifest(self) -> Optional[Dict[str, Any]]:
        return _read_json(self.root / "manifest.json")

    # -- completion records --------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        # Job ids are arbitrary labels; hash them into safe, fixed-length
        # file names (no pipeline.store import — the store depends on this
        # package, not the other way around).
        digest = hashlib.sha256(str(job_id).encode("utf-8")).hexdigest()
        return self.root / f"{digest}.json"

    def record_done(self, job_id: str, store_key: str) -> None:
        """Atomically journal one completed (and published) job."""
        with self._lock:
            _atomic_write(self._record_path(job_id), {
                "version": JOURNAL_VERSION,
                "job_id": str(job_id),
                "key": str(store_key),
                "status": "done",
            })
        from repro.obs.metrics import note_journal_record

        note_journal_record()

    def completed_key(self, job_id: str) -> Optional[str]:
        """The store key of a journaled-complete job (None when absent)."""
        document = _read_json(self._record_path(job_id))
        if document is None or document.get("status") != "done":
            return None
        key = document.get("key")
        return str(key) if isinstance(key, str) and key else None

    def completed(self) -> Dict[str, str]:
        """All journaled completions as ``{job_id: store_key}``."""
        out: Dict[str, str] = {}
        for path in self.root.glob("*.json"):
            if path.name == "manifest.json":
                continue
            document = _read_json(path)
            if document is None or document.get("status") != "done":
                continue
            job_id, key = document.get("job_id"), document.get("key")
            if isinstance(job_id, str) and isinstance(key, str) and key:
                out[job_id] = key
        return out

    def clear(self) -> int:
        """Drop every completion record (keeps the manifest)."""
        removed = 0
        for path in self.root.glob("*.json"):
            if path.name == "manifest.json":
                continue
            with contextlib.suppress(OSError):
                os.unlink(path)
                removed += 1
        return removed


# -- ambient journal ---------------------------------------------------------
#
# The CLI opens a journal around run_preset; run_jobs (possibly many layers
# below, inside experiment helpers) picks it up without every intermediate
# signature growing a parameter — the same pattern the fault plan uses.

_LOCK = threading.Lock()
_ACTIVE: Optional[RunJournal] = None


def active_journal() -> Optional[RunJournal]:
    return _ACTIVE


@contextlib.contextmanager
def journaling(journal: Optional[RunJournal]) -> Iterator[Optional[RunJournal]]:
    """Scope ``journal`` as the ambient journal for nested ``run_jobs`` calls."""
    global _ACTIVE
    with _LOCK:
        previous = _ACTIVE
        _ACTIVE = journal
    try:
        yield journal
    finally:
        with _LOCK:
            _ACTIVE = previous
