"""Vectorized batch simulation engine.

Compiles TGMGs / elastic circuits into flat numpy index arrays and advances
whole cycles (and whole batches of configurations or replicas) with array
operations, while staying firing-for-firing compatible with the pure-Python
reference simulators under a shared seed.  See ``docs/performance.md``.

Hot loops additionally lower to compiled kernels (numba or generated C)
when a backend is available — see :mod:`repro.sim.kernels`; every backend
is bit-identical to the pure-python engines, and ``kernel_backend()``
reports which one is active.
"""

from repro.sim.batch import (
    simulate_configurations,
    simulate_replicas,
    simulate_throughput_vector,
)
from repro.sim.cache import cache_stats, clear_caches, compiled_template_for
from repro.sim.kernels import kernel_backend, kernel_info, use_backend
from repro.sim.engine import (
    BatchRunResult,
    CompiledModel,
    CompiledStructure,
    CompiledTemplate,
    VectorSimulator,
    compile_elastic_template,
    compile_template,
    compile_tgmg,
)
from repro.sim.scalar import ScalarSimulator

__all__ = [
    "BatchRunResult",
    "CompiledModel",
    "CompiledStructure",
    "CompiledTemplate",
    "ScalarSimulator",
    "VectorSimulator",
    "cache_stats",
    "clear_caches",
    "compile_elastic_template",
    "compile_template",
    "compile_tgmg",
    "compiled_template_for",
    "kernel_backend",
    "kernel_info",
    "simulate_configurations",
    "simulate_replicas",
    "simulate_throughput_vector",
    "use_backend",
]
