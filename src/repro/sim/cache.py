"""Caches for the vectorized simulation engine.

Two layers of reuse keep Pareto sweeps cheap:

* a **compiled-template cache**: the CSR structure of an RRG's TGMG (or of
  its structural elastic circuit) depends only on the graph shape, so it is
  compiled once per RRG fingerprint and re-instantiated per configuration;
* a **throughput cache** keyed by ``(configuration, cycles, warmup, seed)``:
  simulation is deterministic given a seed, so re-evaluating the same
  configuration (e.g. RC_lp_min appearing both as ``best`` and among the
  stored Pareto points) is a dictionary lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.core.rrg import RRG
from repro.sim.engine import (
    CompiledTemplate,
    compile_elastic_template,
    compile_template,
)


def rrg_fingerprint(rrg: RRG) -> Tuple:
    """Structural identity of an RRG for cache keys.

    Covers everything the simulators read: node order, delays, early flags,
    edge endpoints and branch probabilities.  Token/buffer vectors are *not*
    part of the fingerprint — they vary per configuration and enter the
    throughput-cache key separately.
    """
    nodes = tuple(
        (node.name, float(node.delay), bool(node.early)) for node in rrg.nodes
    )
    edges = tuple(
        (
            edge.src,
            edge.dst,
            None if edge.probability is None else float(edge.probability),
        )
        for edge in rrg.edges
    )
    return (rrg.name, nodes, edges)


def vector_key(vector: Mapping[int, int]) -> Tuple[Tuple[int, int], ...]:
    """Hashable form of a per-edge token/buffer vector."""
    return tuple(sorted((int(k), int(v)) for k, v in vector.items()))


class LruCache:
    """A tiny LRU dictionary with hit/miss counters.

    Public because it is the in-process tier of every cache front in the
    repository: the template/throughput caches below and the request-result
    cache of :mod:`repro.service` all count hits and misses through it.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/size counters (the exported accounting interface).

        ``hit_ratio`` is 0.0 (not NaN, not an exception) before the first
        lookup, so freshly started servers always report a valid number.
        """
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hit_ratio": round(self.hits / lookups, 6) if lookups else 0.0,
        }


#: Backwards-compatible alias of the pre-export name.
_LruCache = LruCache

_TEMPLATES = LruCache(maxsize=64)
_THROUGHPUTS = LruCache(maxsize=4096)

# Optional persistent layer behind the in-memory throughput cache.  The
# backend exposes ``get(key) -> Optional[float]`` and ``put(key, value)``;
# :func:`repro.pipeline.store.attach_persistent_throughputs` installs one
# backed by an on-disk artifact store shared across processes.
_PERSISTENT = None


def set_persistent_backend(backend) -> None:
    """Install (or with None, remove) the persistent throughput backend."""
    global _PERSISTENT
    _PERSISTENT = backend


def persistent_backend():
    """The currently installed persistent backend (None when detached)."""
    return _PERSISTENT


def compiled_template_for(
    rrg: RRG, mode: str = "tgmg", refine: bool = True
) -> CompiledTemplate:
    """The (cached) compiled template of an RRG for one simulation mode."""
    key = (rrg_fingerprint(rrg), mode, refine)
    template = _TEMPLATES.get(key)
    if template is None:
        if mode == "tgmg":
            template = compile_template(rrg, refine=refine)
        elif mode == "elastic":
            template = compile_elastic_template(rrg)
        else:
            raise ValueError(f"unknown simulation mode {mode!r}")
        _TEMPLATES.put(key, template)
    return template


def throughput_key(
    fingerprint: Tuple,
    mode: str,
    tokens: Mapping[int, int],
    buffers: Mapping[int, int],
    cycles: int,
    warmup: int,
    seed: Optional[int],
) -> Tuple:
    return (
        fingerprint,
        mode,
        vector_key(tokens),
        vector_key(buffers),
        int(cycles),
        int(warmup),
        seed,
    )


def cached_throughput(key: Tuple) -> Optional[float]:
    value = _THROUGHPUTS.get(key)
    if value is None and _PERSISTENT is not None:
        try:
            value = _PERSISTENT.get(key)
        except Exception:
            value = None  # a broken store must never break simulation
        if value is not None:
            _THROUGHPUTS.put(key, float(value))
    return value  # type: ignore[return-value]


def store_throughput(key: Tuple, value: float) -> None:
    _THROUGHPUTS.put(key, float(value))
    if _PERSISTENT is not None:
        try:
            _PERSISTENT.put(key, float(value))
        except Exception:
            pass  # persistence is best-effort; memory keeps the value


def cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of both caches (for tests and diagnostics)."""
    return {
        "template_hits": _TEMPLATES.hits,
        "template_misses": _TEMPLATES.misses,
        "template_size": len(_TEMPLATES),
        "throughput_hits": _THROUGHPUTS.hits,
        "throughput_misses": _THROUGHPUTS.misses,
        "throughput_size": len(_THROUGHPUTS),
    }


def clear_caches() -> None:
    """Drop every cached template and throughput (mainly for tests)."""
    _TEMPLATES.clear()
    _THROUGHPUTS.clear()
