"""Event-driven single-lane engine over a compiled model.

The vectorized wavefront of :class:`repro.sim.engine.VectorSimulator` pays a
fixed number of array operations per *wave*, and a cycle needs as many waves
as the deepest combinational cascade — ideal when many lanes amortise it,
wasteful for one lane.  This engine instead advances one lane with
event-driven bookkeeping:

* every node keeps a **deficit counter** (number of in-edges whose marking is
  below 1); a simple node is enabled exactly when its deficit is zero;
* every marking change checks the single threshold crossing (``< 1`` vs
  ``>= 1``) and updates the consumer's deficit, pushing newly-enabled nodes
  onto a worklist — so a cycle costs O(firings + edges touched), not
  O(nodes x sweeps) like the reference simulators;
* delayed production goes through the same ring of arrival buckets as the
  vectorized engine (lists of edge ids, no per-token shift registers).

Guard sampling uses the same ``random.Random``-compatible tables as compat
mode of the vectorized engine, so a run is firing-for-firing identical to
:class:`repro.gmg.simulation.TGMGSimulator` /
:class:`repro.elastic.simulator.ElasticSimulator` under a shared seed.

When a native kernel backend is active (see :mod:`repro.sim.kernels`),
:meth:`ScalarSimulator.run` lowers whole runs to it and syncs the python
state back afterwards — every backend is bit-identical, so which one ran is
invisible in the results.
"""

from __future__ import annotations

import random
from bisect import bisect
from typing import List, Optional

import numpy as np

from repro.sim import kernels as _kernels
from repro.sim.engine import BatchRunResult, CompiledModel


class ScalarSimulator:
    """Single-lane event-driven simulator for a :class:`CompiledModel`."""

    def __init__(self, model: CompiledModel, seed: Optional[int] = None) -> None:
        structure = model.structure
        self._s = structure
        self._model = model
        self._seed = seed
        self._num_nodes = structure.num_nodes
        self._num_edges = structure.num_edges
        # Structure-level lists come from the shared kernel plan, so the
        # O(V + E) numpy-scalar conversions happen once per structure, not
        # once per candidate evaluation.
        plan = _kernels.plan_for(structure)
        self._cons = plan.cons_list
        self._in_edges = plan.in_edges
        latency = np.asarray(model.latency).tolist()
        out_lists = plan.out_lists
        # Split each node's out-edges into combinational (latency 0) and
        # delayed (latency >= 1, paired with the latency).
        self._out_zero = [
            tuple(e for e in lst if latency[e] == 0) for lst in out_lists
        ]
        self._out_delayed = [
            tuple((e, latency[e]) for e in lst if latency[e] > 0) for lst in out_lists
        ]
        self._depth = max(latency) + 1 if latency else 1
        self._marking0 = np.asarray(model.marking0).tolist()

        self._is_early = plan.is_early
        self._early_nodes = plan.early_nodes_list
        self._early_slot = plan.early_slot_list
        self._guards = structure.guards
        self.reset()

    def reset(self) -> None:
        """Restore the initial marking and clear all statistics."""
        self.marking = list(self._marking0)
        self.cycle = 0
        self.firings = [0] * self._num_nodes
        self._rng = random.Random(self._seed)
        self._pending = [-1] * len(self._early_nodes)
        self._arrivals: List[List[int]] = [[] for _ in range(self._depth)]
        # Deficits and the persistent ready list of zero-deficit simple nodes.
        marking = self.marking
        self._deficit = [
            sum(1 for e in edges if marking[e] < 1) for edges in self._in_edges
        ]
        # Simple nodes whose deficit is zero at a cycle boundary; next cycle's
        # worklist starts from exactly this set (early nodes are re-checked
        # through their guard each cycle instead).
        self._next_ready = [
            node
            for node in range(self._num_nodes)
            if self._deficit[node] == 0 and not self._is_early[node]
        ]

    # -- single cycle ----------------------------------------------------------

    def step(self, record: bool = False) -> Optional[List[int]]:
        """Advance one clock cycle; optionally return the fired node ids."""
        marking = self.marking
        deficit = self._deficit
        cons = self._cons
        is_early = self._is_early
        pending = self._pending
        early_slot = self._early_slot
        fired = [False] * self._num_nodes
        # The worklist starts from the simple nodes whose deficit was zero at
        # the last cycle boundary; a node enabled at a boundary stays enabled
        # until it fires, so nothing else needs a fresh scan.
        queue = self._next_ready
        self._next_ready = next_ready = []

        # 1. Deliver tokens whose latency elapsed this cycle.  The bucket is
        # drained and reused in place: phase 3 only ever appends to *future*
        # slots (latency >= 1), so clearing after the scan is safe and the
        # ring never allocates after reset.
        slot = self.cycle % self._depth
        bucket = self._arrivals[slot]
        if bucket:
            for edge in bucket:
                value = marking[edge]
                marking[edge] = value + 1
                if value == 0:  # crossed into >= 1
                    consumer = cons[edge]
                    if is_early[consumer]:
                        if pending[early_slot[consumer]] == edge:
                            queue.append(consumer)
                    else:
                        remaining = deficit[consumer] - 1
                        deficit[consumer] = remaining
                        if remaining == 0:
                            queue.append(consumer)
            bucket.clear()

        # 2. Early nodes without a held guard sample one, in node order (the
        #    same RNG stream as the reference simulators).
        if self._early_nodes:
            rng_random = self._rng.random
            guards = self._guards
            for position, node in enumerate(self._early_nodes):
                guard = pending[position]
                if guard < 0:
                    table = guards[position]
                    guard = table.edges[
                        bisect(
                            table.cum_weights, rng_random() * table.total, 0, table.hi
                        )
                    ]
                    pending[position] = guard
                if marking[guard] >= 1:
                    queue.append(node)

        # 3. Fire to a fixpoint.  Every marking change updates the consumer's
        #    deficit on a < 1 threshold crossing and enqueues newly-enabled
        #    nodes, so no sweeps over the full node set are needed.
        firings = self.firings
        fired_order: List[int] = [] if record else None  # type: ignore[assignment]
        arrivals = self._arrivals
        depth = self._depth
        cycle = self.cycle
        in_edges = self._in_edges
        out_zero = self._out_zero
        out_delayed = self._out_delayed
        while queue:
            node = queue.pop()
            if fired[node]:
                continue
            if is_early[node]:
                if marking[pending[early_slot[node]]] < 1:
                    continue
            elif deficit[node] != 0:
                continue
            fired[node] = True
            firings[node] += 1
            if record:
                fired_order.append(node)
            for edge in in_edges[node]:
                value = marking[edge] - 1
                marking[edge] = value
                if value == 0:  # crossed below 1; the consumer is this node
                    deficit[node] += 1
            if is_early[node]:
                pending[early_slot[node]] = -1
            for edge in out_zero[node]:
                value = marking[edge]
                marking[edge] = value + 1
                if value == 0:
                    consumer = cons[edge]
                    if is_early[consumer]:
                        if pending[early_slot[consumer]] == edge:
                            queue.append(consumer)
                    else:
                        remaining = deficit[consumer] - 1
                        deficit[consumer] = remaining
                        if remaining == 0:
                            if fired[consumer]:
                                next_ready.append(consumer)
                            else:
                                queue.append(consumer)
            for edge, latency in out_delayed[node]:
                arrivals[(cycle + latency) % depth].append(edge)
            if deficit[node] == 0:
                next_ready.append(node)

        self.cycle = cycle + 1
        return fired_order if record else None

    # -- full runs -------------------------------------------------------------

    def run(self, cycles: int, warmup: int = 0) -> BatchRunResult:
        """Simulate ``warmup + cycles`` cycles; measure over the last ``cycles``."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.cycle == 0 and _kernels.native_active():
            return self._run_kernel(cycles, warmup)
        step = self.step
        for _ in range(warmup):
            step()
        baseline = list(self.firings)
        for _ in range(cycles):
            step()
        window = [now - then for now, then in zip(self.firings, baseline)]
        rates = [count / cycles for count in window]
        throughput = sum(rates) / len(rates) if rates else 0.0
        return BatchRunResult(
            node_names=list(self._s.node_names),
            cycles=cycles,
            warmup=warmup,
            firings=np.asarray([window], dtype=np.int64),
            throughputs=np.asarray([throughput], dtype=np.float64),
        )

    def _run_kernel(self, cycles: int, warmup: int) -> BatchRunResult:
        """Whole-run lowering to the active native kernel (bit-identical).

        The python-visible state (marking, firings, deficits, arrival ring,
        ready list, RNG position) is synced back afterwards, so ``step()``
        continues exactly where a pure-python run would have.
        """
        run, window, throughput = _kernels.run_window(
            self._model, self._seed, cycles, warmup
        )
        num_edges = self._num_edges
        self.marking = run.marking.tolist()
        self.cycle = run.cycle
        self.firings = run.firings.tolist()
        self._pending = run.pending.tolist()
        self._deficit = run.deficit.tolist()
        self._arrivals = [
            run.ring_edges[
                slot * num_edges : slot * num_edges + int(run.ring_count[slot])
            ].tolist()
            for slot in range(self._depth)
        ]
        self._next_ready = run.next_ready[: int(run.io[2])].tolist()
        # Replay the consumed prefix of the guard stream so later step()
        # calls draw exactly what the pure-python run would have drawn.
        rng = random.Random(self._seed)
        for _ in range(run.draws_consumed()):
            rng.random()
        self._rng = rng
        return BatchRunResult(
            node_names=list(self._s.node_names),
            cycles=cycles,
            warmup=warmup,
            firings=np.asarray([window], dtype=np.int64),
            throughputs=np.asarray([throughput], dtype=np.float64),
        )

    # -- conveniences ----------------------------------------------------------

    def fired_names(self, fired_order: List[int]) -> List[str]:
        """Node names of a recorded fired list."""
        names = self._s.node_names
        return [names[node] for node in fired_order]
