"""Batch simulation API on top of the compiled engine.

Entry points:

* :func:`simulate_throughput_vector` — single-configuration throughput with
  template reuse and the throughput cache; this is what
  :func:`repro.gmg.simulation.simulate_throughput` and
  :func:`repro.elastic.simulator.simulate_elastic_throughput` call.
* :func:`simulate_configurations` — many configurations of the *same* RRG in
  one array program (lanes differ only in marking/latency vectors).  With the
  default shared seed each lane is bit-identical to a serial single run.
* :func:`simulate_replicas` — many independently-seeded replicas of one
  configuration, for variance estimation; defaults to the fast (numpy)
  guard sampler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.sim import cache as _cache
from repro.sim import kernels as _kernels
from repro.sim.engine import CompiledModel, VectorSimulator
from repro.sim.scalar import ScalarSimulator

Source = Union[RRG, RRConfiguration]


def run_models(
    models: Sequence[CompiledModel],
    seeds: Sequence[Optional[int]],
    cycles: int,
    warmup: int,
) -> List[float]:
    """Simulate one lane per compiled model; throughputs in input order.

    The executor choice is a pure performance decision — every path is
    bit-identical to a serial :class:`ScalarSimulator` run per lane:

    * a native kernel backend (numba / generated C) runs event-driven lanes
      through :mod:`repro.sim.kernels` (via the ``ScalarSimulator.run``
      lowering);
    * otherwise the array wavefront amortises its per-wave overhead across
      lanes, which wins once the batch is wide and the graph small enough
      that per-lane python work dominates; else event-driven python lanes.
    """
    if not models:
        return []
    use_wavefront = (
        len(models) >= 8
        and models[0].structure.num_nodes <= 128
        and not _kernels.native_active()
    )
    if not use_wavefront:
        return [
            float(
                ScalarSimulator(model, seed=seed)
                .run(cycles=cycles, warmup=warmup)
                .throughputs[0]
            )
            for model, seed in zip(models, seeds)
        ]
    markings = np.stack([model.marking0 for model in models])
    latencies = np.stack([model.latency for model in models])
    simulator = VectorSimulator(
        models[0], markings=markings, latencies=latencies, seeds=list(seeds)
    )
    run = simulator.run(cycles=cycles, warmup=warmup)
    return [float(value) for value in run.throughputs]


def default_warmup(cycles: int) -> int:
    """The warmup the wrappers use when none is given (reference default)."""
    return max(200, cycles // 10)


# Historical private name, kept for callers inside the package.
_default_warmup = default_warmup


def _resolve_vectors(
    source: Source,
    tokens: Optional[Dict[int, int]] = None,
    buffers: Optional[Dict[int, int]] = None,
) -> Tuple[RRG, Dict[int, int], Dict[int, int]]:
    if isinstance(source, RRConfiguration):
        rrg = source.rrg
        token_vector = source.token_vector()
        buffer_vector = source.buffer_vector()
    else:
        rrg = source
        token_vector = source.token_vector()
        buffer_vector = source.buffer_vector()
    if tokens is not None:
        token_vector.update({int(k): int(v) for k, v in tokens.items()})
    if buffers is not None:
        buffer_vector.update({int(k): int(v) for k, v in buffers.items()})
    return rrg, token_vector, buffer_vector


def simulate_throughput_vector(
    source: Source,
    cycles: int = 10000,
    warmup: Optional[int] = None,
    seed: Optional[int] = None,
    tokens: Optional[Dict[int, int]] = None,
    buffers: Optional[Dict[int, int]] = None,
    mode: str = "tgmg",
    use_cache: bool = True,
) -> float:
    """Estimate one configuration's throughput through the compiled engine."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    if warmup is None:
        warmup = _default_warmup(cycles)
    # An unseeded run must stay an independent random sample; only seeded
    # (deterministic) results are cacheable.
    if seed is None:
        use_cache = False
    rrg, token_vector, buffer_vector = _resolve_vectors(source, tokens, buffers)
    fingerprint = _cache.rrg_fingerprint(rrg)
    key = _cache.throughput_key(
        fingerprint, mode, token_vector, buffer_vector, cycles, warmup, seed
    )
    if use_cache:
        hit = _cache.cached_throughput(key)
        if hit is not None:
            return hit
    template = _cache.compiled_template_for(rrg, mode=mode)
    model = template.instantiate(token_vector, buffer_vector)
    # One lane: the event-driven engine beats the wavefront (no per-wave
    # array-call overhead); both are bit-identical to the reference.
    simulator = ScalarSimulator(model, seed=seed)
    value = float(simulator.run(cycles=cycles, warmup=warmup).throughputs[0])
    if use_cache:
        _cache.store_throughput(key, value)
    return value


def simulate_configurations(
    configurations: Sequence[RRConfiguration],
    cycles: int = 10000,
    warmup: Optional[int] = None,
    seed: Optional[int] = None,
    seeds: Optional[Sequence[Optional[int]]] = None,
    mode: str = "tgmg",
    use_cache: bool = True,
) -> List[float]:
    """Simulate many configurations of the same RRG in one batched run.

    All configurations must share the base graph structure (same nodes,
    edges and probabilities); they may differ arbitrarily in token/buffer
    vectors.  Each lane runs with its own compat-mode RNG seeded by ``seed``
    (or ``seeds[i]``), so the returned values are bit-identical to serial
    :func:`simulate_throughput_vector` calls.

    Returns one throughput per configuration, in input order.
    """
    if not configurations:
        return []
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    if warmup is None:
        warmup = _default_warmup(cycles)
    lane_seeds = list(seeds) if seeds is not None else [seed] * len(configurations)
    if len(lane_seeds) != len(configurations):
        raise ValueError("need one seed per configuration")

    base = configurations[0].rrg
    fingerprint = _cache.rrg_fingerprint(base)
    for configuration in configurations:
        if configuration.rrg is not base and (
            _cache.rrg_fingerprint(configuration.rrg) != fingerprint
        ):
            raise ValueError(
                "simulate_configurations requires configurations of the same RRG"
            )
    vectors = [
        (configuration.token_vector(), configuration.buffer_vector())
        for configuration in configurations
    ]
    return simulate_vectors(
        base,
        vectors,
        cycles=cycles,
        warmup=warmup,
        seeds=lane_seeds,
        mode=mode,
        use_cache=use_cache,
    )


def simulate_vectors(
    rrg: RRG,
    vectors: Sequence[Tuple[Dict[int, int], Dict[int, int]]],
    cycles: int = 10000,
    warmup: Optional[int] = None,
    seeds: Optional[Sequence[Optional[int]]] = None,
    mode: str = "tgmg",
    use_cache: bool = True,
) -> List[float]:
    """Simulate many (token, buffer) markings of one RRG in one batched run.

    The marking-level core of :func:`simulate_configurations`, exposed for
    callers (the optimization service) whose lanes are described by raw
    vectors rather than :class:`RRConfiguration` objects.  Each lane runs
    with its own compat-mode RNG, so results are bit-identical to serial
    :func:`simulate_throughput_vector` calls with the same vectors.
    """
    if not vectors:
        return []
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    if warmup is None:
        warmup = _default_warmup(cycles)
    lane_seeds = list(seeds) if seeds is not None else [None] * len(vectors)
    if len(lane_seeds) != len(vectors):
        raise ValueError("need one seed per lane")

    fingerprint = _cache.rrg_fingerprint(rrg)
    results: List[Optional[float]] = [None] * len(vectors)
    misses: List[int] = []
    keys: List[Tuple] = []
    for index, (token_vector, buffer_vector) in enumerate(vectors):
        key = _cache.throughput_key(
            fingerprint,
            mode,
            token_vector,
            buffer_vector,
            cycles,
            warmup,
            lane_seeds[index],
        )
        keys.append(key)
        # Unseeded lanes are independent random samples — never cached.
        cacheable = use_cache and lane_seeds[index] is not None
        hit = _cache.cached_throughput(key) if cacheable else None
        if hit is not None:
            results[index] = hit
        else:
            misses.append(index)

    if misses:
        template = _cache.compiled_template_for(rrg, mode=mode)
        models = [
            template.instantiate(vectors[i][0], vectors[i][1])
            for i in misses
        ]
        throughputs = run_models(
            models, [lane_seeds[i] for i in misses], cycles, warmup
        )
        for lane, index in enumerate(misses):
            value = throughputs[lane]
            results[index] = value
            if use_cache and lane_seeds[index] is not None:
                _cache.store_throughput(keys[index], value)

    return [float(value) for value in results]  # type: ignore[arg-type]


def simulate_replicas(
    source: Source,
    replicas: int,
    cycles: int = 10000,
    warmup: Optional[int] = None,
    seed: Optional[int] = None,
    mode: str = "tgmg",
    rng_mode: str = "fast",
) -> np.ndarray:
    """Simulate ``replicas`` independent runs of one configuration at once.

    Returns the per-replica throughput estimates (useful for confidence
    intervals on the sampling noise).  ``rng_mode="fast"`` (default) draws
    all guard samples from one numpy generator; ``"compat"`` gives every
    replica its own ``random.Random(seed + i)`` stream.
    """
    if replicas <= 0:
        raise ValueError("replicas must be positive")
    if warmup is None:
        warmup = _default_warmup(cycles)
    rrg, token_vector, buffer_vector = _resolve_vectors(source)
    template = _cache.compiled_template_for(rrg, mode=mode)
    model = template.instantiate(token_vector, buffer_vector)
    if rng_mode == "compat":
        seeds: Sequence[Optional[int]] = (
            [None] * replicas if seed is None else [seed + i for i in range(replicas)]
        )
    else:
        seeds = [seed] * replicas
    simulator = VectorSimulator(
        model, lanes=replicas, seeds=seeds, rng_mode=rng_mode
    )
    return simulator.run(cycles=cycles, warmup=warmup).throughputs
