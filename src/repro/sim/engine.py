"""Compiled, array-based simulation engine for elastic-system throughput.

The pure-Python simulators (:class:`repro.gmg.simulation.TGMGSimulator` and
:class:`repro.elastic.simulator.ElasticSimulator`) advance one node at a time
through dicts; they remain the *reference semantics oracle*.  This module
compiles the same synchronous semantics into flat numpy index arrays once and
then advances whole cycles with vectorized array operations:

* the graph structure becomes CSR-style in-edge lists plus per-edge
  producer/consumer index vectors,
* node/channel delays become per-edge latencies served from a ring buffer of
  pending-arrival rows (one ``O(E)`` add per cycle instead of per-token
  shift registers),
* the per-cycle firing fixpoint becomes a *levelized* wavefront: every
  enabled not-yet-fired node fires simultaneously, and the loop repeats until
  no new node fires.  Firing a node can never disable another one (each edge
  has a unique consumer, and production only adds tokens), so the per-cycle
  fired set is exactly the reference simulators' fixpoint,
* early-evaluation guards are drawn through tables that replicate
  ``random.Random.choices`` bit-for-bit (``rng_mode="compat"``, the default),
  so a run is firing-for-firing identical to the reference simulators under a
  shared seed.  ``rng_mode="fast"`` instead pre-draws guard samples in chunks
  from a numpy generator for batched replica sweeps.

Everything carries an explicit batch dimension: ``B`` independent lanes
(replicas and/or configurations of the same structure, which differ only in
their marking/latency vectors) advance through one array program.
"""

from __future__ import annotations

import random
from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.core.rrg import RRG
from repro.gmg.build import TGMGTemplate, ValueRef, build_template
from repro.gmg.graph import TGMG, GMGError
from repro.gmg.simulation import SimulationResult

#: Cycles of pre-drawn guard uniforms per chunk in ``rng_mode="fast"``.
_FAST_CHUNK = 1024

#: Cap on dense in/out edge slots per node for the sparse wavefront tail
#: (the actual count adapts to the graph's maximum degree).
_SLOTS = 8


@dataclass
class GuardTable:
    """Guard-selection table of one early-evaluation node.

    ``cum_weights``/``total``/``hi`` mirror the internals of
    ``random.Random.choices`` so that compat-mode draws consume the RNG stream
    exactly like the reference simulators do.
    """

    edges: np.ndarray  # engine edge ids of the node's in-edges, in order
    cum_weights: List[float]
    total: float
    hi: int
    cum_array: np.ndarray = field(default=None)  # same values, for fast mode
    edges_list: List[int] = field(default=None)  # same ids, for scalar draws

    def __post_init__(self) -> None:
        if self.cum_array is None:
            self.cum_array = np.asarray(self.cum_weights, dtype=np.float64)
        if self.edges_list is None:
            self.edges_list = [int(e) for e in self.edges]


class CompiledStructure:
    """Shape-only compile of a guarded marked graph: index arrays, no state."""

    def __init__(
        self,
        node_names: Sequence[str],
        early_flags: Sequence[bool],
        edge_src: Sequence[int],
        edge_dst: Sequence[int],
        guard_weights: Mapping[int, Sequence[float]],
        name: str = "compiled",
    ) -> None:
        self.name = name
        self.node_names = list(node_names)
        self.num_nodes = len(self.node_names)
        self.num_edges = len(edge_src)
        self.prod = np.asarray(edge_src, dtype=np.int64)
        self.cons = np.asarray(edge_dst, dtype=np.int64)

        in_lists: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for index in range(self.num_edges):
            in_lists[self.cons[index]].append(index)
        flat: List[int] = []
        ptr = [0]
        for lst in in_lists:
            flat.extend(lst)
            ptr.append(len(flat))
        self.in_idx = np.asarray(flat, dtype=np.int64)
        self.in_ptr = np.asarray(ptr, dtype=np.int64)

        self.early_pos = np.asarray(
            [i for i, early in enumerate(early_flags) if early], dtype=np.int64
        )
        self.guards: List[GuardTable] = []
        for node in self.early_pos:
            weights = list(guard_weights[int(node)])
            if any(w is None for w in weights):
                raise GMGError(
                    f"early-evaluation node {self.node_names[node]!r} has guards "
                    "without probabilities"
                )
            cum = list(accumulate(float(w) for w in weights))
            self.guards.append(
                GuardTable(
                    edges=self.in_idx[self.in_ptr[node] : self.in_ptr[node + 1]].copy(),
                    cum_weights=cum,
                    total=cum[-1] + 0.0,
                    hi=len(cum) - 1,
                )
            )

    @property
    def num_early(self) -> int:
        return len(self.early_pos)


@dataclass
class CompiledModel:
    """A compiled structure plus one concrete marking/latency instance."""

    structure: CompiledStructure
    marking0: np.ndarray  # (E,) int64 initial markings
    latency: np.ndarray  # (E,) int64 per-edge delivery latencies


class CompiledTemplate:
    """A compiled structure whose markings/latencies are symbolic.

    Mirrors :class:`repro.gmg.build.TGMGTemplate`: the structure depends only
    on the graph shape, while markings/latencies reference the source RRG's
    per-edge token (R0) and buffer (R) counts.  :meth:`instantiate` resolves
    them against concrete vectors in ``O(E)`` numpy work, so many
    configurations of the same RRG compile once and instantiate cheaply.
    """

    def __init__(
        self,
        structure: CompiledStructure,
        marking_refs: Sequence[ValueRef],
        latency_refs: Sequence[ValueRef],
        num_source_edges: int,
    ) -> None:
        self.structure = structure
        self.num_source_edges = num_source_edges
        self._mk = self._split_refs(marking_refs)
        self._lat = self._split_refs(latency_refs)

    @staticmethod
    def _split_refs(refs: Sequence[ValueRef]):
        const = np.zeros(len(refs), dtype=np.float64)
        tok_pos, tok_src, buf_pos, buf_src = [], [], [], []
        for position, ref in enumerate(refs):
            if ref.kind == "const":
                const[position] = ref.constant
            elif ref.kind == "tokens":
                tok_pos.append(position)
                tok_src.append(ref.edge_index)
            elif ref.kind == "buffers":
                buf_pos.append(position)
                buf_src.append(ref.edge_index)
            else:
                raise ValueError(f"unknown ValueRef kind {ref.kind!r}")
        return (
            const,
            np.asarray(tok_pos, dtype=np.int64),
            np.asarray(tok_src, dtype=np.int64),
            np.asarray(buf_pos, dtype=np.int64),
            np.asarray(buf_src, dtype=np.int64),
        )

    def _resolve(self, split, tok: np.ndarray, buf: np.ndarray) -> np.ndarray:
        const, tok_pos, tok_src, buf_pos, buf_src = split
        values = const.copy()
        if tok_pos.size:
            values[tok_pos] = tok[tok_src]
        if buf_pos.size:
            values[buf_pos] = buf[buf_src]
        return np.rint(values).astype(np.int64)

    def _resolve_batch(self, split, tok: np.ndarray, buf: np.ndarray) -> np.ndarray:
        const, tok_pos, tok_src, buf_pos, buf_src = split
        values = np.tile(const, (tok.shape[0], 1))
        if tok_pos.size:
            values[:, tok_pos] = tok[:, tok_src]
        if buf_pos.size:
            values[:, buf_pos] = buf[:, buf_src]
        return np.rint(values).astype(np.int64)

    def instantiate(
        self, tokens: Mapping[int, int], buffers: Mapping[int, int]
    ) -> CompiledModel:
        """Resolve the symbolic markings/latencies for one configuration."""
        tok = np.zeros(self.num_source_edges, dtype=np.float64)
        buf = np.zeros(self.num_source_edges, dtype=np.float64)
        for key, value in tokens.items():
            tok[int(key)] = value
        for key, value in buffers.items():
            buf[int(key)] = value
        marking0 = self._resolve(self._mk, tok, buf)
        latency = self._resolve(self._lat, tok, buf)
        if (latency < 0).any():
            raise GMGError("negative latency in compiled model")
        return CompiledModel(structure=self.structure, marking0=marking0, latency=latency)

    def instantiate_batch(
        self,
        tokens: np.ndarray,
        buffers: np.ndarray,
    ) -> List[CompiledModel]:
        """Resolve ``B`` configurations at once from dense vectors.

        ``tokens``/``buffers`` are ``(B, num_source_edges)`` arrays (source
        RRG edge order).  Each returned model is value-identical to a serial
        :meth:`instantiate` of the same vectors — lanes only amortise the
        resolution arithmetic.
        """
        tok = np.asarray(tokens, dtype=np.float64)
        buf = np.asarray(buffers, dtype=np.float64)
        if tok.ndim != 2 or tok.shape != buf.shape or (
            tok.shape[1] != self.num_source_edges
        ):
            raise ValueError(
                "tokens/buffers must both be (B, num_source_edges) arrays"
            )
        markings = self._resolve_batch(self._mk, tok, buf)
        latencies = self._resolve_batch(self._lat, tok, buf)
        if (latencies < 0).any():
            raise GMGError("negative latency in compiled model")
        return [
            CompiledModel(
                structure=self.structure,
                marking0=markings[lane],
                latency=latencies[lane],
            )
            for lane in range(tok.shape[0])
        ]


# -- compilers ----------------------------------------------------------------


def _validate_guards(
    node_names: Sequence[str],
    early_flags: Sequence[bool],
    in_lists: Mapping[int, Sequence[Optional[float]]],
    require_two_inputs: bool,
) -> None:
    for node, early in enumerate(early_flags):
        if not early:
            continue
        weights = in_lists[node]
        if require_two_inputs and len(weights) < 2:
            raise GMGError(
                f"early-evaluation node {node_names[node]!r} needs at least two inputs"
            )
        if not weights or any(w is None for w in weights):
            raise GMGError(
                f"early-evaluation node {node_names[node]!r} has guards without "
                "probabilities"
            )
        total = sum(weights)
        if abs(total - 1.0) > 1e-6:
            raise GMGError(
                f"guard probabilities of {node_names[node]!r} sum to {total}, "
                "expected 1.0"
            )


def compile_tgmg(tgmg: TGMG) -> CompiledModel:
    """Compile a numeric TGMG (node delays become out-edge latencies)."""
    tgmg.validate()
    node_names = [n.name for n in tgmg.nodes]
    index_of = {name: i for i, name in enumerate(node_names)}
    delays = {}
    for node in tgmg.nodes:
        if abs(node.delay - round(node.delay)) > 1e-9:
            raise GMGError(
                f"node {node.name!r} has non-integer delay {node.delay}; the "
                "synchronous simulator requires integer delays"
            )
        delays[node.name] = int(round(node.delay))
    early_flags = [n.early for n in tgmg.nodes]
    edge_src = [index_of[e.src] for e in tgmg.edges]
    edge_dst = [index_of[e.dst] for e in tgmg.edges]
    guard_weights = {
        index_of[n.name]: [e.probability for e in tgmg.in_edges(n.name)]
        for n in tgmg.early_nodes
    }
    structure = CompiledStructure(
        node_names, early_flags, edge_src, edge_dst, guard_weights, name=tgmg.name
    )
    marking0 = np.asarray([e.marking for e in tgmg.edges], dtype=np.int64)
    latency = np.asarray([delays[e.src] for e in tgmg.edges], dtype=np.int64)
    return CompiledModel(structure=structure, marking0=marking0, latency=latency)


def compile_template(rrg: RRG, refine: bool = True) -> CompiledTemplate:
    """Compile the TGMG template of an RRG (Procedures 1 and 2), symbolically.

    The TGMG node delays (R of the feeding channel, or 0/1 constants) become
    the latencies of the node's out-edges; per-configuration token/buffer
    vectors are resolved later by :meth:`CompiledTemplate.instantiate`.
    """
    template: TGMGTemplate = build_template(rrg, refine=refine)
    node_names = [n.name for n in template.nodes]
    index_of = {name: i for i, name in enumerate(node_names)}
    early_flags = [n.early for n in template.nodes]
    delay_ref = {n.name: n.delay for n in template.nodes}

    edge_src = [index_of[e.src] for e in template.edges]
    edge_dst = [index_of[e.dst] for e in template.edges]
    in_probs: Mapping[int, List[Optional[float]]] = {
        i: [] for i in range(len(node_names))
    }
    for edge, dst in zip(template.edges, edge_dst):
        in_probs[dst].append(edge.probability)
    _validate_guards(node_names, early_flags, in_probs, require_two_inputs=True)

    guard_weights = {
        i: in_probs[i] for i, early in enumerate(early_flags) if early
    }
    structure = CompiledStructure(
        node_names,
        early_flags,
        edge_src,
        edge_dst,
        guard_weights,
        name=f"{rrg.name}-tgmg",
    )
    marking_refs = [e.marking for e in template.edges]
    latency_refs = [delay_ref[e.src] for e in template.edges]
    return CompiledTemplate(structure, marking_refs, latency_refs, rrg.num_edges)


def compile_elastic_template(rrg: RRG) -> CompiledTemplate:
    """Compile the structural elastic-circuit semantics of an RRG.

    One engine node per block (delay 0), one engine edge per channel whose
    latency is the channel's EB count R and whose marking is its token count
    R0 — exactly the state :class:`repro.elastic.simulator.ElasticSimulator`
    tracks through chains and channels.
    """
    node_names = [n.name for n in rrg.nodes]
    index_of = {name: i for i, name in enumerate(node_names)}
    early_flags = [n.early for n in rrg.nodes]
    edge_src = [index_of[e.src] for e in rrg.edges]
    edge_dst = [index_of[e.dst] for e in rrg.edges]
    in_probs: Mapping[int, List[Optional[float]]] = {
        i: [] for i in range(len(node_names))
    }
    for edge, dst in zip(rrg.edges, edge_dst):
        in_probs[dst].append(edge.probability)
    _validate_guards(node_names, early_flags, in_probs, require_two_inputs=False)
    guard_weights = {i: in_probs[i] for i, early in enumerate(early_flags) if early}
    structure = CompiledStructure(
        node_names,
        early_flags,
        edge_src,
        edge_dst,
        guard_weights,
        name=f"{rrg.name}-elastic",
    )
    marking_refs = [ValueRef.tokens(e.index) for e in rrg.edges]
    latency_refs = [ValueRef.buffers(e.index) for e in rrg.edges]
    return CompiledTemplate(structure, marking_refs, latency_refs, rrg.num_edges)


# -- the simulator ------------------------------------------------------------


@dataclass
class BatchRunResult:
    """Measured window of a (possibly batched) vectorized run."""

    node_names: List[str]
    cycles: int
    warmup: int
    firings: np.ndarray  # (B, N) firing counts over the measured window
    throughputs: np.ndarray  # (B,) mean per-node firing rate per lane

    @property
    def lanes(self) -> int:
        return self.firings.shape[0]

    def result(self, lane: int = 0) -> SimulationResult:
        """The lane's outcome in the reference simulator's result type."""
        counts = {
            name: int(c) for name, c in zip(self.node_names, self.firings[lane])
        }
        rates = {name: count / self.cycles for name, count in counts.items()}
        return SimulationResult(
            throughput=float(self.throughputs[lane]),
            cycles=self.cycles,
            warmup=self.warmup,
            firings=counts,
            rates=rates,
        )


class VectorSimulator:
    """Advance ``B`` independent lanes of one compiled structure.

    Lanes share the index arrays (the structure) and may differ in initial
    marking, per-edge latency and RNG seed — which is exactly how many
    configurations and/or replicas of the same RRG stack into one array
    program.

    Args:
        model: Compiled model providing the structure and default
            marking/latency vectors.
        lanes: Number of lanes when ``markings`` is not given.
        markings: Optional ``(B, E)`` initial-marking override.
        latencies: Optional ``(B, E)`` or ``(E,)`` latency override.
        seeds: Per-lane seeds (``rng_mode="compat"``); a single value is
            broadcast to every lane.
        rng_mode: ``"compat"`` replicates ``random.Random.choices`` draw for
            draw (bit-identical to the reference simulators under a shared
            seed); ``"fast"`` pre-draws guard uniforms in chunks from one
            ``numpy`` generator (seeded by the first seed).
    """

    def __init__(
        self,
        model: CompiledModel,
        *,
        lanes: Optional[int] = None,
        markings: Optional[np.ndarray] = None,
        latencies: Optional[np.ndarray] = None,
        seeds: Optional[Sequence[Optional[int]]] = None,
        rng_mode: str = "compat",
    ) -> None:
        if rng_mode not in ("compat", "fast"):
            raise ValueError(f"unknown rng_mode {rng_mode!r}")
        structure = model.structure
        self._s = structure
        num_edges = structure.num_edges

        if markings is None:
            batch = lanes if lanes is not None else 1
            markings = np.tile(model.marking0, (batch, 1))
        else:
            markings = np.array(markings, dtype=np.int64, ndmin=2)
        self._batch = markings.shape[0]
        if markings.shape != (self._batch, num_edges):
            raise ValueError("markings must have shape (B, num_edges)")

        if latencies is None:
            latencies = model.latency
        latencies = np.array(latencies, dtype=np.int64, ndmin=2)
        if latencies.shape[0] == 1 and self._batch > 1:
            latencies = np.tile(latencies, (self._batch, 1))
        if latencies.shape != (self._batch, num_edges):
            raise ValueError("latencies must have shape (B, num_edges)")
        if (latencies < 0).any():
            raise ValueError("latencies must be non-negative")

        if seeds is None or isinstance(seeds, (int, float)):
            seeds = [seeds] * self._batch  # type: ignore[list-item]
        if len(seeds) != self._batch:
            raise ValueError("need one seed per lane")
        self._seeds = list(seeds)
        self.rng_mode = rng_mode

        self._init_marking = markings.astype(np.int64)
        self._latency = latencies
        self._depth = int(latencies.max()) + 1 if num_edges else 1
        self._zero_lat = self._latency == 0
        self._zero_pad = np.zeros((self._batch, num_edges + 1), dtype=bool)
        self._zero_pad[:, :num_edges] = self._zero_lat
        self._zero_flat = self._zero_pad.reshape(-1)
        lane_index, edge_index = np.nonzero(self._latency > 0)
        self._nz_cols = lane_index * num_edges + edge_index
        self._nz_lat = self._latency[lane_index, edge_index]

        # The marking array carries one extra *sentinel* column pinned at 1.
        # Every node's in-edge list is padded to two dense slots with the
        # sentinel, so the enabled test for the (dominant) in-degree <= 2
        # nodes is two flat gathers + compares — no segment reduction.  Nodes
        # with more inputs get a tiny logical_and.reduceat over the leftover
        # in-edges only.  Flat indices are precomputed per lane.
        sentinel = num_edges
        stride = num_edges + 1
        lane_off = (np.arange(self._batch, dtype=np.int64) * stride)[:, None]
        self._lane_off_pad = lane_off
        in_ptr, in_idx = structure.in_ptr, structure.in_idx
        col0 = np.full(structure.num_nodes, sentinel, dtype=np.int64)
        col1 = np.full(structure.num_nodes, sentinel, dtype=np.int64)
        hi_nodes: List[int] = []
        hi_idx: List[int] = []
        hi_starts: List[int] = []
        for node in range(structure.num_nodes):
            lo, hi = int(in_ptr[node]), int(in_ptr[node + 1])
            degree = hi - lo
            if degree >= 1:
                col0[node] = in_idx[lo]
            if degree >= 2:
                col1[node] = in_idx[lo + 1]
            if degree > 2:
                hi_nodes.append(node)
                hi_starts.append(len(hi_idx))
                hi_idx.extend(int(e) for e in in_idx[lo + 2 : hi])
        self._col0_flat = col0[None, :] + lane_off
        self._col1_flat = col1[None, :] + lane_off
        self._hi_nodes = np.asarray(hi_nodes, dtype=np.int64)
        self._hi_starts = np.asarray(hi_starts, dtype=np.int64)
        self._hi_flat = (
            np.asarray(hi_idx, dtype=np.int64)[None, :] + lane_off
            if hi_idx
            else np.zeros((self._batch, 0), dtype=np.int64)
        )

        # Sparse-wave structures: after the first dense wave only consumers
        # of freshly produced zero-latency edges can become enabled, so later
        # waves run on that small candidate set.  In- and out-edges are
        # padded to ``_SLOTS`` dense columns; the rare candidates with more
        # edges than that trigger a dense fallback wave.
        slots_in: List[np.ndarray] = []
        slots_out: List[np.ndarray] = []
        out_lists: List[List[int]] = [[] for _ in range(structure.num_nodes)]
        for edge in range(num_edges):
            out_lists[int(structure.prod[edge])].append(edge)
        in_degrees = np.diff(in_ptr)
        out_degrees = np.asarray([len(lst) for lst in out_lists] or [0])
        max_degree = int(max(in_degrees.max() if len(in_degrees) else 0,
                             out_degrees.max() if len(out_degrees) else 0, 1))
        num_slots = min(_SLOTS, max_degree)
        for position in range(num_slots):
            column_in = np.full(structure.num_nodes, sentinel, dtype=np.int64)
            column_out = np.full(structure.num_nodes, sentinel, dtype=np.int64)
            for node in range(structure.num_nodes):
                lo, hi = int(in_ptr[node]), int(in_ptr[node + 1])
                if hi - lo > position:
                    column_in[node] = in_idx[lo + position]
                if len(out_lists[node]) > position:
                    column_out[node] = out_lists[node][position]
            slots_in.append(column_in)
            slots_out.append(column_out)
        self._slots_in_flat = [column[None, :] + lane_off for column in slots_in]
        self._slots_out_n = slots_out
        self._slots_out_flat = [column[None, :] + lane_off for column in slots_out]
        self._in_hi = in_degrees > num_slots
        self._out_hi = out_degrees > num_slots
        # Sparse waves only pay off when the dense wave is wide; for small
        # graphs the candidate bookkeeping costs more than it saves.
        self._use_sparse = structure.num_nodes > 96
        self._early_member = np.zeros(structure.num_nodes, dtype=bool)
        self._early_slot_arr = np.full(structure.num_nodes, -1, dtype=np.int64)
        for slot, node in enumerate(structure.early_pos):
            self._early_member[node] = True
            self._early_slot_arr[node] = slot
        self.reset()

    # -- state ----------------------------------------------------------------

    def reset(self) -> None:
        """Restore every lane's initial marking and clear all statistics."""
        structure = self._s
        batch, num_edges = self._batch, structure.num_edges
        self._marking_pad = np.ones((batch, num_edges + 1), dtype=np.int64)
        self._marking_pad[:, :num_edges] = self._init_marking
        self.marking = self._marking_pad[:, :num_edges]
        self._marking_flat = self._marking_pad.reshape(-1)
        self._arrivals = np.zeros((self._depth, batch * num_edges), dtype=np.int64)
        self.cycle = 0
        self.firings = np.zeros((batch, structure.num_nodes), dtype=np.int64)
        self._pending = np.full((batch, structure.num_early), -1, dtype=np.int64)
        self._fired = np.zeros((batch, structure.num_nodes), dtype=bool)
        self._enabled = np.zeros((batch, structure.num_nodes), dtype=bool)
        self._scratch = np.zeros((batch, structure.num_nodes), dtype=bool)
        self._wave = np.zeros((batch, structure.num_nodes), dtype=bool)
        if self.rng_mode == "compat":
            self._rngs = [random.Random(seed) for seed in self._seeds]
            # Python mirror of ``_pending`` for the draw loop (numpy scalar
            # reads are an order of magnitude slower than list indexing).
            self._pending_rows = [
                [-1] * structure.num_early for _ in range(batch)
            ]
        else:
            self._fast_rng = np.random.default_rng(self._seeds[0])
            self._fast_buf: Optional[np.ndarray] = None
            self._fast_row = 0

    # -- guard sampling --------------------------------------------------------

    def _draw_guards_compat(self) -> None:
        # The python rows are authoritative for the draw checks; every drawn
        # value is mirrored into the numpy array the fixpoint gathers from.
        guards = self._s.guards
        pending = self._pending
        for lane, rng in enumerate(self._rngs):
            row = self._pending_rows[lane]
            for position, table in enumerate(guards):
                if row[position] < 0:
                    choice = bisect(
                        table.cum_weights,
                        rng.random() * table.total,
                        0,
                        table.hi,
                    )
                    edge = table.edges_list[choice]
                    row[position] = edge
                    pending[lane, position] = edge

    def _draw_guards_fast(self) -> None:
        pending = self._pending
        need = pending < 0
        if self._fast_buf is None or self._fast_row >= _FAST_CHUNK:
            self._fast_buf = self._fast_rng.random(
                (_FAST_CHUNK, self._batch, self._s.num_early)
            )
            self._fast_row = 0
        uniforms = self._fast_buf[self._fast_row]
        self._fast_row += 1
        if not need.any():
            return
        for position in np.nonzero(need.any(axis=0))[0]:
            table = self._s.guards[position]
            lanes = need[:, position]
            choice = np.searchsorted(
                table.cum_array, uniforms[lanes, position] * table.total, side="right"
            )
            pending[lanes, position] = table.edges[np.minimum(choice, table.hi)]

    # -- single cycle ----------------------------------------------------------

    def step(self, record: bool = False) -> Optional[np.ndarray]:
        """Advance one clock cycle on every lane.

        Returns the ``(B, N)`` fired mask when ``record`` is true.
        """
        structure = self._s
        marking = self.marking
        batch, num_edges = self._batch, structure.num_edges

        # 1. Deliver tokens whose latency elapsed this cycle.
        row = self.cycle % self._depth
        marking += self._arrivals[row].reshape(batch, num_edges)
        self._arrivals[row] = 0

        # 2. Early nodes without a held guard sample one (same RNG stream and
        #    node order as the reference simulators).
        if structure.num_early:
            if self.rng_mode == "compat":
                self._draw_guards_compat()
            else:
                self._draw_guards_fast()
            guard_flat = self._pending + self._lane_off_pad

        # 3. Levelized firing fixpoint: fire every enabled not-yet-fired node
        #    simultaneously; repeat until the wavefront is empty.  Firing can
        #    only enable (never disable) other nodes, so this reaches the same
        #    unique fixpoint as the reference per-node sweeps.
        fired = self._fired
        fired[:] = False
        enabled = self._enabled
        scratch = self._scratch
        wave = self._wave
        flat = self._marking_flat
        zero_flat = self._zero_flat
        col0, col1 = self._col0_flat, self._col1_flat
        hi_nodes = self._hi_nodes
        cons_arr = structure.cons
        candidates: Optional[np.ndarray] = None
        while True:
            if candidates is None:
                # Dense wave over every node.  Enabled = every in-edge
                # marked; in-degree <= 2 handled by two flat gathers (the
                # sentinel column is pinned at 1), the few higher-degree
                # nodes by a small reduce over their extra in-edges.
                np.greater_equal(flat.take(col0), 1, out=enabled)
                np.greater_equal(flat.take(col1), 1, out=scratch)
                np.logical_and(enabled, scratch, out=enabled)
                if hi_nodes.size:
                    extra = np.logical_and.reduceat(
                        flat.take(self._hi_flat) >= 1, self._hi_starts, axis=1
                    )
                    enabled[:, hi_nodes] &= extra
                if structure.num_early:
                    # Guard edges are fixed for the whole cycle (pending
                    # never changes inside the fixpoint).
                    enabled[:, structure.early_pos] = flat[guard_flat] >= 1
                np.logical_not(fired, out=wave)
                np.logical_and(enabled, wave, out=wave)
                if not wave.any():
                    break
                np.logical_or(fired, wave, out=fired)
                # Each edge has a unique consumer/producer, so plain fancy
                # indexing (no duplicate targets) consumes and produces.
                marking -= wave[:, cons_arr]
                produced = wave[:, structure.prod]
                np.logical_and(produced, self._zero_lat, out=produced)
                marking += produced
                active = np.nonzero(produced.any(axis=0))[0]
                if active.size == 0:
                    break  # nothing produced combinationally -> fixpoint
                if not self._use_sparse:
                    continue  # stay dense; small graphs don't benefit
                candidates = cons_arr[active]
            else:
                # Sparse wave: only consumers of freshly produced
                # zero-latency edges can have become enabled.
                group = candidates
                in_cols = [column[:, group] for column in self._slots_in_flat]
                enab = flat[in_cols[0]] >= 1
                for column in in_cols[1:]:
                    enab &= flat[column] >= 1
                early_here = np.nonzero(self._early_member[group])[0]
                if early_here.size:
                    slots = self._early_slot_arr[group[early_here]]
                    enab[:, early_here] = flat[guard_flat[:, slots]] >= 1
                fired_here = fired[:, group]
                new_fire = enab & ~fired_here
                if not new_fire.any():
                    break
                fired[:, group] = fired_here | new_fire
                for column in in_cols:
                    flat[column] -= new_fire
                # Sentinel slots soaked up the writes for missing in-edges;
                # restore the pinned 1 before the next gather.
                self._marking_pad[:, -1] = 1
                produced_chunks = []
                for position, column in enumerate(self._slots_out_flat):
                    out_col = column[:, group]
                    add = new_fire & zero_flat[out_col]
                    flat[out_col] += add
                    produced_chunks.append(
                        self._slots_out_n[position][group][add.any(axis=0)]
                    )
                produced_edges = np.concatenate(produced_chunks)
                if produced_edges.size == 0:
                    break
                # Duplicate candidates are harmless (all sparse updates are
                # idempotent per column), so skip the dedup pass.
                candidates = cons_arr[produced_edges]
            if candidates is not None and (
                self._in_hi[candidates].any() or self._out_hi[candidates].any()
            ):
                candidates = None  # rare awkward nodes: run a dense wave

        # 4. Enqueue delayed deliveries, once per cycle, into the ring rows.
        if self._nz_cols.size:
            produced = fired[:, structure.prod].ravel()[self._nz_cols]
            slot = self._nz_lat + row
            slot[slot >= self._depth] -= self._depth
            self._arrivals[slot, self._nz_cols] += produced

        self.firings += fired
        if structure.num_early:
            fired_early = fired[:, structure.early_pos]
            self._pending[fired_early] = -1
            if self.rng_mode == "compat":
                rows = self._pending_rows
                for lane, position in zip(*np.nonzero(fired_early)):
                    rows[lane][position] = -1
        self.cycle += 1
        return fired.copy() if record else None

    # -- full runs -------------------------------------------------------------

    def run(self, cycles: int, warmup: int = 0) -> BatchRunResult:
        """Simulate ``warmup + cycles`` cycles; measure over the last ``cycles``."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        for _ in range(warmup):
            self.step()
        baseline = self.firings.copy()
        for _ in range(cycles):
            self.step()
        window = self.firings - baseline
        # Python-float reduction in node order: the reported throughput is the
        # same double the reference simulators compute for identical firings.
        throughputs = np.empty(self._batch, dtype=np.float64)
        for lane in range(self._batch):
            rates = [int(count) / cycles for count in window[lane]]
            throughputs[lane] = sum(rates) / len(rates) if rates else 0.0
        return BatchRunResult(
            node_names=list(self._s.node_names),
            cycles=cycles,
            warmup=warmup,
            firings=window,
            throughputs=throughputs,
        )

    # -- conveniences ----------------------------------------------------------

    @property
    def lanes(self) -> int:
        return self._batch

    def fired_names(self, mask: np.ndarray, lane: int = 0) -> List[str]:
        """Node names set in a recorded fired mask for one lane."""
        return [
            self._s.node_names[i] for i in np.nonzero(mask[lane])[0]
        ]
