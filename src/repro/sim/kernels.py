"""Lowered simulation kernels for the event-driven engine.

The pure-python :class:`repro.sim.scalar.ScalarSimulator` advances one lane
with event-driven bookkeeping; its inner loop is the cost center of every
search evaluation.  This module lowers that exact loop — same worklist, same
threshold crossings, same ``random.Random``-compatible guard draws — to a
real kernel:

* ``numba`` — ``@njit`` of the single-source array program, when numba is
  importable;
* ``c`` — the same program emitted as C, compiled once per machine with the
  system C compiler and loaded through ``ctypes`` (the near-native fallback
  for environments without numba);
* ``python`` — the mandatory fallback: the list-based ``ScalarSimulator``
  loop itself (and, for lane batches of small graphs, the
  :class:`repro.sim.engine.VectorSimulator` wavefront).  Every backend is
  firing-for-firing identical, so results never depend on which one ran.

Selection happens at import time from ``REPRO_SIM_KERNEL``:

* ``auto`` (default) — numba if importable, else the generated-C path if a
  C compiler is on ``PATH``, else pure python;
* ``numba`` / ``c`` — require that backend (raise if unavailable);
* ``python`` — force the pure-python fallback.

Native backends are *materialized* lazily (numba jit / C compile happen at
first use, guarded by a lock); under ``auto`` a materialization failure
demotes to the next backend and records the reason in :func:`kernel_info`.

Bit-identical RNG: guard draws must consume the stream of one fresh
``random.Random(seed)`` in exactly the reference order (cycle start, early
node order, only when no guard is held).  The kernel cannot call back into
python per draw, so uniforms are pre-drawn in chunks into a buffer; the
kernel consumes them sequentially and returns for a refill when the buffer
cannot cover a cycle's worst case.  The total number of draws *consumed* is
tracked, so callers can replay an equivalent ``random.Random`` to continue
a run in pure python.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import random
import shutil
import subprocess
import tempfile
import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

import numpy as np

_ENV_VAR = "REPRO_SIM_KERNEL"
_CACHE_ENV_VAR = "REPRO_SIM_KERNEL_CACHE"
_BACKENDS = ("auto", "numba", "c", "python")

#: Pre-drawn guard uniforms per refill chunk.
_UNIFORM_CHUNK = 1 << 15


# -- the single-source kernel program -----------------------------------------
#
# One cycle of the event-driven engine over flat int64/float64 arrays; the
# body is a statement-for-statement mirror of ``ScalarSimulator.step`` (same
# worklist order, same threshold crossings, same guard-draw positions), so
# markings, firings and RNG consumption are bit-identical.  The function is
# written in the numba-compatible subset of python: it runs as-is (slow, used
# by the parity tests), under ``@njit``, and as generated C below.
#
# State is carried in the arrays plus ``io``: ``io[0]`` the cycle counter,
# ``io[1]`` the uniform cursor, ``io[2]`` the persistent ready-list length.
# Returns 0 after ``max_cycles`` cycles, or 1 when the uniform buffer cannot
# cover another cycle (caller refills and re-invokes).


def _kernel_cycles(
    max_cycles, num_nodes, num_edges, num_early, depth,
    cons, in_ptr, in_idx, out_ptr, out_idx,
    early_nodes, early_slot,
    guard_ptr, guard_edges, guard_cumw, guard_total, guard_hi,
    latency, marking, deficit, pending, firings,
    ring_count, ring_edges, queue, next_ready, fired_cycle,
    uniforms, u_len, io,
):
    cycle = io[0]
    u_index = io[1]
    nr_len = io[2]
    done = 0
    while done < max_cycles:
        if num_early > 0 and u_index + num_early > u_len:
            io[0] = cycle
            io[1] = u_index
            io[2] = nr_len
            return 1
        # The worklist starts from the simple nodes whose deficit was zero
        # at the last cycle boundary.
        qlen = nr_len
        for i in range(nr_len):
            queue[i] = next_ready[i]
        nr_len = 0

        # 1. Deliver tokens whose latency elapsed this cycle.
        slot = cycle % depth
        base = slot * num_edges
        count = ring_count[slot]
        for i in range(count):
            edge = ring_edges[base + i]
            value = marking[edge]
            marking[edge] = value + 1
            if value == 0:  # crossed into >= 1
                consumer = cons[edge]
                position = early_slot[consumer]
                if position >= 0:
                    if pending[position] == edge:
                        queue[qlen] = consumer
                        qlen += 1
                else:
                    remaining = deficit[consumer] - 1
                    deficit[consumer] = remaining
                    if remaining == 0:
                        queue[qlen] = consumer
                        qlen += 1
        ring_count[slot] = 0

        # 2. Early nodes without a held guard sample one, in node order.
        for position in range(num_early):
            guard = pending[position]
            if guard < 0:
                x = uniforms[u_index] * guard_total[position]
                u_index += 1
                gbase = guard_ptr[position]
                hi = guard_hi[position]
                k = 0
                while k < hi and guard_cumw[gbase + k] <= x:
                    k += 1
                guard = guard_edges[gbase + k]
                pending[position] = guard
            if marking[guard] >= 1:
                queue[qlen] = early_nodes[position]
                qlen += 1

        # 3. Fire to a fixpoint.
        while qlen > 0:
            qlen -= 1
            node = queue[qlen]
            if fired_cycle[node] == cycle:
                continue
            position = early_slot[node]
            if position >= 0:
                guard = pending[position]
                if guard < 0:  # mirror python list[-1] (unreachable in practice)
                    guard += num_edges
                if marking[guard] < 1:
                    continue
            elif deficit[node] != 0:
                continue
            fired_cycle[node] = cycle
            firings[node] += 1
            for k in range(in_ptr[node], in_ptr[node + 1]):
                edge = in_idx[k]
                value = marking[edge] - 1
                marking[edge] = value
                if value == 0:  # crossed below 1; the consumer is this node
                    deficit[node] += 1
            if position >= 0:
                pending[position] = -1
            for k in range(out_ptr[node], out_ptr[node + 1]):
                edge = out_idx[k]
                lat = latency[edge]
                if lat == 0:
                    value = marking[edge]
                    marking[edge] = value + 1
                    if value == 0:
                        consumer = cons[edge]
                        cpos = early_slot[consumer]
                        if cpos >= 0:
                            if pending[cpos] == edge:
                                queue[qlen] = consumer
                                qlen += 1
                        else:
                            remaining = deficit[consumer] - 1
                            deficit[consumer] = remaining
                            if remaining == 0:
                                if fired_cycle[consumer] == cycle:
                                    next_ready[nr_len] = consumer
                                    nr_len += 1
                                else:
                                    queue[qlen] = consumer
                                    qlen += 1
                else:
                    target = slot + lat
                    if target >= depth:
                        target -= depth
                    ring_edges[target * num_edges + ring_count[target]] = edge
                    ring_count[target] += 1
            if deficit[node] == 0:
                next_ready[nr_len] = node
                nr_len += 1

        cycle += 1
        done += 1
    io[0] = cycle
    io[1] = u_index
    io[2] = nr_len
    return 0


# -- generated C mirror --------------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>

typedef int64_t I64;

I64 repro_sim_kernel(
    I64 max_cycles, I64 num_nodes, I64 num_edges, I64 num_early, I64 depth,
    const I64 *cons, const I64 *in_ptr, const I64 *in_idx,
    const I64 *out_ptr, const I64 *out_idx,
    const I64 *early_nodes, const I64 *early_slot,
    const I64 *guard_ptr, const I64 *guard_edges,
    const double *guard_cumw, const double *guard_total, const I64 *guard_hi,
    const I64 *latency,
    I64 *marking, I64 *deficit, I64 *pending, I64 *firings,
    I64 *ring_count, I64 *ring_edges,
    I64 *queue, I64 *next_ready, I64 *fired_cycle,
    const double *uniforms, I64 u_len, I64 *io)
{
    I64 cycle = io[0];
    I64 u_index = io[1];
    I64 nr_len = io[2];
    I64 done = 0;
    (void)num_nodes;
    while (done < max_cycles) {
        if (num_early > 0 && u_index + num_early > u_len) {
            io[0] = cycle; io[1] = u_index; io[2] = nr_len;
            return 1;
        }
        I64 qlen = nr_len;
        for (I64 i = 0; i < nr_len; i++) queue[i] = next_ready[i];
        nr_len = 0;

        /* 1. deliveries */
        I64 slot = cycle % depth;
        I64 *bucket = ring_edges + slot * num_edges;
        I64 count = ring_count[slot];
        for (I64 i = 0; i < count; i++) {
            I64 edge = bucket[i];
            I64 value = marking[edge];
            marking[edge] = value + 1;
            if (value == 0) {
                I64 consumer = cons[edge];
                I64 position = early_slot[consumer];
                if (position >= 0) {
                    if (pending[position] == edge) queue[qlen++] = consumer;
                } else {
                    I64 remaining = deficit[consumer] - 1;
                    deficit[consumer] = remaining;
                    if (remaining == 0) queue[qlen++] = consumer;
                }
            }
        }
        ring_count[slot] = 0;

        /* 2. guard draws */
        for (I64 position = 0; position < num_early; position++) {
            I64 guard = pending[position];
            if (guard < 0) {
                double x = uniforms[u_index++] * guard_total[position];
                I64 gbase = guard_ptr[position];
                I64 hi = guard_hi[position];
                I64 k = 0;
                while (k < hi && guard_cumw[gbase + k] <= x) k++;
                guard = guard_edges[gbase + k];
                pending[position] = guard;
            }
            if (marking[guard] >= 1) queue[qlen++] = early_nodes[position];
        }

        /* 3. firing fixpoint */
        while (qlen > 0) {
            I64 node = queue[--qlen];
            if (fired_cycle[node] == cycle) continue;
            I64 position = early_slot[node];
            if (position >= 0) {
                I64 guard = pending[position];
                if (guard < 0) guard += num_edges;
                if (marking[guard] < 1) continue;
            } else if (deficit[node] != 0) continue;
            fired_cycle[node] = cycle;
            firings[node]++;
            for (I64 k = in_ptr[node]; k < in_ptr[node + 1]; k++) {
                I64 edge = in_idx[k];
                I64 value = marking[edge] - 1;
                marking[edge] = value;
                if (value == 0) deficit[node]++;
            }
            if (position >= 0) pending[position] = -1;
            for (I64 k = out_ptr[node]; k < out_ptr[node + 1]; k++) {
                I64 edge = out_idx[k];
                I64 lat = latency[edge];
                if (lat == 0) {
                    I64 value = marking[edge];
                    marking[edge] = value + 1;
                    if (value == 0) {
                        I64 consumer = cons[edge];
                        I64 cpos = early_slot[consumer];
                        if (cpos >= 0) {
                            if (pending[cpos] == edge) queue[qlen++] = consumer;
                        } else {
                            I64 remaining = deficit[consumer] - 1;
                            deficit[consumer] = remaining;
                            if (remaining == 0) {
                                if (fired_cycle[consumer] == cycle)
                                    next_ready[nr_len++] = consumer;
                                else
                                    queue[qlen++] = consumer;
                            }
                        }
                    }
                } else {
                    I64 target = slot + lat;
                    if (target >= depth) target -= depth;
                    ring_edges[target * num_edges + ring_count[target]] = edge;
                    ring_count[target]++;
                }
            }
            if (deficit[node] == 0) next_ready[nr_len++] = node;
        }

        cycle++;
        done++;
    }
    io[0] = cycle; io[1] = u_index; io[2] = nr_len;
    return 0;
}
"""


# -- backend selection ---------------------------------------------------------

_lock = threading.Lock()
_backend: str = "python"
_requested: str = "auto"
_materialized = False
_numba_kernel = None
_c_kernel = None
_info_notes: List[str] = []


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _select_backend() -> str:
    requested = (os.environ.get(_ENV_VAR) or "auto").strip().lower() or "auto"
    if requested not in _BACKENDS:
        raise ValueError(
            f"{_ENV_VAR}={requested!r} is not one of {', '.join(_BACKENDS)}"
        )
    global _requested
    _requested = requested
    if requested == "python":
        return "python"
    if requested in ("auto", "numba"):
        try:
            import numba  # noqa: F401

            return "numba"
        except ImportError as exc:
            if requested == "numba":
                raise RuntimeError(
                    f"{_ENV_VAR}=numba but numba is not importable: {exc}"
                ) from exc
            _info_notes.append(f"numba unavailable: {exc}")
    if _find_compiler() is not None:
        return "c"
    if requested == "c":
        raise RuntimeError(f"{_ENV_VAR}=c but no C compiler is on PATH")
    _info_notes.append("no C compiler on PATH")
    return "python"


_backend = _select_backend()


def _build_c_kernel():
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache_dir = os.environ.get(_CACHE_ENV_VAR) or os.path.join(
        tempfile.gettempdir(), "repro-sim-kernels"
    )
    os.makedirs(cache_dir, exist_ok=True)
    lib_path = os.path.join(cache_dir, f"kernel-{digest}.so")
    if not os.path.exists(lib_path):
        src_path = os.path.join(cache_dir, f"kernel-{digest}.c")
        with open(src_path, "w", encoding="utf-8") as handle:
            handle.write(_C_SOURCE)
        compiler = _find_compiler()
        if compiler is None:
            raise RuntimeError("no C compiler on PATH")
        scratch = f"{lib_path}.tmp-{os.getpid()}"
        try:
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", scratch, src_path],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(scratch, lib_path)  # atomic under concurrent builders
        finally:
            if os.path.exists(scratch):
                os.unlink(scratch)
    library = ctypes.CDLL(lib_path)
    fn = library.repro_sim_kernel
    i64 = ctypes.c_int64
    i64_p = ctypes.POINTER(ctypes.c_int64)
    f64_p = ctypes.POINTER(ctypes.c_double)
    fn.restype = i64
    fn.argtypes = (
        [i64] * 5
        + [i64_p] * 7          # cons .. early_slot
        + [i64_p] * 2          # guard_ptr, guard_edges
        + [f64_p] * 2          # guard_cumw, guard_total
        + [i64_p]              # guard_hi
        + [i64_p] * 10         # latency .. fired_cycle
        + [f64_p, i64, i64_p]  # uniforms, u_len, io
    )
    fn._library = library  # keep the CDLL alive alongside the function
    return fn


def _materialize_locked() -> None:
    """Jit / compile the selected backend; demote under ``auto`` on failure."""
    global _backend, _materialized, _numba_kernel, _c_kernel
    if _materialized:
        return
    if _backend == "numba" and _numba_kernel is None:
        try:
            import numba

            _numba_kernel = numba.njit(cache=True, nogil=True)(_kernel_cycles)
        except Exception as exc:  # noqa: BLE001 — demote, never break callers
            if _requested == "numba":
                raise
            _info_notes.append(f"numba jit failed: {type(exc).__name__}: {exc}")
            _backend = "c" if _find_compiler() is not None else "python"
    if _backend == "c" and _c_kernel is None:
        try:
            _c_kernel = _build_c_kernel()
        except Exception as exc:  # noqa: BLE001
            if _requested == "c":
                raise
            _info_notes.append(f"C build failed: {type(exc).__name__}: {exc}")
            _backend = "python"
    _materialized = True


def kernel_backend() -> str:
    """The active backend name (``numba`` / ``c`` / ``python``), materialized."""
    with _lock:
        _materialize_locked()
        return _backend


def native_active() -> bool:
    """True when a compiled (numba or C) kernel is loaded and selected."""
    return kernel_backend() in ("numba", "c")


def kernel_info() -> dict:
    """Probe report: requested vs active backend and any demotion notes."""
    with _lock:
        _materialize_locked()
        return {
            "requested": _requested,
            "backend": _backend,
            "notes": list(_info_notes),
        }


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Force a backend for the duration of a block (tests and benchmarks).

    Raises ``RuntimeError`` when the requested backend cannot be
    materialized, so callers can skip gracefully.
    """
    if name not in ("numba", "c", "python"):
        raise ValueError(f"unknown backend {name!r}")
    global _backend, _requested, _materialized
    with _lock:
        _materialize_locked()
        saved = (_backend, _requested, _materialized)
        _requested = name
        _backend = name
        _materialized = False
        try:
            _materialize_locked()
        except Exception as exc:
            _backend, _requested, _materialized = saved
            if isinstance(exc, RuntimeError):
                raise
            raise RuntimeError(
                f"kernel backend {name!r} is unavailable: {exc}"
            ) from exc
    try:
        yield name
    finally:
        with _lock:
            _backend, _requested, _materialized = saved


# -- per-structure kernel plans ------------------------------------------------


class KernelPlan:
    """Flat index arrays of one compiled structure, shared by every backend.

    Also carries the python-side lists the :class:`ScalarSimulator`
    constructor needs, so the O(V + E) numpy-scalar conversions happen once
    per structure instead of once per candidate evaluation.
    """

    def __init__(self, structure) -> None:
        num_nodes = structure.num_nodes
        num_edges = structure.num_edges
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.cons = np.ascontiguousarray(structure.cons, dtype=np.int64)
        self.in_ptr = np.ascontiguousarray(structure.in_ptr, dtype=np.int64)
        self.in_idx = np.ascontiguousarray(structure.in_idx, dtype=np.int64)
        prod = np.asarray(structure.prod, dtype=np.int64)
        # Stable sort keeps each node's out-edges in ascending edge order —
        # the same order ScalarSimulator builds its out-lists in.
        self.out_idx = np.ascontiguousarray(
            np.argsort(prod, kind="stable"), dtype=np.int64
        )
        out_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
        counts = np.bincount(prod, minlength=num_nodes) if num_edges else (
            np.zeros(num_nodes, dtype=np.int64)
        )
        np.cumsum(counts, out=out_ptr[1:])
        self.out_ptr = out_ptr
        self.early_nodes = np.ascontiguousarray(
            structure.early_pos, dtype=np.int64
        )
        early_slot = np.full(num_nodes, -1, dtype=np.int64)
        for slot, node in enumerate(self.early_nodes):
            early_slot[node] = slot
        self.early_slot = early_slot
        guard_ptr = [0]
        guard_edges: List[int] = []
        guard_cumw: List[float] = []
        guard_total: List[float] = []
        guard_hi: List[int] = []
        for table in structure.guards:
            guard_edges.extend(int(edge) for edge in table.edges)
            guard_cumw.extend(table.cum_weights)
            guard_ptr.append(len(guard_edges))
            guard_total.append(table.total)
            guard_hi.append(table.hi)
        self.guard_ptr = np.asarray(guard_ptr, dtype=np.int64)
        self.guard_edges = np.asarray(guard_edges, dtype=np.int64)
        self.guard_cumw = np.asarray(guard_cumw, dtype=np.float64)
        self.guard_total = np.asarray(guard_total, dtype=np.float64)
        self.guard_hi = np.asarray(guard_hi, dtype=np.int64)
        self.num_early = len(guard_total)

        # python-side structure lists (shared with ScalarSimulator).
        in_ptr_list = self.in_ptr.tolist()
        in_idx_list = self.in_idx.tolist()
        out_ptr_list = out_ptr.tolist()
        out_idx_list = self.out_idx.tolist()
        self.cons_list = self.cons.tolist()
        self.in_edges = [
            tuple(in_idx_list[in_ptr_list[n] : in_ptr_list[n + 1]])
            for n in range(num_nodes)
        ]
        self.out_lists = [
            tuple(out_idx_list[out_ptr_list[n] : out_ptr_list[n + 1]])
            for n in range(num_nodes)
        ]
        self.early_nodes_list = self.early_nodes.tolist()
        self.early_slot_list = early_slot.tolist()
        self.is_early = [slot >= 0 for slot in self.early_slot_list]

        # Worklist capacities: per cycle the queue sees at most the previous
        # ready list (<= V + E), one delivery crossing per edge, one draw per
        # early node and two production crossings per edge; sized generously.
        self.queue_cap = 4 * (num_nodes + num_edges) + self.num_early + 64
        self.ready_cap = 2 * (num_nodes + num_edges) + 64


def plan_for(structure) -> KernelPlan:
    """The (cached) kernel plan of a compiled structure."""
    plan = getattr(structure, "_kernel_plan", None)
    if plan is None:
        plan = KernelPlan(structure)
        structure._kernel_plan = plan
    return plan


# -- kernel runs ---------------------------------------------------------------


class KernelRun:
    """State of one lane advanced by the active kernel backend."""

    def __init__(self, model, seed: Optional[int]) -> None:
        plan = plan_for(model.structure)
        self.plan = plan
        num_nodes, num_edges = plan.num_nodes, plan.num_edges
        self.latency = np.ascontiguousarray(model.latency, dtype=np.int64)
        self.depth = int(self.latency.max()) + 1 if num_edges else 1
        self.marking = np.array(model.marking0, dtype=np.int64)
        below = self.marking < 1
        self.deficit = np.bincount(
            plan.cons[below], minlength=num_nodes
        ).astype(np.int64) if num_edges else np.zeros(num_nodes, dtype=np.int64)
        self.pending = np.full(plan.num_early, -1, dtype=np.int64)
        self.firings = np.zeros(num_nodes, dtype=np.int64)
        self.ring_count = np.zeros(self.depth, dtype=np.int64)
        self.ring_edges = np.zeros(self.depth * num_edges, dtype=np.int64)
        self.queue = np.empty(plan.queue_cap, dtype=np.int64)
        self.next_ready = np.empty(plan.ready_cap, dtype=np.int64)
        ready0 = np.nonzero((self.deficit == 0) & (plan.early_slot < 0))[0]
        self.next_ready[: ready0.size] = ready0
        self.fired_cycle = np.full(num_nodes, -1, dtype=np.int64)
        self.io = np.zeros(4, dtype=np.int64)
        self.io[2] = ready0.size
        self._rng = random.Random(seed)
        self.uniforms = np.empty(
            _UNIFORM_CHUNK if plan.num_early else 0, dtype=np.float64
        )
        self.u_len = 0
        self.draws = 0  # uniforms pulled from the python Random so far

    @property
    def cycle(self) -> int:
        return int(self.io[0])

    def draws_consumed(self) -> int:
        """Uniform draws the kernel actually used (for python RNG replay)."""
        return self.draws - (self.u_len - int(self.io[1]))

    def _refill(self) -> None:
        cursor = int(self.io[1])
        remaining = self.u_len - cursor
        if remaining > 0:
            self.uniforms[:remaining] = self.uniforms[cursor : self.u_len]
        self.io[1] = 0
        rng_random = self._rng.random
        fresh = [rng_random() for _ in range(self.uniforms.size - remaining)]
        self.uniforms[remaining:] = fresh
        self.draws += len(fresh)
        self.u_len = self.uniforms.size

    def advance(self, cycles: int) -> None:
        """Run ``cycles`` more cycles through the active backend."""
        if cycles <= 0:
            return
        target = int(self.io[0]) + cycles
        while int(self.io[0]) < target:
            status = _invoke(self, target - int(self.io[0]))
            if status == 1:
                self._refill()
            elif status != 0:
                raise RuntimeError(f"simulation kernel returned status {status}")


def _invoke(run: KernelRun, max_cycles: int) -> int:
    plan = run.plan
    backend = kernel_backend()
    if backend == "numba" and _numba_kernel is not None:
        kernel = _numba_kernel
    elif backend == "c" and _c_kernel is not None:
        return _invoke_c(run, max_cycles)
    else:
        kernel = _kernel_cycles
    return kernel(
        max_cycles, plan.num_nodes, plan.num_edges, plan.num_early, run.depth,
        plan.cons, plan.in_ptr, plan.in_idx, plan.out_ptr, plan.out_idx,
        plan.early_nodes, plan.early_slot,
        plan.guard_ptr, plan.guard_edges, plan.guard_cumw,
        plan.guard_total, plan.guard_hi,
        run.latency, run.marking, run.deficit, run.pending, run.firings,
        run.ring_count, run.ring_edges, run.queue, run.next_ready,
        run.fired_cycle,
        run.uniforms, run.u_len, run.io,
    )


def _i64_ptr(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _f64_ptr(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _invoke_c(run: KernelRun, max_cycles: int) -> int:
    plan = run.plan
    return int(
        _c_kernel(
            max_cycles, plan.num_nodes, plan.num_edges, plan.num_early,
            run.depth,
            _i64_ptr(plan.cons), _i64_ptr(plan.in_ptr), _i64_ptr(plan.in_idx),
            _i64_ptr(plan.out_ptr), _i64_ptr(plan.out_idx),
            _i64_ptr(plan.early_nodes), _i64_ptr(plan.early_slot),
            _i64_ptr(plan.guard_ptr), _i64_ptr(plan.guard_edges),
            _f64_ptr(plan.guard_cumw), _f64_ptr(plan.guard_total),
            _i64_ptr(plan.guard_hi),
            _i64_ptr(run.latency), _i64_ptr(run.marking),
            _i64_ptr(run.deficit), _i64_ptr(run.pending),
            _i64_ptr(run.firings),
            _i64_ptr(run.ring_count), _i64_ptr(run.ring_edges),
            _i64_ptr(run.queue), _i64_ptr(run.next_ready),
            _i64_ptr(run.fired_cycle),
            _f64_ptr(run.uniforms), run.u_len, _i64_ptr(run.io),
        )
    )


def run_window(
    model, seed: Optional[int], cycles: int, warmup: int
) -> Tuple[KernelRun, List[int], float]:
    """Run ``warmup + cycles`` cycles; return (state, window counts, Theta).

    The throughput is reduced with the same python-float arithmetic as the
    pure-python engines (per-node rate list, mean in node order), so the
    reported double is bit-identical across backends.
    """
    run = KernelRun(model, seed)
    if warmup > 0:
        run.advance(warmup)
    baseline = run.firings.copy()
    run.advance(cycles)
    window = [int(value) for value in run.firings - baseline]
    rates = [count / cycles for count in window]
    throughput = sum(rates) / len(rates) if rates else 0.0
    return run, window, throughput
