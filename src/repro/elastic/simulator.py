"""Cycle-accurate simulation of a structural elastic circuit.

This simulator is the reproduction's stand-in for the paper's Verilog
simulations.  It is an independent implementation of the same handshake
semantics as the TGMG simulator (:mod:`repro.gmg.simulation`); the test-suite
cross-checks that both estimate the same steady-state throughput.

:class:`ElasticSimulator` is kept as a *reference semantics oracle*: the
compiled engine in :mod:`repro.sim` simulates the same circuit state (channel
markings, EB-chain latencies, early-join selections) as flat arrays and is
cross-checked against it firing-for-firing.  The
:func:`simulate_elastic_throughput` wrapper defaults to the vectorized
engine, which is bit-identical under the same seed; pass
``engine="reference"`` to force the structural simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.elastic.circuit import ElasticCircuit


@dataclass
class ElasticSimulationResult:
    """Outcome of an elastic-circuit simulation.

    Attributes:
        throughput: Average firings per node per measured cycle.
        cycles: Measured cycles (after warm-up).
        warmup: Warm-up cycles discarded before measuring.
        firings: Per-node firing counts over the measured window.
    """

    throughput: float
    cycles: int
    warmup: int
    firings: Dict[str, int] = field(default_factory=dict)

    def rate(self, node: str) -> float:
        return self.firings[node] / self.cycles if self.cycles else 0.0


class ElasticSimulator:
    """Run a structural elastic circuit cycle by cycle."""

    def __init__(
        self,
        source: Union[RRG, RRConfiguration, ElasticCircuit],
        seed: Optional[int] = None,
    ) -> None:
        if isinstance(source, ElasticCircuit):
            self.circuit = source
        else:
            self.circuit = ElasticCircuit.from_source(source)
        self.rng = random.Random(seed)
        self.cycle = 0

    def step(self) -> int:
        """Advance one clock cycle; returns the number of blocks that fired."""
        circuit = self.circuit

        # 1. Clock every EB chain: tokens pushed last cycle enter the chain,
        #    tokens completing their last stage become visible to consumers.
        for hardware in circuit.edges.values():
            if hardware.chain.length == 0:
                continue
            emerged = hardware.chain.advance(hardware.pending_push)
            hardware.pending_push = False
            if emerged:
                hardware.channel.deliver()

        # 2. Fire controllers to a fixpoint; zero-buffer channels propagate
        #    combinationally, so a firing can enable another block this cycle.
        fired_total = 0
        fired = set()
        progress = True
        while progress:
            progress = False
            for name, controller in circuit.controllers.items():
                if name in fired:
                    continue
                if not controller.fire(self.rng):
                    continue
                fired.add(name)
                fired_total += 1
                progress = True
                for channel in circuit.forks[name].distribute():
                    hardware = circuit.edges[channel.index]
                    if hardware.chain.length == 0:
                        channel.deliver()
                    else:
                        hardware.pending_push = True

        self.cycle += 1
        return fired_total

    def run(
        self, cycles: int = 10000, warmup: Optional[int] = None
    ) -> ElasticSimulationResult:
        """Simulate and measure the throughput over the last ``cycles`` cycles."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        if warmup is None:
            warmup = max(200, cycles // 10)
        for _ in range(warmup):
            self.step()
        baseline = {
            name: controller.firings
            for name, controller in self.circuit.controllers.items()
        }
        for _ in range(cycles):
            self.step()
        window = {
            name: controller.firings - baseline[name]
            for name, controller in self.circuit.controllers.items()
        }
        rates = [count / cycles for count in window.values()]
        throughput = sum(rates) / len(rates) if rates else 0.0
        return ElasticSimulationResult(
            throughput=throughput, cycles=cycles, warmup=warmup, firings=window
        )


def simulate_elastic_throughput(
    source: Union[RRG, RRConfiguration],
    cycles: int = 10000,
    warmup: Optional[int] = None,
    seed: Optional[int] = None,
    engine: str = "vector",
    use_cache: bool = True,
) -> float:
    """Convenience wrapper returning just the estimated throughput.

    ``engine="vector"`` (default) runs the compiled array engine on the same
    circuit semantics (bit-identical under the same seed);
    ``engine="reference"`` runs the structural simulator above.
    """
    if engine == "reference":
        simulator = ElasticSimulator(source, seed=seed)
        return simulator.run(cycles=cycles, warmup=warmup).throughput
    from repro.sim.batch import simulate_throughput_vector

    return simulate_throughput_vector(
        source,
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        mode="elastic",
        use_cache=use_cache,
    )
