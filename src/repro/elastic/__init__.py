"""Structural elastic-circuit (SELF) substrate.

The paper evaluates its configurations by generating Verilog for the elastic
controllers and simulating them.  This package is the reproduction's
equivalent substrate:

* :mod:`repro.elastic.channel` — elastic channels (valid/stop handshake) and
  per-channel token bookkeeping, including anti-token counters,
* :mod:`repro.elastic.buffer` — elastic buffers (EBs) and EB chains,
* :mod:`repro.elastic.controller` — join, early-evaluation join and fork
  controllers,
* :mod:`repro.elastic.circuit` — building a structural elastic circuit from
  an RRG or a retiming-and-recycling configuration,
* :mod:`repro.elastic.simulator` — cycle-accurate simulation measuring the
  actual throughput,
* :mod:`repro.elastic.verilog` — a small Verilog emitter for the controllers
  and the top-level netlist, mirroring the paper's flow.
"""

from repro.elastic.channel import Channel
from repro.elastic.buffer import ElasticBuffer, ElasticBufferChain
from repro.elastic.controller import (
    EarlyJoinController,
    ForkController,
    JoinController,
    NodeController,
)
from repro.elastic.circuit import ElasticCircuit
from repro.elastic.simulator import ElasticSimulationResult, ElasticSimulator
from repro.elastic.verilog import generate_verilog

__all__ = [
    "Channel",
    "ElasticBuffer",
    "ElasticBufferChain",
    "NodeController",
    "JoinController",
    "EarlyJoinController",
    "ForkController",
    "ElasticCircuit",
    "ElasticSimulator",
    "ElasticSimulationResult",
    "generate_verilog",
]
