"""Building a structural elastic circuit from an RRG or a configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.elastic.buffer import ElasticBufferChain
from repro.elastic.channel import Channel
from repro.elastic.controller import (
    EarlyJoinController,
    ForkController,
    JoinController,
    NodeController,
)


@dataclass(slots=True)
class _EdgeHardware:
    """Everything instantiated for one RRG channel."""

    channel: Channel
    chain: ElasticBufferChain
    pending_push: bool = False


class ElasticCircuit:
    """A structural elastic circuit: controllers, EB chains and channels.

    The circuit is a direct hardware-style elaboration of a
    retiming-and-recycling configuration: one join/early-join controller and
    one fork per combinational block, one EB chain plus consumer-side channel
    per RRG edge.  It is consumed by
    :class:`repro.elastic.simulator.ElasticSimulator` and by the Verilog
    emitter.
    """

    def __init__(self, rrg: RRG, tokens: Dict[int, int], buffers: Dict[int, int]):
        self.rrg = rrg
        self.edges: Dict[int, _EdgeHardware] = {}
        self.controllers: Dict[str, NodeController] = {}
        self.forks: Dict[str, ForkController] = {}

        for edge in rrg.edges:
            channel = Channel(index=edge.index, source=edge.src, target=edge.dst)
            chain = ElasticBufferChain.of_length(int(buffers[edge.index]))
            # Initial tokens are presented to the consumer from cycle 0 on
            # (the marked-graph view of the initial state); the EB chain only
            # carries tokens produced during simulation.
            channel.initialize(int(tokens[edge.index]))
            self.edges[edge.index] = _EdgeHardware(channel=channel, chain=chain)

        for node in rrg.nodes:
            input_channels = [
                self.edges[e.index].channel for e in rrg.in_edges(node.name)
            ]
            if node.early:
                probabilities = [e.probability for e in rrg.in_edges(node.name)]
                controller: NodeController = EarlyJoinController(
                    node.name, input_channels, probabilities
                )
            else:
                controller = JoinController(node.name, input_channels)
            self.controllers[node.name] = controller
            self.forks[node.name] = ForkController(
                outputs=[self.edges[e.index].channel for e in rrg.out_edges(node.name)]
            )

    @classmethod
    def from_source(cls, source: Union[RRG, RRConfiguration]) -> "ElasticCircuit":
        """Elaborate an RRG (its own assignment) or a configuration."""
        if isinstance(source, RRConfiguration):
            return cls(source.rrg, source.token_vector(), source.buffer_vector())
        return cls(source, source.token_vector(), source.buffer_vector())

    # -- structural queries -------------------------------------------------

    @property
    def num_buffers(self) -> int:
        """Total number of EB stages instantiated."""
        return sum(hardware.chain.length for hardware in self.edges.values())

    @property
    def node_names(self) -> List[str]:
        return list(self.controllers.keys())

    def stored_tokens(self) -> int:
        """Tokens currently stored anywhere in the circuit (net of anti-tokens).

        Counts tokens waiting at consumers, tokens travelling through EB
        chains and tokens pushed this cycle that the first EB captures at the
        next clock edge.  On a marked graph (no early evaluation) this count
        is invariant over time.
        """
        total = 0
        for hardware in self.edges.values():
            total += hardware.chain.occupancy
            total += hardware.channel.ready - hardware.channel.antitokens
            total += 1 if hardware.pending_push else 0
        return total
