"""Elastic channels: the valid/stop handshake endpoint of the simulator.

A channel connects a producer block to a consumer block.  In a real SELF
implementation it carries data wires plus a (valid, stop) control pair; for
throughput analysis only the token flow matters, so the simulator tracks

* ``ready`` — tokens that have traversed the channel's buffers and are
  waiting at the consumer,
* ``antitokens`` — outstanding anti-tokens created by an early-evaluation
  consumer that fired without this channel's token; an arriving token and an
  anti-token cancel each other.

The paper's "sufficiently sized FIFO" assumption (Section 1, footnote 1)
means back-pressure never limits the steady-state throughput, so the ready
queue is unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Channel:
    """Consumer-side token bookkeeping of one RRG edge.

    Attributes:
        index: RRG edge index this channel implements.
        source: Producer node name.
        target: Consumer node name.
        ready: Tokens available to the consumer.
        antitokens: Pending anti-tokens at the consumer side.
    """

    index: int
    source: str
    target: str
    ready: int = 0
    antitokens: int = 0

    def initialize(self, tokens: int) -> None:
        """Load the initial marking: positive counts become ready tokens,
        negative counts become anti-tokens."""
        self.ready = max(int(tokens), 0)
        self.antitokens = max(-int(tokens), 0)

    @property
    def valid(self) -> bool:
        """The SELF 'valid' view: a token is presented to the consumer."""
        return self.ready > 0

    @property
    def marking(self) -> int:
        """Net token count (ready minus anti-tokens)."""
        return self.ready - self.antitokens

    def deliver(self, count: int = 1) -> None:
        """A token arrives at the consumer side; it first cancels anti-tokens."""
        for _ in range(count):
            if self.antitokens > 0:
                self.antitokens -= 1
            else:
                self.ready += 1

    def consume(self) -> None:
        """The consumer takes one token (it must be ready)."""
        if self.ready <= 0:
            raise RuntimeError(
                f"channel {self.source}->{self.target} consumed without a ready token"
            )
        self.ready -= 1

    def absorb_antitoken(self) -> None:
        """An early-evaluation consumer fired without this channel's token.

        If a token happens to be ready it is discarded (the token/anti-token
        pair cancels immediately); otherwise the anti-token waits for the next
        arrival.
        """
        if self.ready > 0:
            self.ready -= 1
        else:
            self.antitokens += 1

    def __repr__(self) -> str:
        return (
            f"Channel({self.source}->{self.target}, ready={self.ready}, "
            f"antitokens={self.antitokens})"
        )
