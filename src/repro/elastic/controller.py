"""Elastic node controllers: join, early-evaluation join and fork.

Each combinational block of the RRG gets one controller.  The controller
decides, every clock cycle, whether the block fires:

* a :class:`JoinController` (late evaluation) waits for a valid token on every
  input channel;
* an :class:`EarlyJoinController` holds a select choice drawn from the branch
  probabilities and fires as soon as the selected channel is valid, issuing
  anti-tokens on the channels it did not wait for;
* the :class:`ForkController` duplicates the fired token onto every output
  channel (lazy forks are unnecessary because the FIFOs are assumed large
  enough to never stall).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.elastic.channel import Channel


@dataclass(slots=True)
class ForkController:
    """Duplicates a fired token onto every output channel of a block."""

    outputs: List[Channel] = field(default_factory=list)

    def distribute(self) -> List[Channel]:
        """Return the output channels that receive a token on a firing."""
        return list(self.outputs)


class NodeController:
    """Base class for the input side of a block's control logic."""

    def __init__(self, name: str, inputs: Sequence[Channel]) -> None:
        self.name = name
        self.inputs = list(inputs)
        self.firings = 0

    def can_fire(self, rng: random.Random) -> bool:
        """Whether the block can fire this cycle."""
        raise NotImplementedError

    def consume(self) -> None:
        """Consume input tokens for one firing."""
        raise NotImplementedError

    def fire(self, rng: random.Random) -> bool:
        """Attempt one firing; returns True when the block fired."""
        if not self.can_fire(rng):
            return False
        self.consume()
        self.firings += 1
        return True


class JoinController(NodeController):
    """Late-evaluation join: every input channel must present a valid token."""

    def can_fire(self, rng: random.Random) -> bool:
        return all(channel.valid for channel in self.inputs)

    def consume(self) -> None:
        for channel in self.inputs:
            channel.consume()


class EarlyJoinController(NodeController):
    """Early-evaluation join with anti-token generation.

    The controller samples a select choice according to the branch
    probabilities, holds it while the selected channel is not valid, and on
    firing consumes the selected token while sending an anti-token to every
    other input channel (which immediately cancels a token that happens to be
    present).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Channel],
        probabilities: Sequence[float],
    ) -> None:
        super().__init__(name, inputs)
        if len(probabilities) != len(self.inputs):
            raise ValueError(
                f"controller {name!r}: need one probability per input channel"
            )
        total = sum(probabilities)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"controller {name!r}: probabilities sum to {total}, expected 1"
            )
        self.probabilities = list(probabilities)
        self._selected: Optional[int] = None

    @property
    def pending_selection(self) -> Optional[int]:
        """Index of the input currently selected (None between firings)."""
        return self._selected

    def can_fire(self, rng: random.Random) -> bool:
        if self._selected is None:
            self._selected = rng.choices(
                range(len(self.inputs)), weights=self.probabilities, k=1
            )[0]
        return self.inputs[self._selected].valid

    def consume(self) -> None:
        selected = self._selected
        if selected is None:
            raise RuntimeError(f"controller {self.name!r} fired without a selection")
        for position, channel in enumerate(self.inputs):
            if position == selected:
                channel.consume()
            else:
                channel.absorb_antitoken()
        self._selected = None
