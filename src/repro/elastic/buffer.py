"""Elastic buffers and buffer chains.

An elastic buffer (EB) has a forward latency of one clock cycle.  A channel
annotated with ``R`` EBs therefore delays every token by ``R`` cycles; a chain
of EBs accepts one token per cycle.  Because the simulator assumes FIFOs large
enough to never exert back-pressure (footnote 1 of the paper), each EB is
modelled as a single-entry pipeline stage that always advances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(slots=True)
class ElasticBuffer:
    """A single elastic buffer stage.

    Attributes:
        occupied: Whether the stage currently holds a token.
    """

    occupied: bool = False

    def shift(self, incoming: bool) -> bool:
        """Advance one cycle: accept ``incoming`` and emit the stored token.

        Returns:
            True when a token leaves the stage this cycle.
        """
        outgoing = self.occupied
        self.occupied = incoming
        return outgoing


class ElasticBufferChain:
    """A series of elastic buffers implementing a channel's latency.

    The occupancy flags live in a ``deque`` ring (index 0 is the producer
    side), so clocking the chain is an O(1) rotation instead of the old
    per-stage shift loop — a depth-``d`` chain no longer pays O(d) Python
    work every cycle.
    """

    __slots__ = ("_cells",)

    def __init__(self, length: int = 0) -> None:
        if length < 0:
            raise ValueError("buffer chain length cannot be negative")
        self._cells: deque = deque([False] * length, maxlen=length)

    @classmethod
    def of_length(cls, length: int) -> "ElasticBufferChain":
        return cls(length)

    @property
    def length(self) -> int:
        return len(self._cells)

    @property
    def occupancy(self) -> int:
        """Number of tokens currently stored in the chain."""
        return sum(self._cells)

    def advance(self, incoming: bool) -> bool:
        """Clock the chain: rotate the ring and emit the consumer-side token.

        A token pushed by the producer during cycle ``t`` is captured by the
        first EB at the clock edge ending that cycle; it becomes visible to
        the consumer during cycle ``t + length``.  The emitted token leaves
        the chain (it moves into the consumer-side FIFO, which the simulator
        assumes is never full).

        Args:
            incoming: Whether the producer pushed a token during the previous
                cycle.

        Returns:
            True when a token becomes visible to the consumer this cycle (for
            a zero-length chain the incoming token passes through
            combinationally).
        """
        cells = self._cells
        if not cells:
            return incoming
        cells.appendleft(bool(incoming))  # maxlen drops the consumer-side cell
        emerged = cells[-1]
        cells[-1] = False
        return emerged

    def preload(self, tokens: int) -> int:
        """Place up to ``tokens`` initial tokens in the most-downstream stages.

        Returns the number of tokens that did not fit (they are reported back
        so the caller can make them immediately available at the consumer,
        which matches the marked-graph view of the initial state).
        """
        remaining = int(tokens)
        placed = min(remaining, len(self._cells))
        for offset in range(1, placed + 1):
            self._cells[-offset] = True
        return max(remaining - placed, 0)
