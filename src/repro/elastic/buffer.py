"""Elastic buffers and buffer chains.

An elastic buffer (EB) has a forward latency of one clock cycle.  A channel
annotated with ``R`` EBs therefore delays every token by ``R`` cycles; a chain
of EBs accepts one token per cycle.  Because the simulator assumes FIFOs large
enough to never exert back-pressure (footnote 1 of the paper), each EB is
modelled as a single-entry pipeline stage that always advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(slots=True)
class ElasticBuffer:
    """A single elastic buffer stage.

    Attributes:
        occupied: Whether the stage currently holds a token.
    """

    occupied: bool = False

    def shift(self, incoming: bool) -> bool:
        """Advance one cycle: accept ``incoming`` and emit the stored token.

        Returns:
            True when a token leaves the stage this cycle.
        """
        outgoing = self.occupied
        self.occupied = incoming
        return outgoing


@dataclass(slots=True)
class ElasticBufferChain:
    """A series of elastic buffers implementing a channel's latency.

    Attributes:
        stages: The EB stages, ordered from producer side to consumer side.
    """

    stages: List[ElasticBuffer] = field(default_factory=list)

    @classmethod
    def of_length(cls, length: int) -> "ElasticBufferChain":
        if length < 0:
            raise ValueError("buffer chain length cannot be negative")
        return cls(stages=[ElasticBuffer() for _ in range(length)])

    @property
    def length(self) -> int:
        return len(self.stages)

    @property
    def occupancy(self) -> int:
        """Number of tokens currently stored in the chain."""
        return sum(1 for stage in self.stages if stage.occupied)

    def advance(self, incoming: bool) -> bool:
        """Clock the chain: shift every stage and emit the consumer-side token.

        A token pushed by the producer during cycle ``t`` is captured by the
        first EB at the clock edge ending that cycle; it becomes visible to
        the consumer during cycle ``t + length``.  The emitted token leaves
        the chain (it moves into the consumer-side FIFO, which the simulator
        assumes is never full).

        Args:
            incoming: Whether the producer pushed a token during the previous
                cycle.

        Returns:
            True when a token becomes visible to the consumer this cycle (for
            a zero-length chain the incoming token passes through
            combinationally).
        """
        if not self.stages:
            return incoming
        for i in range(len(self.stages) - 1, 0, -1):
            self.stages[i].occupied = self.stages[i - 1].occupied
        self.stages[0].occupied = incoming
        emerged = self.stages[-1].occupied
        self.stages[-1].occupied = False
        return emerged

    def preload(self, tokens: int) -> int:
        """Place up to ``tokens`` initial tokens in the most-downstream stages.

        Returns the number of tokens that did not fit (they are reported back
        so the caller can make them immediately available at the consumer,
        which matches the marked-graph view of the initial state).
        """
        remaining = int(tokens)
        for stage in reversed(self.stages):
            if remaining <= 0:
                break
            stage.occupied = True
            remaining -= 1
        return max(remaining, 0)
