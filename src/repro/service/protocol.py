"""Request protocol of the optimization service.

A request is a JSON object with a ``kind``:

* ``{"kind": "run", "target": ..., "options": {...}}`` — execute a run
  target (an experiment preset or any registry scenario) through
  :func:`repro.experiments.presets.run_preset`; the result is the same
  ``{"target", "headers", "rows", "summary"}`` dictionary the CLI prints.
* ``{"kind": "simulate", "scenario": ..., "params": {...}, "tokens": {...},
  "buffers": {...}, "cycles": ..., "seed": ..., "mode": ...}`` — estimate
  one marking's throughput; compatible requests (same graph, cycles, warmup
  and mode) are batched into single :class:`~repro.sim.engine.VectorSimulator`
  lanes by the broker.

:func:`prepare_request` validates a body (unknown targets, scenarios or
parameters fail *before* anything is queued) and derives the request's
**cache key** — for anything keyed by a single pipeline job this is exactly
the RRG-fingerprint + stage-parameter key the
:class:`~repro.pipeline.store.ArtifactStore` uses, so the service's request
cache, the artifact store and the in-memory throughput cache all agree on
what "the same request" means.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.experiments.presets import RunOptions, is_run_target, scenario_job
from repro.obs.trace import (
    TRACE_FIELD,
    format_trace_ref,
    parse_trace_ref,
    valid_trace_ref,
)
from repro.pipeline.stages import job_store_key
from repro.pipeline.store import content_key
from repro.sim import cache as _sim_cache
from repro.sim.batch import default_warmup
from repro.sim.cache import LruCache
from repro.workloads.registry import ScenarioError, has_scenario, resolve_scenario

#: Simulation modes a simulate request may ask for.
SIMULATION_MODES = ("tgmg", "elastic")


class RequestError(ValueError):
    """A malformed or unsatisfiable request body (HTTP 400)."""


class QueueFullError(RuntimeError):
    """The admission queue is at capacity (HTTP 429 — retry later)."""


class ShuttingDownError(RuntimeError):
    """The service is draining and accepts no new work (HTTP 503)."""


#: Built scenario graphs keyed by their canonical (name, params) form —
#: request preparation needs the graph only for its fingerprint, so repeat
#: submissions of the same scenario skip the generator entirely.  LruCache
#: itself is not thread-safe and this one is shared by the broker's
#: multi-threaded prepare pool (and the compute thread), hence the lock.
_RRG_CACHE = LruCache(maxsize=64)
_RRG_LOCK = threading.Lock()


def cached_scenario_rrg(name: str, params: Mapping[str, Any]):
    """Build (or reuse) one scenario graph; returns (rrg, normalized params).

    Thread-safe; also used by the worker bridge so executing a simulate
    batch never re-runs a generator that preparation already ran.
    """
    spec, normalized = resolve_scenario(name, params)
    key = content_key({"scenario": name, "params": normalized})
    with _RRG_LOCK:
        rrg = _RRG_CACHE.get(key)
    if rrg is None:
        rrg = spec.builder(**normalized)
        with _RRG_LOCK:
            _RRG_CACHE.put(key, rrg)
    return rrg, normalized


# Historical internal name.
_cached_rrg = cached_scenario_rrg


@dataclass
class PreparedRequest:
    """A validated request, ready for the broker.

    Attributes:
        kind: ``"run"`` or ``"simulate"``.
        key: Request cache key — coalescing, the L1 result cache and the
            persistent result artifacts are all keyed by it.
        spec: Canonical JSON description (echoed by the status endpoint).
        target: Run target (run requests).
        options: Validated run options (run requests).
        scenario: Scenario name (simulate requests).
        sim_key: The throughput-cache tuple key (simulate requests); equals
            the key :mod:`repro.sim.cache` and the store's throughput layer
            use, so every tier can answer the request.
        batch_key: Compatibility group of a simulate request — requests
            sharing it run as lanes of one batched simulation.
        tokens: Full per-edge token vector of the lane (simulate requests).
        buffers: Full per-edge buffer vector of the lane (simulate requests).
        cycles: Simulation length (simulate requests).
        warmup: Resolved warmup cycles (simulate requests).
        seed: Lane seed (simulate requests).
        mode: ``"tgmg"`` or ``"elastic"`` (simulate requests).
        deadline: Request budget in seconds (None = unbounded).  An
            *execution* knob, deliberately excluded from the cache key and
            canonical spec: two requests for the same computation are the
            same request however long each is willing to wait, and the cache
            only ever holds results that finished without deadline pressure.
        trace_id: Observability correlation id propagated via the
            ``x-repro-trace`` body field.  Like ``deadline``, excluded from
            the cache key and canonical spec — traced and untraced requests
            for the same computation are the same request, and trace ids
            never reach stored payloads.
        parent_span_id: The caller-side span the request's server spans
            parent under (second half of the ``x-repro-trace`` field).
    """

    kind: str
    key: str
    spec: Dict[str, Any]
    target: Optional[str] = None
    options: Optional[RunOptions] = None
    scenario: Optional[str] = None
    sim_key: Optional[Tuple] = None
    batch_key: Optional[str] = None
    tokens: Dict[int, int] = field(default_factory=dict)
    buffers: Dict[int, int] = field(default_factory=dict)
    cycles: int = 0
    warmup: int = 0
    seed: Optional[int] = None
    mode: str = "tgmg"
    deadline: Optional[float] = None
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    @property
    def trace_ref(self) -> Optional[str]:
        """The ``trace_id/parent_span_id`` form for re-propagation."""
        if self.trace_id is None:
            return None
        return format_trace_ref(self.trace_id, self.parent_span_id)


def _int_vector(raw: Any, what: str) -> Dict[int, int]:
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise RequestError(f"{what} must be an object of edge-index: count")
    try:
        vector = {int(k): int(v) for k, v in raw.items()}
    except (TypeError, ValueError) as exc:
        raise RequestError(f"{what} must map edge indices to integers") from exc
    if any(v < 0 for v in vector.values()):
        raise RequestError(f"{what} counts must be non-negative")
    return vector


def _prepare_run(body: Mapping[str, Any]) -> PreparedRequest:
    target = body.get("target")
    if not isinstance(target, str) or not target:
        raise RequestError("run request needs a 'target' string")
    raw_options = body.get("options") or {}
    if not isinstance(raw_options, Mapping):
        raise RequestError("'options' must be an object")
    try:
        options = RunOptions.from_mapping(raw_options)
    except (ScenarioError, TypeError, ValueError) as exc:
        raise RequestError(str(exc)) from exc
    if not is_run_target(target):
        raise RequestError(
            f"unknown run target {target!r}; see list-scenarios or the presets"
        )
    spec = {"kind": "run", "target": target, "options": options.describe()}
    if has_scenario(target):
        # A plain-scenario run is one pipeline job: key it exactly as the
        # artifact store would, so identical requests coalesce with any
        # other path that computed the same job.
        try:
            job = scenario_job(target, options)
            rrg, _ = _cached_rrg(
                target, dict(job.build.params)
            )
        except ScenarioError as exc:
            raise RequestError(str(exc)) from exc
        key = content_key({
            "kind": "service-run", "job": job_store_key(job, rrg),
        })
    else:
        if options.params:
            raise RequestError(
                f"preset {target!r} takes no scenario params; "
                "use the dedicated options instead"
            )
        key = content_key(spec)
    return PreparedRequest(kind="run", key=key, spec=spec,
                           target=target, options=options)


def _prepare_simulate(body: Mapping[str, Any]) -> PreparedRequest:
    name = body.get("scenario")
    if not isinstance(name, str) or not name:
        raise RequestError("simulate request needs a 'scenario' string")
    params = body.get("params") or {}
    if not isinstance(params, Mapping):
        raise RequestError("'params' must be an object")
    try:
        rrg, normalized = _cached_rrg(name, params)
    except ScenarioError as exc:
        raise RequestError(str(exc)) from exc

    mode = str(body.get("mode", "tgmg"))
    if mode not in SIMULATION_MODES:
        raise RequestError(
            f"unknown simulation mode {mode!r}; expected one of {SIMULATION_MODES}"
        )
    try:
        cycles = int(body.get("cycles", 4000))
    except (TypeError, ValueError) as exc:
        raise RequestError("'cycles' must be an integer") from exc
    if cycles <= 0:
        raise RequestError("'cycles' must be positive")
    raw_warmup = body.get("warmup")
    try:
        warmup = default_warmup(cycles) if raw_warmup is None else int(raw_warmup)
    except (TypeError, ValueError) as exc:
        raise RequestError("'warmup' must be an integer") from exc
    if warmup < 0:
        raise RequestError("'warmup' must be non-negative")
    raw_seed = body.get("seed", 0)
    if raw_seed is None:
        raise RequestError(
            "simulate requests must be seeded (unseeded samples are neither "
            "reproducible nor cacheable); pass an integer 'seed'"
        )
    try:
        seed = int(raw_seed)
    except (TypeError, ValueError) as exc:
        raise RequestError("'seed' must be an integer") from exc

    tokens = rrg.token_vector()
    tokens.update(_int_vector(body.get("tokens"), "'tokens'"))
    buffers = rrg.buffer_vector()
    buffers.update(_int_vector(body.get("buffers"), "'buffers'"))
    known = {edge.index for edge in rrg.edges}
    stray = (set(tokens) | set(buffers)) - known
    if stray:
        raise RequestError(
            f"unknown edge indices {sorted(stray)} for scenario {name!r}"
        )

    fingerprint = _sim_cache.rrg_fingerprint(rrg)
    sim_key = _sim_cache.throughput_key(
        fingerprint, mode, tokens, buffers, cycles, warmup, seed
    )
    spec = {
        "kind": "simulate",
        "scenario": name,
        "params": dict(normalized),
        "tokens": {str(k): v for k, v in sorted(tokens.items())},
        "buffers": {str(k): v for k, v in sorted(buffers.items())},
        "cycles": cycles,
        "warmup": warmup,
        "seed": seed,
        "mode": mode,
    }
    return PreparedRequest(
        kind="simulate",
        key=content_key({"kind": "service-simulate", "sim": sim_key}),
        spec=spec,
        scenario=name,
        sim_key=sim_key,
        batch_key=content_key({
            "kind": "service-batch",
            "fingerprint": fingerprint,
            "cycles": cycles,
            "warmup": warmup,
            "mode": mode,
        }),
        tokens=tokens,
        buffers=buffers,
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        mode=mode,
    )


def _parse_trace(body: Mapping[str, Any]) -> Tuple[Optional[str], Optional[str]]:
    """Extract ``x-repro-trace`` as ``(trace_id, parent_span_id)``.

    Absent → ``(None, None)``; present but malformed → :class:`RequestError`
    (a client that tries to trace deserves to hear it failed rather than
    silently losing the correlation).
    """
    raw = body.get(TRACE_FIELD)
    if raw is None:
        return None, None
    if not valid_trace_ref(raw):
        raise RequestError(
            f"'{TRACE_FIELD}' must be 'trace_id' or 'trace_id/span_id' "
            "(alphanumeric plus '._-', at most 64 chars each)"
        )
    return parse_trace_ref(raw)


def _parse_deadline(body: Mapping[str, Any]) -> Optional[float]:
    raw = body.get("deadline")
    if raw is None:
        return None
    try:
        deadline = float(raw)
    except (TypeError, ValueError) as exc:
        raise RequestError("'deadline' must be a number of seconds") from exc
    if deadline <= 0:
        raise RequestError("'deadline' must be positive")
    return deadline


def prepare_request(body: Any) -> PreparedRequest:
    """Validate a request body and derive its cache/batch keys.

    Raises :class:`RequestError` (HTTP 400) on anything malformed.  This may
    build the scenario graph (cached per canonical parameter set), so
    callers on an event loop should run it in an executor.

    An optional ``deadline`` (seconds) rides along on the prepared request —
    it scopes execution (see :mod:`repro.resilience.deadline`) but never
    enters the cache key, so deadline-bearing requests still coalesce with
    unbounded ones.  The same holds for the optional ``x-repro-trace``
    field: it rides along for observability and never affects the key.
    """
    if not isinstance(body, Mapping):
        raise RequestError("request body must be a JSON object")
    deadline = _parse_deadline(body)
    trace_id, parent_span_id = _parse_trace(body)
    kind = body.get("kind", "run")
    if kind == "run":
        prepared = _prepare_run(body)
    elif kind == "simulate":
        prepared = _prepare_simulate(body)
    else:
        raise RequestError(f"unknown request kind {kind!r}")
    prepared.deadline = deadline
    prepared.trace_id = trace_id
    prepared.parent_span_id = parent_span_id
    return prepared


def result_artifact_key(request_key: str) -> str:
    """Store key of a persisted request result (the tier-2 namespace)."""
    return content_key({"kind": "service-result", "key": request_key})
