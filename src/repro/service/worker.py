"""Execution bridge between the async broker and the synchronous pipeline.

The broker forms :class:`ExecutionGroup`s (one ``run`` request, or many
compatible ``simulate`` requests) and hands them to :func:`execute_group` on
a background executor thread.  The bridge

* drives :func:`repro.experiments.presets.run_preset` — and through it
  :func:`repro.pipeline.runner.run_jobs` — for run requests, forwarding
  every :class:`~repro.pipeline.events.PipelineEvent` to the broker's
  thread-safe emit callback as it happens;
* batches the lanes of a simulate group through
  :func:`repro.sim.batch.simulate_vectors` (one compiled-engine array
  program, per-lane seeds — the service's request-level batching);
* reads and writes the persistent tiers: simulated throughputs go through
  the :mod:`repro.sim.cache` persistent backend, rendered run results are
  published as ``service-result`` artifacts so a later identical request is
  a store hit without recomputing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.presets import RunOptions, run_preset
from repro.obs import trace as _trace
from repro.pipeline.events import PipelineEvent
from repro.pipeline.store import ArtifactStore, attach_persistent_throughputs
from repro.resilience.deadline import optional_scope
from repro.service.protocol import (
    PreparedRequest,
    cached_scenario_rrg,
    result_artifact_key,
)
from repro.sim import cache as _sim_cache
from repro.sim.batch import simulate_vectors

#: emit(request_id, event_dict) — must be safe to call from worker threads.
EmitCallback = Callable[[str, Dict[str, Any]], None]


@dataclass
class ExecutionGroup:
    """One unit of bridge work: request ids + their prepared requests.

    ``run`` groups always hold exactly one request; ``simulate`` groups hold
    every queued lane that shares a batch key.
    """

    kind: str
    request_ids: List[str] = field(default_factory=list)
    requests: List[PreparedRequest] = field(default_factory=list)

    def add(self, request_id: str, prepared: PreparedRequest) -> None:
        self.request_ids.append(request_id)
        self.requests.append(prepared)

    @property
    def lanes(self) -> int:
        return len(self.requests)


def group_requests(
    entries: Sequence[tuple]
) -> List[ExecutionGroup]:
    """Partition ``(request_id, PreparedRequest)`` pairs into groups.

    Run requests keep submission order, one group each.  Simulate requests
    with the same batch key merge into the earliest group with that key —
    batching never reorders results, only co-schedules compatible lanes.
    """
    groups: List[ExecutionGroup] = []
    by_batch: Dict[str, ExecutionGroup] = {}
    for request_id, prepared in entries:
        if prepared.kind == "simulate" and prepared.batch_key is not None:
            group = by_batch.get(prepared.batch_key)
            if group is None:
                group = ExecutionGroup(kind="simulate")
                by_batch[prepared.batch_key] = group
                groups.append(group)
            group.add(request_id, prepared)
        else:
            group = ExecutionGroup(kind=prepared.kind)
            group.add(request_id, prepared)
            groups.append(group)
    return groups


def _execute_run(
    group: ExecutionGroup,
    store: Optional[ArtifactStore],
    shards: int,
    emit: Optional[EmitCallback],
) -> List[Dict[str, Any]]:
    prepared = group.requests[0]
    request_id = group.request_ids[0]
    assert prepared.target is not None and prepared.options is not None

    events = None
    if emit is not None:
        def events(event: PipelineEvent) -> None:
            emit(request_id, event.to_dict())

    options: RunOptions = prepared.options.with_execution(
        shards=shards, store=None if store is None else str(store.root)
    )
    # The request deadline opens here, on the compute thread running the
    # job, and reaches the MILP walk / search racer through the ambient
    # Deadline.current() — no signature below needs a deadline parameter.
    # The trace scope opens alongside it: contextvars do not cross the
    # event-loop → executor boundary, so the propagated trace ref (already
    # re-parented to the broker's request span) restarts the ambient trace
    # here, and pipeline/stage/search spans nest under this execute span.
    with _trace.maybe_trace(prepared.trace_ref, f"execute:{prepared.target}"):
        with optional_scope(prepared.deadline):
            result = run_preset(prepared.target, options, events=events)
    if store is not None and "degraded" not in result:
        # Degraded results are answers to *this* deadline-pressed request,
        # not to the declaration — never persist them as the request's
        # canonical artifact.
        store.put(result_artifact_key(prepared.key), result)
    return [result]


def _execute_simulate(
    group: ExecutionGroup,
    store: Optional[ArtifactStore],
    emit: Optional[EmitCallback],
) -> List[Dict[str, Any]]:
    first = group.requests[0]
    assert first.scenario is not None
    # One graph serves every lane (the batch key guarantees a shared
    # fingerprint); preparation already built and cached it.
    rrg, _ = cached_scenario_rrg(first.scenario, first.spec["params"])
    job_id = f"simulate:{first.scenario}"
    if emit is not None:
        for request_id in group.request_ids:
            emit(request_id, {
                "kind": "job-start", "job_id": job_id, "total": group.lanes,
            })
    started = time.perf_counter()
    # Route lane throughputs through the persistent tier while this batch
    # runs, then restore whatever backend the host process had.
    previous = _sim_cache.persistent_backend()
    attach_persistent_throughputs(store)
    try:
        values = simulate_vectors(
            rrg,
            [(p.tokens, p.buffers) for p in group.requests],
            cycles=first.cycles,
            warmup=first.warmup,
            seeds=[p.seed for p in group.requests],
            mode=first.mode,
        )
    finally:
        _sim_cache.set_persistent_backend(previous)
    seconds = time.perf_counter() - started
    if emit is not None:
        # Pair every start with a completion, or stream consumers tracking
        # open jobs would see simulate requests as permanently in flight.
        for request_id in group.request_ids:
            emit(request_id, {
                "kind": "job-done", "job_id": job_id, "total": group.lanes,
                "seconds": seconds,
            })
    traced = [p for p in group.requests if p.trace_id is not None]
    if traced:
        # Batch membership: every traced lane gets a span under its own
        # request recording the shared batch execution it rode in.
        from repro.sim.kernels import kernel_backend

        backend = kernel_backend()
        batch_started = time.time() - seconds
        for prepared in traced:
            _trace.finish_span_record(
                prepared.trace_id,
                _trace.derive_span_id(
                    prepared.trace_id,
                    prepared.parent_span_id or "",
                    "simulate-batch",
                    0,
                ),
                prepared.parent_span_id,
                "simulate-batch",
                batch_started,
                seconds,
                lanes=group.lanes,
                kernel_backend=backend,
            )
    # The document must be a function of the request alone (no batch-shape
    # fields like the lane count): a store hit after a restart must return
    # exactly what the original execution returned.
    return [
        {
            "scenario": prepared.scenario,
            "throughput": value,
            "cycles": prepared.cycles,
            "warmup": prepared.warmup,
            "seed": prepared.seed,
            "mode": prepared.mode,
        }
        for prepared, value in zip(group.requests, values)
    ]


def execute_group(
    group: ExecutionGroup,
    store: Optional[ArtifactStore] = None,
    shards: int = 1,
    emit: Optional[EmitCallback] = None,
) -> List[Dict[str, Any]]:
    """Execute one group synchronously; returns one result per request.

    Runs on the broker's compute executor.  Exceptions propagate — the
    broker fails every request of the group with the error message.
    """
    if group.kind == "run":
        return _execute_run(group, store, shards, emit)
    if group.kind == "simulate":
        return _execute_simulate(group, store, emit)
    raise ValueError(f"unknown group kind {group.kind!r}")
