"""Thin clients for the optimization service (sync and async).

:class:`ServiceClient` is the blocking client the CLI uses
(``python -m repro submit``); :class:`AsyncServiceClient` is the same
surface over asyncio streams for callers already on an event loop.  Both
speak the JSON protocol of :mod:`repro.service.server` and expose:

* ``submit(body)`` / ``submit_run(target, options)`` /
  ``submit_simulate(...)`` — admission (raises :class:`ServiceBusy` on 429);
* ``status(id)`` / ``result(id)`` / ``stats()`` — the read endpoints;
* ``wait(id, on_event=...)`` — poll until done, streaming newly observed
  pipeline events to ``on_event`` (incremental ``events_from`` cursors, so
  each event is delivered exactly once);
* ``submit_and_wait(...)`` — the one-call convenience the CLI uses.
"""

from __future__ import annotations

import asyncio
import json
import time
from http.client import HTTPConnection
from typing import Any, Callable, Dict, Mapping, Optional

OnEvent = Callable[[Dict[str, Any]], None]


class ServiceError(RuntimeError):
    """Any non-success response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceBusy(ServiceError):
    """The service shed the request (429 queue full / 503 draining)."""


class RequestFailed(ServiceError):
    """The request executed and failed server-side."""


def _raise_for(status: int, payload: Any) -> None:
    message = ""
    if isinstance(payload, Mapping):
        message = str(payload.get("error", ""))
    if status in (429, 503):
        raise ServiceBusy(status, message or "service busy")
    raise ServiceError(status, message or "request rejected")


class ServiceClient:
    """Blocking JSON client over :mod:`http.client` (stdlib only)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str, body: Any = None) -> Any:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            data = json.loads(raw.decode("utf-8")) if raw else None
            status = response.status
        finally:
            connection.close()
        if status == 202:
            return data
        if status >= 400:
            _raise_for(status, data)
        return data

    # -- endpoints ----------------------------------------------------------

    def submit(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/submit", body)

    def submit_run(
        self, target: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        return self.submit({
            "kind": "run", "target": target, "options": dict(options or {}),
        })

    def submit_simulate(self, scenario: str, **spec: Any) -> Dict[str, Any]:
        return self.submit({"kind": "simulate", "scenario": scenario, **spec})

    def status(self, request_id: str, events_from: int = 0) -> Dict[str, Any]:
        path = f"/status/{request_id}"
        if events_from:
            path += f"?events_from={events_from}"
        return self._request("GET", path)

    def result(self, request_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/result/{request_id}")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (OSError, ServiceError, ValueError):
            return False

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown", {})

    # -- convenience --------------------------------------------------------

    def wait(
        self,
        request_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        """Poll until the request finishes; returns the result document.

        ``on_event`` receives each newly observed pipeline-event dict once,
        in order — the polling consumer of the server's event stream.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        while True:
            status = self.status(request_id, events_from=cursor)
            events = status.get("events", [])
            if on_event is not None:
                for event in events:
                    on_event(event)
            cursor = int(status.get("events_seen", cursor + len(events)))
            state = status.get("status")
            if state == "done":
                return self.result(request_id)
            if state == "failed":
                raise RequestFailed(500, str(status.get("error", "failed")))
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"request {request_id} still {state!r} after {timeout}s"
                )
            time.sleep(poll_interval)

    def submit_and_wait(
        self,
        body: Mapping[str, Any],
        timeout: Optional[float] = None,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        record = self.submit(body)
        if record.get("status") == "done":
            return self.result(record["id"])
        return self.wait(record["id"], timeout=timeout, on_event=on_event)

    def wait_until_healthy(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthy():
                return
            time.sleep(0.05)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not healthy after {timeout}s"
        )


class AsyncServiceClient:
    """The same surface over asyncio streams (for event-loop callers)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    async def _request(self, method: str, path: str, body: Any = None) -> Any:
        # One timeout over the whole exchange (connect, write, read): a
        # server stalling after the status line must not hang the caller.
        status, raw = await asyncio.wait_for(
            self._exchange(method, path, body), timeout=self.timeout
        )
        data = json.loads(raw.decode("utf-8")) if raw else None
        if status == 202:
            return data
        if status >= 400:
            _raise_for(status, data)
        return data

    async def _exchange(self, method: str, path: str, body: Any):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = b"" if body is None else json.dumps(body).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            status = int(parts[1]) if len(parts) > 1 else 500
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip() or 0)
            raw = await reader.readexactly(length) if length else b""
            return status, raw
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def submit(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        return await self._request("POST", "/submit", body)

    async def submit_run(
        self, target: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        return await self.submit({
            "kind": "run", "target": target, "options": dict(options or {}),
        })

    async def submit_simulate(self, scenario: str, **spec: Any) -> Dict[str, Any]:
        return await self.submit(
            {"kind": "simulate", "scenario": scenario, **spec}
        )

    async def status(
        self, request_id: str, events_from: int = 0
    ) -> Dict[str, Any]:
        path = f"/status/{request_id}"
        if events_from:
            path += f"?events_from={events_from}"
        return await self._request("GET", path)

    async def result(self, request_id: str) -> Dict[str, Any]:
        return await self._request("GET", f"/result/{request_id}")

    async def stats(self) -> Dict[str, Any]:
        return await self._request("GET", "/stats")

    async def wait(
        self,
        request_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        while True:
            status = await self.status(request_id, events_from=cursor)
            events = status.get("events", [])
            if on_event is not None:
                for event in events:
                    on_event(event)
            cursor = int(status.get("events_seen", cursor + len(events)))
            state = status.get("status")
            if state == "done":
                return await self.result(request_id)
            if state == "failed":
                raise RequestFailed(500, str(status.get("error", "failed")))
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"request {request_id} still {state!r} after {timeout}s"
                )
            await asyncio.sleep(poll_interval)

    async def submit_and_wait(
        self,
        body: Mapping[str, Any],
        timeout: Optional[float] = None,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        record = await self.submit(body)
        if record.get("status") == "done":
            return await self.result(record["id"])
        return await self.wait(record["id"], timeout=timeout, on_event=on_event)
