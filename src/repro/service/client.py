"""Thin clients for the optimization service (sync and async).

:class:`ServiceClient` is the blocking client the CLI uses
(``python -m repro submit``); :class:`AsyncServiceClient` is the same
surface over asyncio streams for callers already on an event loop.  Both
speak the JSON protocol of :mod:`repro.service.server` and expose:

* ``submit(body)`` / ``submit_run(target, options)`` /
  ``submit_simulate(...)`` — admission (raises :class:`ServiceBusy` on 429);
* ``status(id)`` / ``result(id)`` / ``stats()`` — the read endpoints;
* ``wait(id, on_event=...)`` — poll until done, streaming newly observed
  pipeline events to ``on_event`` (incremental ``events_from`` cursors, so
  each event is delivered exactly once);
* ``submit_and_wait(...)`` — the one-call convenience the CLI uses.

Resilience: both clients run every exchange under the shared
:data:`~repro.resilience.retry.CLIENT_RETRY` policy (connection drops —
including injected ``connection`` faults — retry with jittered backoff;
re-submitting after a dropped response is safe because identical requests
coalesce server-side), ``wait`` polls on the policy's growing backoff
schedule instead of a fixed busy interval, and ``submit_and_wait`` honors
the server's ``retry_after`` hint when shed with a 429 — and equally on a
503 that carries one (a fleet router whose shard owner is draining or
respawning: the service is coming back, not going away).  When a router
reports the worker owning an in-flight request died (:class:`WorkerLost`),
``submit_and_wait`` re-submits the idempotent, cache-addressed body instead
of surfacing the error.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from http.client import HTTPConnection
from typing import Any, Callable, Dict, Mapping, Optional

from repro.obs.trace import TRACE_FIELD, current_context
from repro.resilience import faults as _faults
from repro.resilience.faults import InjectedFault
from repro.resilience.retry import CLIENT_RETRY, RetryPolicy

OnEvent = Callable[[Dict[str, Any]], None]

#: Transport failures worth retrying.  Deliberately *not* OSError: since
#: Python 3.10+ TimeoutError is an OSError, and retrying a full client
#: timeout would multiply the worst-case wait by the attempt count.
_TRANSIENT = (InjectedFault, ConnectionError)


class ServiceError(RuntimeError):
    """Any non-success response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceBusy(ServiceError):
    """The service shed the request (429 queue full / 503 draining).

    ``retry_after`` carries the server's backoff hint in seconds (None when
    the response had none) — derived server-side from queue depth and drain
    rate, so honoring it beats any client-side guess.
    """

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after


class WorkerLost(ServiceBusy):
    """A fleet router reports the worker owning this request died.

    The worker's in-memory record is gone, but submits are idempotent
    (cache-addressed, coalesced): re-submitting the same body recovers the
    request on whichever worker now owns its shard.  ``submit_and_wait``
    does this automatically.
    """


class RequestFailed(ServiceError):
    """The request executed and failed server-side."""


def _run_body(
    target: str,
    options: Optional[Mapping[str, Any]],
    deadline: Optional[float],
) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "kind": "run", "target": target, "options": dict(options or {}),
    }
    if deadline is not None:
        body["deadline"] = float(deadline)
    return body


def _traced_body(body: Mapping[str, Any]) -> Mapping[str, Any]:
    """Attach the ambient trace context to a submit body.

    When the caller runs inside a trace (``--profile``, a traced CLI run),
    the request carries ``trace_id/span_id`` so server-side spans land in
    the same trace.  The field rides outside the cache key, so a traced
    submit still coalesces and cache-hits with untraced twins.  An explicit
    field set by the caller wins.
    """
    ref = current_context()
    if ref is None or TRACE_FIELD in body:
        return body
    return {**body, TRACE_FIELD: ref}


def _raise_for(status: int, payload: Any) -> None:
    message = ""
    retry_after: Optional[float] = None
    lost = False
    if isinstance(payload, Mapping):
        message = str(payload.get("error", ""))
        hint = payload.get("retry_after")
        if isinstance(hint, (int, float)) and hint > 0:
            retry_after = float(hint)
        lost = bool(payload.get("lost"))
    if status in (429, 503):
        if lost:
            raise WorkerLost(status, message or "worker lost", retry_after)
        raise ServiceBusy(status, message or "service busy", retry_after)
    raise ServiceError(status, message or "request rejected")


def _busy_is_retryable(exc: ServiceBusy) -> bool:
    """Shed submits worth retrying: 429 always (the queue drains), 503 only
    when the server volunteered a ``retry_after`` (a fleet router covering a
    draining/respawning worker — a bare 503 means the whole service is going
    away for good and retrying would just delay the error)."""
    return exc.status == 429 or (
        exc.status == 503 and exc.retry_after is not None
    )


class ServiceClient:
    """Blocking JSON client over :mod:`http.client` (stdlib only)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 600.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else CLIENT_RETRY

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str, body: Any = None) -> Any:
        def exchange(attempt: int):
            _faults.check("connection", f"{method} {path}", attempt)
            return self._exchange_once(method, path, body)

        status, data = self.retry.call(
            exchange, retry_on=_TRANSIENT, salt=f"{method}:{path}"
        )
        if status == 202:
            return data
        if status >= 400:
            _raise_for(status, data)
        return data

    def _exchange_once(self, method: str, path: str, body: Any):
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            data = json.loads(raw.decode("utf-8")) if raw else None
            status = response.status
        finally:
            connection.close()
        return status, data

    # -- endpoints ----------------------------------------------------------

    def submit(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/submit", _traced_body(body))

    def submit_run(
        self,
        target: str,
        options: Optional[Mapping[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.submit(
            _run_body(target, options, deadline)
        )

    def submit_simulate(self, scenario: str, **spec: Any) -> Dict[str, Any]:
        return self.submit({"kind": "simulate", "scenario": scenario, **spec})

    def status(self, request_id: str, events_from: int = 0) -> Dict[str, Any]:
        path = f"/status/{request_id}"
        if events_from:
            path += f"?events_from={events_from}"
        return self._request("GET", path)

    def result(self, request_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/result/{request_id}")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The service's ``/metrics`` endpoint as Prometheus text.

        Bypasses the JSON transport — the exposition format is plain text.
        """
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServiceError(response.status, "metrics unavailable")
        finally:
            connection.close()
        return raw.decode("utf-8")

    def trace_spans(self, trace_id: str) -> Dict[str, Any]:
        """Recorded spans of one trace (``{"trace_id": ..., "spans": [...]}``)."""
        return self._request("GET", f"/trace/{trace_id}")

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (OSError, ServiceError, ValueError):
            return False

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown", {})

    # -- convenience --------------------------------------------------------

    def wait(
        self,
        request_id: str,
        timeout: Optional[float] = None,
        poll_interval: Optional[float] = None,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        """Poll until the request finishes; returns the result document.

        ``on_event`` receives each newly observed pipeline-event dict once,
        in order — the polling consumer of the server's event stream.

        Polling backs off on the retry policy's growing (jittered) schedule
        — quick first checks, settling at the policy's ``max_delay`` — so a
        fleet of waiting clients does not busy-hammer the status endpoint.
        Pass ``poll_interval`` to force a fixed cadence instead.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        delays = (
            itertools.repeat(float(poll_interval))
            if poll_interval is not None
            else self.retry.poll_delays(salt=f"wait:{request_id}")
        )
        for delay in delays:
            status = self.status(request_id, events_from=cursor)
            events = status.get("events", [])
            if on_event is not None:
                for event in events:
                    on_event(event)
            cursor = int(status.get("events_seen", cursor + len(events)))
            state = status.get("status")
            if state == "done":
                return self.result(request_id)
            if state == "failed":
                raise RequestFailed(500, str(status.get("error", "failed")))
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"request {request_id} still {state!r} after {timeout}s"
                )
            if deadline is not None:
                # Never sleep past the caller's timeout check.
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            time.sleep(delay)
        raise RuntimeError("poll schedule ended")  # pragma: no cover

    def submit_and_wait(
        self,
        body: Mapping[str, Any],
        timeout: Optional[float] = None,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        """Submit with backpressure backoff, then wait for the result.

        A shed submit retries up to the policy's attempt count, sleeping the
        server's ``retry_after`` hint when one came back (the server knows
        its own backlog) and the policy's jittered backoff otherwise.  This
        covers 429 (queue full) and 503s that carry a hint (a fleet router
        whose shard owner is draining or respawning); a bare 503 — the whole
        service going away — is not retried.

        If the wait ends with :class:`WorkerLost` (a fleet worker died with
        the request in flight), the idempotent body is re-submitted: the
        router routes it to the shard's new owner and nothing is dropped.
        """
        for round_ in range(self.retry.attempts):
            record = None
            for attempt in range(self.retry.attempts):
                try:
                    record = self.submit(body)
                    break
                except ServiceBusy as exc:
                    if (not _busy_is_retryable(exc)
                            or attempt == self.retry.attempts - 1):
                        raise
                    pause = (
                        exc.retry_after
                        if exc.retry_after is not None
                        else self.retry.delay(attempt, salt="submit-busy")
                    )
                    time.sleep(pause)
            assert record is not None
            try:
                if record.get("status") == "done":
                    return self.result(record["id"])
                return self.wait(record["id"], timeout=timeout,
                                 on_event=on_event)
            except WorkerLost as exc:
                if round_ == self.retry.attempts - 1:
                    raise
                pause = (
                    exc.retry_after
                    if exc.retry_after is not None
                    else self.retry.delay(round_, salt="worker-lost")
                )
                time.sleep(pause)
        raise RuntimeError("resubmit loop fell through")  # pragma: no cover

    def wait_until_healthy(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthy():
                return
            time.sleep(0.05)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not healthy after {timeout}s"
        )


class AsyncServiceClient:
    """The same surface over asyncio streams (for event-loop callers)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 600.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else CLIENT_RETRY

    async def _request(self, method: str, path: str, body: Any = None) -> Any:
        status = raw = None
        for attempt in range(self.retry.attempts):
            try:
                _faults.check("connection", f"{method} {path}", attempt)
                # One timeout over the whole exchange (connect, write,
                # read): a server stalling after the status line must not
                # hang the caller.
                status, raw = await asyncio.wait_for(
                    self._exchange(method, path, body), timeout=self.timeout
                )
                break
            except _TRANSIENT:
                if attempt == self.retry.attempts - 1:
                    raise
                await asyncio.sleep(
                    self.retry.delay(attempt, salt=f"{method}:{path}")
                )
        data = json.loads(raw.decode("utf-8")) if raw else None
        if status == 202:
            return data
        if status >= 400:
            _raise_for(status, data)
        return data

    async def _exchange(self, method: str, path: str, body: Any):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = b"" if body is None else json.dumps(body).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            status = int(parts[1]) if len(parts) > 1 else 500
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip() or 0)
            raw = await reader.readexactly(length) if length else b""
            return status, raw
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def submit(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        return await self._request("POST", "/submit", _traced_body(body))

    async def submit_run(
        self,
        target: str,
        options: Optional[Mapping[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        return await self.submit(
            _run_body(target, options, deadline)
        )

    async def submit_simulate(self, scenario: str, **spec: Any) -> Dict[str, Any]:
        return await self.submit(
            {"kind": "simulate", "scenario": scenario, **spec}
        )

    async def status(
        self, request_id: str, events_from: int = 0
    ) -> Dict[str, Any]:
        path = f"/status/{request_id}"
        if events_from:
            path += f"?events_from={events_from}"
        return await self._request("GET", path)

    async def result(self, request_id: str) -> Dict[str, Any]:
        return await self._request("GET", f"/result/{request_id}")

    async def stats(self) -> Dict[str, Any]:
        return await self._request("GET", "/stats")

    async def metrics(self) -> str:
        """The service's ``/metrics`` endpoint as Prometheus text."""
        status, raw = await asyncio.wait_for(
            self._exchange("GET", "/metrics", None), timeout=self.timeout
        )
        if status >= 400:
            raise ServiceError(status, "metrics unavailable")
        return raw.decode("utf-8")

    async def trace_spans(self, trace_id: str) -> Dict[str, Any]:
        """Recorded spans of one trace."""
        return await self._request("GET", f"/trace/{trace_id}")

    async def wait(
        self,
        request_id: str,
        timeout: Optional[float] = None,
        poll_interval: Optional[float] = None,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        delays = (
            itertools.repeat(float(poll_interval))
            if poll_interval is not None
            else self.retry.poll_delays(salt=f"wait:{request_id}")
        )
        for delay in delays:
            status = await self.status(request_id, events_from=cursor)
            events = status.get("events", [])
            if on_event is not None:
                for event in events:
                    on_event(event)
            cursor = int(status.get("events_seen", cursor + len(events)))
            state = status.get("status")
            if state == "done":
                return await self.result(request_id)
            if state == "failed":
                raise RequestFailed(500, str(status.get("error", "failed")))
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"request {request_id} still {state!r} after {timeout}s"
                )
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            await asyncio.sleep(delay)
        raise RuntimeError("poll schedule ended")  # pragma: no cover

    async def submit_and_wait(
        self,
        body: Mapping[str, Any],
        timeout: Optional[float] = None,
        on_event: Optional[OnEvent] = None,
    ) -> Dict[str, Any]:
        for round_ in range(self.retry.attempts):
            record = None
            for attempt in range(self.retry.attempts):
                try:
                    record = await self.submit(body)
                    break
                except ServiceBusy as exc:
                    if (not _busy_is_retryable(exc)
                            or attempt == self.retry.attempts - 1):
                        raise
                    pause = (
                        exc.retry_after
                        if exc.retry_after is not None
                        else self.retry.delay(attempt, salt="submit-busy")
                    )
                    await asyncio.sleep(pause)
            assert record is not None
            try:
                if record.get("status") == "done":
                    return await self.result(record["id"])
                return await self.wait(record["id"], timeout=timeout,
                                       on_event=on_event)
            except WorkerLost as exc:
                if round_ == self.retry.attempts - 1:
                    raise
                pause = (
                    exc.retry_after
                    if exc.retry_after is not None
                    else self.retry.delay(round_, salt="worker-lost")
                )
                await asyncio.sleep(pause)
        raise RuntimeError("resubmit loop fell through")  # pragma: no cover
