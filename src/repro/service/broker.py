"""Request broker: admission control, coalescing, batching, tiered caching.

The broker is the heart of the service and is usable without the HTTP layer
(tests drive it directly).  A submitted request flows through:

1. **validation** — :func:`repro.service.protocol.prepare_request` in a
   side executor (it may build the scenario graph for the key);
2. **tier 1** — the in-process :class:`~repro.sim.cache.LruCache` of
   rendered results, keyed by the request key: a hit answers immediately;
3. **tier 2** — the persistent :class:`~repro.pipeline.store.ArtifactStore`
   (``service-result`` artifacts for run requests, the throughput layer for
   simulate requests): a hit answers without recomputing and warms tier 1;
4. **coalescing** — an identical request already queued or running attaches
   to it as a follower: one execution, every caller gets the result;
5. **admission** — a bounded queue; at capacity the submit is rejected
   (:class:`~repro.service.protocol.QueueFullError`, HTTP 429) so load
   sheds at the edge instead of piling onto the workers;
6. **batching** — the work loop drains everything queued, groups compatible
   simulate requests into single batched-engine calls
   (:func:`repro.service.worker.group_requests`) and executes groups on the
   compute executor, streaming pipeline events back into the records.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry, global_registry, render_metrics
from repro.obs.names import stats_registry
from repro.pipeline.store import ArtifactStore
from repro.service import protocol
from repro.service.worker import ExecutionGroup, execute_group, group_requests
from repro.sim.cache import LruCache, cache_stats

#: Request lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class RequestRecord:
    """One submitted request and everything observable about it."""

    id: str
    prepared: protocol.PreparedRequest
    status: str = QUEUED
    cached: Optional[str] = None  # None | "memory" | "store" | "coalesced"
    created: float = field(default_factory=time.monotonic)
    created_wall: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    primary: Optional["RequestRecord"] = None  # set on coalesced followers
    followers: List["RequestRecord"] = field(default_factory=list)
    # Observability only: the trace this request belongs to, the span the
    # broker minted for it, and the caller-side parent span.  Never copied
    # into results, cache entries or store artifacts.
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    @property
    def key(self) -> str:
        return self.prepared.key

    def describe(self, events_from: int = 0) -> Dict[str, Any]:
        """JSON status view (the ``/status`` endpoint body)."""
        events = self.events if self.primary is None else self.primary.events
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": self.prepared.kind,
            "status": self.status,
            "key": self.key,
            "cached": self.cached,
            "spec": self.prepared.spec,
            "events": list(events[events_from:]),
            "events_seen": len(events),
        }
        if self.primary is not None:
            out["coalesced_with"] = self.primary.id
        if self.error is not None:
            out["error"] = self.error
        if self.finished is not None and self.started is not None:
            out["seconds"] = round(self.finished - self.started, 6)
        if self.trace_id is not None:
            # Status metadata only — the /result document stays trace-free.
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
        return out


class Broker:
    """Asynchronous request broker over the synchronous pipeline."""

    def __init__(
        self,
        store: Optional[ArtifactStore | str] = None,
        shards: int = 1,
        queue_limit: int = 32,
        l1_size: int = 256,
        keep_records: int = 1024,
    ) -> None:
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.shards = max(1, int(shards))
        self.queue_limit = max(1, int(queue_limit))
        self._queue: asyncio.Queue = asyncio.Queue()
        self._records: "dict[str, RequestRecord]" = {}
        self._record_order: List[str] = []
        self._keep_records = max(16, int(keep_records))
        self._inflight: Dict[str, RequestRecord] = {}
        self._l1 = LruCache(maxsize=l1_size)
        self._ids = itertools.count(1)
        self._accepting = True
        self._busy = False
        # Admission slots reserved by submits that are between the capacity
        # check and their enqueue (the tier-2 probe awaits in between): a
        # concurrent burst must not slip past queue_limit through that gap.
        self._admitting = 0
        # EMA of per-request compute seconds — the drain-rate estimate behind
        # the 429 retry_after hint (None until the first group completes).
        self._ema_request_seconds: Optional[float] = None
        self._started = time.monotonic()
        self._worker_task: Optional[asyncio.Task] = None
        # Validation must not wait behind a long-running batch, or identical
        # requests could never meet in flight — hence two executors.
        self._prepare_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-svc-prepare"
        )
        self._compute_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-svc-compute"
        )
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "coalesced": 0,
            "cache_hits_memory": 0,
            "cache_hits_store": 0,
            "batches": 0,
            "batched_lanes": 0,
            "max_batch_lanes": 0,
        }
        # Live metric families owned by this broker (the /stats counters are
        # mirrored through repro.obs.names at render time instead, so both
        # views share one name table by construction).
        self.metrics = MetricsRegistry()
        self._latency = self.metrics.histogram(
            "repro_request_seconds",
            "Request wall time from admission to completion",
        )

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._worker_task is None:
            self._worker_task = asyncio.create_task(self._work_loop())

    async def close(self, drain: bool = True) -> None:
        """Stop accepting; optionally finish queued work, then shut down."""
        self._accepting = False
        if drain:
            await self.join()
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
            self._worker_task = None
        self._prepare_pool.shutdown(wait=False)
        # On a hard abort (drain=False) this leaves the compute thread
        # running; callers that truly must exit immediately (the server's
        # second-signal path) os._exit, because executor threads are
        # non-daemon and the interpreter joins them at exit regardless.
        self._compute_pool.shutdown(wait=drain)

    async def join(self) -> None:
        """Wait until the queue is empty and nothing is executing."""
        while not self._queue.empty() or self._busy:
            await asyncio.sleep(0.02)

    @property
    def accepting(self) -> bool:
        return self._accepting

    # -- submission ---------------------------------------------------------

    def _new_record(self, prepared: protocol.PreparedRequest) -> RequestRecord:
        record = RequestRecord(
            id=f"req-{next(self._ids):05d}-{uuid.uuid4().hex[:6]}",
            prepared=prepared,
        )
        if prepared.trace_id is not None:
            # Mint the broker-side request span up front and re-point the
            # prepared request's parent at it, so execution spans recorded
            # on the compute thread nest under this request rather than
            # directly under the caller.
            record.trace_id = prepared.trace_id
            record.parent_span_id = prepared.parent_span_id
            record.span_id = _trace.derive_span_id(
                prepared.trace_id,
                prepared.parent_span_id or "",
                f"request:{record.id}",
                0,
            )
            prepared.parent_span_id = record.span_id
        self._records[record.id] = record
        self._record_order.append(record.id)
        # Retention only ever evicts *terminal* records: a flood of cache
        # hits must not 404 a client still polling its running request.
        while len(self._record_order) > self._keep_records:
            for position, stale_id in enumerate(self._record_order):
                stale = self._records.get(stale_id)
                if stale is None or stale.status in (DONE, FAILED):
                    del self._record_order[position]
                    self._records.pop(stale_id, None)
                    break
            else:
                break  # everything retained is live; let history run long
        return record

    def _tier2_lookup(
        self, prepared: protocol.PreparedRequest
    ) -> Optional[Dict[str, Any]]:
        """Blocking persistent-store probe (runs on the prepare executor)."""
        if self.store is None:
            return None
        if prepared.kind == "simulate":
            assert prepared.sim_key is not None
            value = self.store.get_throughput(prepared.sim_key)
            if value is None:
                return None
            # Same document shape as a fresh execution: the result is a
            # function of the request, whichever tier answers.
            return {
                "scenario": prepared.scenario,
                "throughput": value,
                "cycles": prepared.cycles,
                "warmup": prepared.warmup,
                "seed": prepared.seed,
                "mode": prepared.mode,
            }
        return self.store.get(protocol.result_artifact_key(prepared.key))

    async def submit(self, body: Any) -> RequestRecord:
        """Admit one request; returns its record (possibly already done).

        Raises:
            protocol.RequestError: Malformed body (HTTP 400).
            protocol.QueueFullError: Admission queue at capacity (HTTP 429).
            protocol.ShuttingDownError: Service draining (HTTP 503).
        """
        if not self._accepting:
            raise protocol.ShuttingDownError("service is shutting down")
        loop = asyncio.get_running_loop()
        prepared = await loop.run_in_executor(
            self._prepare_pool, protocol.prepare_request, body
        )
        self.counters["submitted"] += 1
        record = self._new_record(prepared)

        # Tier 1: rendered result already in memory.
        hit = self._l1.get(prepared.key)
        if hit is not None:
            self.counters["cache_hits_memory"] += 1
            self._finish(record, hit, cached="memory")
            return record

        # Coalesce with identical queued/running work before touching disk —
        # the in-flight primary will warm both tiers for everyone.
        primary = self._inflight.get(prepared.key)
        if primary is not None:
            self.counters["coalesced"] += 1
            record.primary = primary
            primary.followers.append(record)
            record.status = primary.status
            record.cached = "coalesced"
            return record

        # Admission control: bounded queue, shed at the edge (before the
        # disk probe so an overloaded service answers 429 cheaply).  The
        # reserved-slot count covers submits currently awaiting their probe,
        # so a concurrent burst cannot slip past the limit through the gap.
        if self._queue.qsize() + self._admitting >= self.queue_limit:
            self.counters["rejected"] += 1
            self._records.pop(record.id, None)
            # Drop the order entry too, or sustained overload would eat the
            # retention budget.
            try:
                self._record_order.remove(record.id)
            except ValueError:
                pass
            raise protocol.QueueFullError(
                f"queue full ({self.queue_limit} pending); retry in "
                f"~{self.retry_after_hint():g}s"
            )

        # Register as the in-flight primary *before* awaiting the store
        # probe, so a concurrent identical submit coalesces instead of
        # racing to a second execution; followers attached meanwhile are
        # completed by _finish either way.
        self._inflight[prepared.key] = record
        self._admitting += 1
        try:
            # Tier 2: persistent artifacts / throughputs.
            stored = await loop.run_in_executor(
                self._prepare_pool, self._tier2_lookup, prepared
            )
            if stored is not None:
                self.counters["cache_hits_store"] += 1
                self._inflight.pop(prepared.key, None)
                self._l1.put(prepared.key, stored)
                self._finish(record, stored, cached="store")
                return record
            # A drain may have started while this submit awaited its probe;
            # enqueueing now would strand the record with no consumer.
            if not self._accepting:
                raise protocol.ShuttingDownError("service is shutting down")
            self._queue.put_nowait(record)
        except BaseException as exc:
            # The probe cannot realistically raise (the store degrades to a
            # miss), but if it ever does, coalesced followers must not hang.
            self._inflight.pop(prepared.key, None)
            self._fail(record, f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self._admitting -= 1
        return record

    def get(self, request_id: str) -> Optional[RequestRecord]:
        return self._records.get(request_id)

    # -- completion ---------------------------------------------------------

    def _finish(
        self,
        record: RequestRecord,
        result: Dict[str, Any],
        cached: Optional[str],
    ) -> None:
        record.result = result
        record.status = DONE
        record.cached = cached if record.cached is None else record.cached
        now = time.monotonic()
        record.started = record.started if record.started is not None else now
        record.finished = now
        self.counters["completed"] += 1
        self._observe_done(record)
        for follower in record.followers:
            follower.result = result
            follower.status = DONE
            follower.started = record.started
            follower.finished = now
            self.counters["completed"] += 1
            self._observe_done(follower)

    def _fail(self, record: RequestRecord, message: str) -> None:
        record.error = message
        record.status = FAILED
        record.finished = time.monotonic()
        self.counters["failed"] += 1
        self._observe_done(record)
        for follower in record.followers:
            follower.error = message
            follower.status = FAILED
            follower.finished = record.finished
            self.counters["failed"] += 1
            self._observe_done(follower)

    def _observe_done(self, record: RequestRecord) -> None:
        """Latency histogram + broker-side spans for a terminal record.

        Runs on the event loop; span recording is a dict append (plus one
        small sink write when configured), never a compute.
        """
        finished = record.finished if record.finished is not None else time.monotonic()
        total = max(0.0, finished - record.created)
        self._latency.observe(total, kind=record.prepared.kind)
        if record.trace_id is None or record.span_id is None:
            return
        _trace.finish_span_record(
            record.trace_id,
            record.span_id,
            record.parent_span_id,
            "request",
            record.created_wall,
            total,
            request_id=record.id,
            kind=record.prepared.kind,
            status=record.status,
            cached=record.cached,
        )
        # Queue wait only exists for requests that actually executed (cache
        # hits and coalesced followers never enter the queue).
        if record.cached is None and record.started is not None:
            _trace.finish_span_record(
                record.trace_id,
                _trace.derive_span_id(
                    record.trace_id, record.span_id, "queue-wait", 0
                ),
                record.span_id,
                "queue-wait",
                record.created_wall,
                max(0.0, record.started - record.created),
            )

    def _emit_threadsafe(self, loop: asyncio.AbstractEventLoop):
        def emit(request_id: str, event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._append_event, request_id, event)
        return emit

    def _append_event(self, request_id: str, event: Dict[str, Any]) -> None:
        record = self._records.get(request_id)
        if record is not None:
            record.events.append(event)

    # -- the work loop ------------------------------------------------------

    async def _work_loop(self) -> None:
        loop = asyncio.get_running_loop()
        emit = self._emit_threadsafe(loop)
        while True:
            record = await self._queue.get()
            batch = [record]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._busy = True
            try:
                entries = [(r.id, r.prepared) for r in batch]
                by_id = {r.id: r for r in batch}
                for group in group_requests(entries):
                    await self._run_group(loop, group, by_id, emit)
            finally:
                self._busy = False

    async def _run_group(
        self,
        loop: asyncio.AbstractEventLoop,
        group: ExecutionGroup,
        by_id: Dict[str, RequestRecord],
        emit,
    ) -> None:
        records = [by_id[request_id] for request_id in group.request_ids]
        now = time.monotonic()
        for record in records:
            record.status = RUNNING
            record.started = now
            for follower in record.followers:
                follower.status = RUNNING
                follower.started = now
        self.counters["batches"] += 1
        self.counters["batched_lanes"] += group.lanes
        self.counters["max_batch_lanes"] = max(
            self.counters["max_batch_lanes"], group.lanes
        )
        try:
            results = await loop.run_in_executor(
                self._compute_pool,
                execute_group,
                group,
                self.store,
                self.shards,
                emit,
            )
        except Exception as exc:  # noqa: BLE001 — a request must never kill the loop
            message = f"{type(exc).__name__}: {exc}"
            for record in records:
                self._inflight.pop(record.key, None)
                self._fail(record, message)
            return
        # Fold this group into the drain-rate estimate (per request, so a
        # 12-lane batch counts as 12 cheap requests, not one long one).
        elapsed = max(1e-3, time.monotonic() - now) / max(1, group.lanes)
        if self._ema_request_seconds is None:
            self._ema_request_seconds = elapsed
        else:
            self._ema_request_seconds = (
                0.7 * self._ema_request_seconds + 0.3 * elapsed
            )
        for record, result in zip(records, results):
            self._inflight.pop(record.key, None)
            if "degraded" not in result:
                # A degraded result answers *this* deadline-pressed request
                # only; caching it would serve a non-canonical answer to
                # later unconstrained requests for the same key.
                self._l1.put(record.key, result)
            self._finish(record, result, cached=None)

    # -- accounting ---------------------------------------------------------

    def retry_after_hint(self) -> float:
        """Seconds a 429'd client should wait before retrying.

        Derived from the live queue depth and the measured drain rate (EMA
        of per-request compute seconds) instead of a hardcoded constant: an
        idle-but-bursty service hints sub-second retries, a service deep in
        MILP sweeps tells clients to stay away longer.  Clamped to [0.1, 30].
        """
        depth = self._queue.qsize() + self._admitting + (1 if self._busy else 0)
        per_request = (
            self._ema_request_seconds
            if self._ema_request_seconds is not None
            else 1.0  # no history yet: assume a ~1s request
        )
        return round(min(30.0, max(0.1, depth * per_request)), 2)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss, queue and batching counters (the ``/stats`` body)."""
        from repro.sim.kernels import kernel_backend

        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "accepting": self._accepting,
            "shards": self.shards,
            # Live host provenance: which compiled simulation backend this
            # process runs (results are backend-independent).
            "kernel_backend": kernel_backend(),
            "queue": {
                "depth": self._queue.qsize(),
                "limit": self.queue_limit,
                "in_flight": len(self._inflight),
                "busy": self._busy,
                "retry_after_hint": self.retry_after_hint(),
                # The drain-rate estimate behind retry_after_hint, exposed so
                # the fleet router's health scoring (queue depth x per-request
                # seconds) and humans reading /stats see the same numbers.
                "ema_request_seconds": (
                    None if self._ema_request_seconds is None
                    else round(self._ema_request_seconds, 6)
                ),
                # 0.0 (not None/NaN) before the first completion, so fresh
                # servers always expose a valid, chartable number.
                "drain_rate_rps": (
                    0.0 if not self._ema_request_seconds
                    else round(1.0 / self._ema_request_seconds, 3)
                ),
            },
            "requests": dict(self.counters),
            "cache": {
                "l1": self._l1.stats(),
                # Counters only — ArtifactStore.stats() walks the whole
                # directory for its entry count, far too slow for a stats
                # endpoint served from the event loop.
                "store": None if self.store is None else {
                    "hits": self.store.hits, "misses": self.store.misses,
                },
                "sim": cache_stats(),
            },
        }

    def render_metrics(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition.

        Counters are mirrored from :meth:`stats` through the canonical
        name table (:mod:`repro.obs.names`), merged with the broker's live
        latency histogram and the process-global registry (retries,
        journal records).
        """
        return render_metrics(
            stats_registry(self.stats()), self.metrics, global_registry()
        )
