"""Deterministic consistent-hash ring for fingerprint-sharded routing.

The fleet router shards requests across worker processes by the same
RRG-fingerprint + stage-params digest the :class:`~repro.pipeline.store
.ArtifactStore` and the broker's coalescer key on, so each fingerprint's L1
result cache and in-flight coalescing live on exactly one worker.  The ring
gives that mapping three properties the fleet depends on:

* **determinism** — the ring is a pure function of the member list (every
  member contributes ``replicas`` virtual points at SHA-256 positions), so
  any process that knows the worker names computes the same routing;
* **stability** — the same key always routes to the same live member;
* **bounded movement** — adding or removing one member moves only the keys
  that member owns (~1/N of the space), never reshuffling the rest, so a
  worker restart invalidates one shard's L1, not the whole fleet's.

``route(key, exclude=...)`` walks clockwise past excluded members, which is
exactly the failover order the router uses while a worker is dead or
draining: a shard's keys spill to the ring successor and come back when the
worker returns.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, Iterator, List, Tuple

#: Virtual points per member.  64 keeps the largest/smallest shard within a
#: few tens of percent of the mean for small fleets while ring construction
#: stays microseconds.
DEFAULT_REPLICAS = 64


def ring_position(label: str) -> int:
    """The ring position of a label (first 8 bytes of its SHA-256)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named members.

    Construction is deterministic: the same member set (in any order) and
    replica count produce an identical ring.
    """

    def __init__(
        self, members: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []
        self._members: Dict[str, bool] = {}
        for member in members:
            self.add(member)

    # -- membership ---------------------------------------------------------

    @property
    def members(self) -> Tuple[str, ...]:
        return tuple(sorted(self._members))

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    def add(self, member: str) -> None:
        """Add a member (idempotent)."""
        if member in self._members:
            return
        self._members[member] = True
        for replica in range(self.replicas):
            point = ring_position(f"{member}#{replica}")
            bisect.insort(self._points, (point, member))

    def remove(self, member: str) -> None:
        """Remove a member (idempotent)."""
        if member not in self._members:
            return
        del self._members[member]
        self._points = [entry for entry in self._points if entry[1] != member]

    # -- routing ------------------------------------------------------------

    def route(self, key: str, exclude: Iterable[str] = ()) -> str:
        """The member owning ``key``, skipping any in ``exclude``.

        Raises LookupError when the ring is empty or every member is
        excluded.
        """
        for member in self.chain(key):
            if member not in exclude:
                return member
        raise LookupError("no eligible ring member")

    def chain(self, key: str) -> Iterator[str]:
        """Members in failover order for ``key``: the owner first, then each
        distinct successor clockwise.  Every member appears exactly once."""
        if not self._points:
            return
        start = bisect.bisect_right(self._points, (ring_position(key),))
        seen = set()
        total = len(self._points)
        for offset in range(total):
            member = self._points[(start + offset) % total][1]
            if member not in seen:
                seen.add(member)
                yield member
                if len(seen) == len(self._members):
                    return

    def shares(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each member owns (diagnostics / tests)."""
        counts = {member: 0 for member in self._members}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary (the router's ``/fleet`` body uses it)."""
        return {
            "members": list(self.members),
            "replicas": self.replicas,
            "points": len(self._points),
        }
