"""Fleet mode: multi-process service scale-out with sharded routing.

One :mod:`repro.service.server` process is a single-core ceiling — the
broker's compute executor, the asyncio loop and the JSON marshalling all
share one GIL.  Fleet mode turns that ceiling into a *per-worker* number:

* a **front-end router** (:class:`FleetRouter`) accepts the existing
  JSON-over-HTTP protocol unchanged and forwards each request to one of N
  **worker processes**, each running today's single-process server
  (``python -m repro serve``) on its own port;
* routing is **consistent hashing on the request cache key** — the same
  RRG-fingerprint + stage-params digest the
  :class:`~repro.pipeline.store.ArtifactStore` and the broker's coalescer
  use (:class:`~repro.service.ring.HashRing`), so each fingerprint's L1 LRU
  and in-flight coalescing live on exactly one worker;
* the **shared persistent ArtifactStore** behind every worker is the L3
  tier: a worker restart loses one shard's L1, never its computed results;
* a **supervisor** (:class:`FleetSupervisor`) spawns the workers and
  respawns them on death, with the same bounded-rebuild discipline as the
  pipeline's process pool (:data:`WORKER_RESPAWNS`, mirroring
  :data:`repro.pipeline.runner.POOL_REBUILDS`);
* the router's **health scoring** reuses the broker's own drain-rate
  estimate: each worker's ``/stats`` exposes its queue depth and
  per-request-seconds EMA, and the router scores workers by their product —
  the same quantity behind the 429 ``retry_after`` hint;
* **draining and death** move only the dead shard's keys (to the ring
  successor) and move them back on return; a request lost with a dying
  worker is reported to the client as a 503 with ``"lost": true`` and a
  ``retry_after`` hint, and the clients' ``submit_and_wait`` re-submits the
  idempotent body — no request is dropped, only delayed.

``python -m repro serve --workers N`` starts a fleet; ``--workers 1`` (the
default) runs the unchanged single-process server — byte-identical
behavior, zero router overhead.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import trace as _trace
from repro.obs.metrics import global_registry, render_metrics
from repro.obs.names import REQUEST_COUNTERS, REQUEST_GAUGES, fleet_registry
from repro.service import protocol
from repro.service.ring import HashRing
from repro.service.server import (
    TextPayload,
    read_request,
    trace_endpoint,
    write_response,
)

#: Worker lifecycle states.
STARTING = "starting"
LIVE = "live"
DRAINING = "draining"
DEAD = "dead"

#: Unplanned respawns allowed per worker before its shard fails over to the
#: ring successor permanently — the pool-rebuild pattern of
#: :data:`repro.pipeline.runner.POOL_REBUILDS`, per worker instead of per
#: pool (a service heals workers individually, it never tears down the
#: whole fleet).
WORKER_RESPAWNS = 5

#: Transport failures while talking to a worker.
_RELAY_ERRORS = (
    OSError,
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    ValueError,  # a half-dead worker emitting a truncated status line
)

#: Consecutive failed health probes before a live worker is declared dead.
_PROBE_FAILURES = 3

#: Seconds a STARTING worker may stay unresponsive before it is treated as
#: dead and respawned — a process that is alive but hung at boot must not
#: leave its shard silently degraded forever.
_BOOT_DEADLINE = 30.0

#: Seconds a DRAINING worker may keep running after its drain began.  A
#: draining worker closes its listener before publishing in-flight work, so
#: failed probes are the *expected* shape of a drain, not a death; only an
#: overrun deadline forces the issue.
_DRAIN_DEADLINE = 120.0

#: A worker death this soon after spawn is most likely the bind-and-release
#: port race in :func:`_free_port` (another process grabbed the port between
#: release and the worker's bind), not a worker bug: respawn on a fresh port
#: without charging the unplanned-death budget.  Bounded by its own counter
#: so a worker that always crashes at boot still fails permanently.
_EARLY_DEATH_GRACE = 2.0
_EARLY_DEATH_RESPAWNS = 10


def _free_port(host: str) -> int:
    """An OS-assigned free TCP port on ``host`` (bind-and-release)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class WorkerHandle:
    """One worker process and everything the router knows about it."""

    def __init__(self, name: str, host: str) -> None:
        self.name = name
        self.host = host
        self.port: Optional[int] = None
        self.state = DEAD
        self.process: Optional[subprocess.Popen] = None
        self.respawns = 0          # unplanned (budgeted) respawns
        self.restarts = 0          # planned drain/restart cycles
        self.early_deaths = 0      # bind-race deaths (unbudgeted respawns)
        self.consecutive_failures = 0
        self.score: Optional[float] = None  # queue depth x drain EMA
        self.stats: Optional[Dict[str, Any]] = None
        self.spawned_at: Optional[float] = None
        self.draining_since: Optional[float] = None

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def describe(self) -> Dict[str, Any]:
        return {
            "port": self.port,
            "pid": self.pid,
            "state": self.state,
            "score": self.score,
            "respawns": self.respawns,
            "restarts": self.restarts,
            "early_deaths": self.early_deaths,
        }


class FleetSupervisor:
    """Spawns and respawns the worker processes of a fleet.

    Every worker is literally today's single-process server — the
    supervisor runs ``python -m repro serve --port <free-port> --quiet``
    with the shared store, so a one-worker fleet and the plain server are
    the same code executing.  Respawns always pick a fresh port (no bind
    races with a dying predecessor); workers are addressed by *name* in the
    hash ring, so the key mapping never moves on a restart.
    """

    def __init__(
        self,
        workers: int,
        host: str = "127.0.0.1",
        store: Optional[str] = None,
        shards: int = 1,
        queue_limit: int = 32,
        quiet: bool = True,
        max_respawns: int = WORKER_RESPAWNS,
    ) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.host = host
        self.store = store
        self.shards = max(1, int(shards))
        self.queue_limit = max(1, int(queue_limit))
        self.quiet = quiet
        self.max_respawns = max(0, int(max_respawns))
        self.handles: Dict[str, WorkerHandle] = {
            f"worker-{index}": WorkerHandle(f"worker-{index}", host)
            for index in range(workers)
        }

    @property
    def names(self) -> List[str]:
        return list(self.handles)

    def command(self, handle: WorkerHandle) -> List[str]:
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", str(handle.port),
            "--shards", str(self.shards),
            "--queue-limit", str(self.queue_limit),
            "--quiet",
        ]
        if self.store is not None:
            cmd += ["--store", str(self.store)]
        return cmd

    def environment(self) -> Dict[str, str]:
        env = dict(os.environ)
        # Make `python -m repro` importable in the child regardless of how
        # this process found the package (tests run from a src/ layout).
        src = str(Path(__file__).resolve().parents[2])
        parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        return env

    def spawn(self, handle: WorkerHandle) -> None:
        """(Re)start one worker on a fresh port; state becomes STARTING."""
        handle.port = _free_port(self.host)
        sink = subprocess.DEVNULL if self.quiet else None
        handle.process = subprocess.Popen(
            self.command(handle),
            env=self.environment(),
            stdout=sink,
            stderr=sink,
        )
        handle.state = STARTING
        handle.consecutive_failures = 0
        handle.score = None
        handle.stats = None
        handle.spawned_at = time.monotonic()
        handle.draining_since = None

    def spawn_all(self) -> None:
        for handle in self.handles.values():
            self.spawn(handle)

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate (then kill) every worker process still running."""
        for handle in self.handles.values():
            if handle.alive():
                handle.process.terminate()
        deadline = time.monotonic() + timeout
        for handle in self.handles.values():
            if handle.process is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait()
            handle.state = DEAD


class FleetRouter:
    """The HTTP front of a fleet: sharded routing, health, aggregation.

    Speaks the single-process server's protocol unchanged on the outside;
    on the inside it validates each submit (the same
    :func:`repro.service.protocol.prepare_request` the workers run), hashes
    the request's cache key onto the ring, and relays to the owning worker.
    ``/status`` and ``/result`` follow the request id back to the worker
    that issued it; ``/stats`` and ``/healthz`` aggregate across the fleet.
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        host: str = "127.0.0.1",
        port: int = 8642,
        quiet: bool = True,
        health_interval: float = 0.5,
        max_tracked_requests: int = 65536,
        metrics_digest: bool = False,
        digest_interval: float = 10.0,
    ) -> None:
        self.supervisor = supervisor
        self.workers = supervisor.handles
        self.ring = HashRing(supervisor.names)
        self.host = host
        self.port = port
        self.quiet = quiet
        self.health_interval = health_interval
        self._owners: "OrderedDict[str, str]" = OrderedDict()
        self._max_tracked = max(1024, int(max_tracked_requests))
        self._accepting = True
        self._started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._metrics_digest = metrics_digest
        self._digest_interval = max(0.5, float(digest_interval))
        self._digest_task: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._exit_code = 0
        # Validation runs here once per submit (the worker re-validates on
        # its own prepare pool; both share the per-process scenario cache).
        self._prepare_pool = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-fleet-prepare"
        )
        self.counters = {
            "routed": 0,
            "rerouted": 0,
            "unrouted": 0,
            "lost": 0,
            "worker_deaths": 0,
            "respawns": 0,
            "drains": 0,
        }
        self.routed_by_worker = {name: 0 for name in self.workers}

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self.supervisor.store is not None:
            # Router route-spans land in the same JSONL sink the workers
            # append to (they share the store), so /trace/<id> on the
            # router sees the whole fleet even after a worker restart.
            _trace.set_trace_sink(
                _trace.store_sink_path(self.supervisor.store)
            )
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._health_task = asyncio.create_task(self._health_loop())
        if self._metrics_digest:
            self._digest_task = asyncio.create_task(self._digest_loop())
        self._log(
            f"fleet: router on http://{self.host}:{self.port} "
            f"({len(self.workers)} worker(s))"
        )

    async def _digest_loop(self) -> None:
        """One metrics line every ``digest_interval`` seconds (``--metrics``)."""
        while True:
            await asyncio.sleep(self._digest_interval)
            live = sum(
                1 for handle in self.workers.values() if handle.state == LIVE
            )
            submitted = 0
            for handle in self.workers.values():
                if isinstance(handle.stats, dict):
                    submitted += int(
                        (handle.stats.get("requests") or {}).get("submitted")
                        or 0
                    )
            counters = self.counters
            print(
                f"metrics: uptime={time.monotonic() - self._started:.0f}s "
                f"workers={live}/{len(self.workers)} "
                f"submitted={submitted} routed={counters['routed']} "
                f"rerouted={counters['rerouted']} lost={counters['lost']} "
                f"deaths={counters['worker_deaths']}",
                flush=True,
            )

    async def serve_until_shutdown(self) -> int:
        await self._shutdown.wait()
        await self.stop(drain=self._exit_code == 0)
        return self._exit_code

    async def stop(self, drain: bool = True) -> None:
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._digest_task is not None:
            self._digest_task.cancel()
            try:
                await self._digest_task
            except asyncio.CancelledError:
                pass
            self._digest_task = None
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if drain:
            self._log("fleet: draining workers")
            await self._drain_workers()
        self.supervisor.stop()
        self._prepare_pool.shutdown(wait=False)
        self._log("fleet: stopped")

    async def _drain_workers(self, timeout: float = 60.0) -> None:
        """Ask every running worker to drain, then wait for their exits."""
        async def ask(handle: WorkerHandle) -> None:
            if not handle.alive():
                return
            try:
                await self._relay(handle, "POST", "/shutdown", {}, timeout=10)
            except _RELAY_ERRORS:
                pass

        await asyncio.gather(
            *(ask(handle) for handle in self.workers.values()),
            return_exceptions=True,
        )
        deadline = time.monotonic() + timeout
        while (
            any(handle.alive() for handle in self.workers.values())
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.1)

    def request_shutdown(self, exit_code: int = 0) -> None:
        self._exit_code = exit_code or self._exit_code
        self._shutdown.set()

    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        """First SIGINT/SIGTERM drains the fleet; the second aborts hard."""
        def _signal() -> None:
            if not self._shutdown.is_set():
                self._log(
                    "fleet: shutdown requested — draining "
                    "(signal again to abort)"
                )
                self.request_shutdown(0)
            else:
                self._log("fleet: hard abort")
                for handle in self.workers.values():
                    if handle.alive():
                        handle.process.kill()
                os._exit(1)
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _signal)
            except (NotImplementedError, RuntimeError):
                pass

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(message, flush=True)

    # -- worker health ------------------------------------------------------

    async def _health_loop(self) -> None:
        """Probe each worker's ``/stats``; promote, score, or declare dead.

        The score is queue depth × the per-request-seconds EMA — the exact
        numbers the worker's broker derives its 429 ``retry_after`` hint
        from, now shared between the router and ``/stats`` readers.
        """
        while True:
            await asyncio.sleep(self.health_interval)
            try:
                await self._health_tick()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — one bad probe must
                # never kill the loop: a dead health task would leave
                # workers unpromoted and unhealed forever.
                self._log(
                    f"fleet: health tick error "
                    f"({type(exc).__name__}: {exc}); continuing"
                )

    async def _health_tick(self) -> None:
        for handle in self.workers.values():
            if handle.state == DEAD:
                continue  # respawn budget exhausted: permanent
            if not handle.alive():
                if handle.state == DRAINING:
                    # Planned exit: restart outside the respawn budget.
                    handle.restarts += 1
                    self.supervisor.spawn(handle)
                else:
                    self._mark_dead(handle)
                continue
            try:
                status, payload = await self._relay(
                    handle, "GET", "/stats", None, timeout=5
                )
            except _RELAY_ERRORS:
                now = time.monotonic()
                if handle.state == STARTING:
                    # Still booting; the process is alive — but not
                    # forever: a worker hung at boot is respawned.
                    if (
                        handle.spawned_at is not None
                        and now - handle.spawned_at > _BOOT_DEADLINE
                    ):
                        self._mark_dead(handle)
                    continue
                if handle.state == DRAINING:
                    # A draining worker closes its listener before
                    # publishing in-flight work: failed probes are
                    # expected.  Killing it here would discard the very
                    # work the drain is preserving, so only an overrun
                    # drain deadline forces the issue.
                    if (
                        handle.draining_since is not None
                        and now - handle.draining_since > _DRAIN_DEADLINE
                    ):
                        self._mark_dead(handle)
                    continue
                handle.consecutive_failures += 1
                if handle.consecutive_failures >= _PROBE_FAILURES:
                    self._mark_dead(handle)
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            handle.consecutive_failures = 0
            queue = payload.get("queue") or {}
            depth = queue.get("depth") or 0
            ema = queue.get("ema_request_seconds") or 1.0
            handle.score = round(float(depth) * float(ema), 6)
            handle.stats = payload
            if handle.state == STARTING:
                handle.state = LIVE
                self._log(
                    f"fleet: {handle.name} live on port {handle.port}"
                )
            elif handle.state == LIVE and payload.get("accepting") is False:
                # The worker began its own drain (direct SIGTERM).
                self._note_draining(handle)

    def _note_draining(self, handle: WorkerHandle) -> None:
        """Transition a handle to DRAINING, stamping the drain deadline."""
        if handle.state != DRAINING:
            handle.state = DRAINING
            handle.draining_since = time.monotonic()

    def _mark_dead(self, handle: WorkerHandle) -> None:
        """Unplanned death: fail the shard over and respawn within budget."""
        if handle.state == DEAD:
            return
        early_exit = (
            not handle.alive()
            and handle.state == STARTING
            and handle.spawned_at is not None
            and time.monotonic() - handle.spawned_at <= _EARLY_DEATH_GRACE
        )
        if handle.alive():
            handle.process.kill()
        handle.state = DEAD
        self.counters["worker_deaths"] += 1
        if early_exit and handle.early_deaths < _EARLY_DEATH_RESPAWNS:
            # Probable _free_port bind race: the port was taken between
            # release and the worker's bind.  A fresh port fixes it, and
            # the race is not the worker's fault, so it doesn't spend the
            # unplanned-death budget.
            handle.early_deaths += 1
            self.counters["respawns"] += 1
            self._log(
                f"fleet: {handle.name} exited at boot (likely port race); "
                f"respawning on a fresh port "
                f"({handle.early_deaths}/{_EARLY_DEATH_RESPAWNS} early exits)"
            )
            self.supervisor.spawn(handle)
            return
        if handle.respawns < self.supervisor.max_respawns:
            handle.respawns += 1
            self.counters["respawns"] += 1
            self._log(
                f"fleet: {handle.name} died; respawning "
                f"(attempt {handle.respawns}/{self.supervisor.max_respawns})"
            )
            self.supervisor.spawn(handle)
        else:
            self._log(
                f"fleet: {handle.name} exceeded its respawn budget; its "
                "shard fails over to the ring successor"
            )

    def _retry_hint(self) -> float:
        """How soon a rerouted/lost client should retry: two health ticks
        (a respawned worker is usually live again by then)."""
        return round(max(0.2, 2 * self.health_interval), 2)

    # -- HTTP ---------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(read_request(reader), timeout=30)
            if request is None:
                return
            method, path, body = request
            status, payload = await self._route(method, path, body)
            await write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the router
            try:
                await write_response(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(
        self, method: str, path: str, body: Any
    ) -> Tuple[int, Any]:
        path, _, _query = path.partition("?")
        stripped = path.rstrip("/") or "/"
        if isinstance(body, dict) and body.get("__oversized__"):
            return 400, {"error": "request body too large"}
        if isinstance(body, dict) and body.get("__malformed__"):
            return 400, {"error": "request body is not valid JSON"}

        if method == "POST" and stripped == "/submit":
            return await self._submit(body)
        if method == "GET" and stripped.startswith("/status/"):
            return await self._relay_owned(
                stripped[len("/status/"):], "GET", path + (
                    f"?{_query}" if _query else ""
                )
            )
        if method == "GET" and stripped.startswith("/result/"):
            return await self._relay_owned(
                stripped[len("/result/"):], "GET", path
            )
        if method == "GET" and stripped == "/stats":
            return await self._stats()
        if method == "GET" and stripped == "/metrics":
            return 200, TextPayload(self.render_metrics())
        if method == "GET" and stripped.startswith("/trace/"):
            return await self._trace(stripped[len("/trace/"):])
        if method == "GET" and stripped == "/healthz":
            return self._healthz()
        if method == "GET" and stripped == "/fleet":
            return 200, self.describe()
        if method == "POST" and stripped == "/fleet/drain":
            return await self._drain_one(body)
        if method == "POST" and stripped == "/shutdown":
            asyncio.get_running_loop().call_soon(self.request_shutdown, 0)
            return 200, {"ok": True, "draining": True, "fleet": True}
        return 404, {"error": f"no route {method} {stripped}"}

    async def _relay(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: Any,
        timeout: float = 60.0,
    ) -> Tuple[int, Any]:
        """One HTTP exchange with a worker (close-delimited, JSON)."""
        async def exchange() -> Tuple[int, Any]:
            reader, writer = await asyncio.open_connection(
                handle.host, handle.port
            )
            try:
                payload = (
                    b"" if body is None else json.dumps(body).encode("utf-8")
                )
                head = (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {handle.host}:{handle.port}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                )
                writer.write(head.encode("latin-1") + payload)
                await writer.drain()
                status_line = await reader.readline()
                parts = status_line.decode("latin-1").split(" ", 2)
                if len(parts) < 2:
                    # EOF (b"") or a truncated line from a worker that died
                    # after accepting the connection.
                    raise ConnectionError(
                        f"truncated status line from worker: {status_line!r}"
                    )
                status = int(parts[1])
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value.strip() or 0)
                raw = await reader.readexactly(length) if length else b""
                data = json.loads(raw.decode("utf-8")) if raw else None
                return status, data
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, RuntimeError):
                    pass

        return await asyncio.wait_for(exchange(), timeout=timeout)

    # -- routing ------------------------------------------------------------

    def _remember_owner(self, request_id: str, worker: str) -> None:
        self._owners[request_id] = worker
        while len(self._owners) > self._max_tracked:
            self._owners.popitem(last=False)

    async def _submit(self, body: Any) -> Tuple[int, Any]:
        if not self._accepting:
            return 503, {"error": "fleet is shutting down"}
        loop = asyncio.get_running_loop()
        try:
            prepared = await loop.run_in_executor(
                self._prepare_pool, protocol.prepare_request, body
            )
        except protocol.RequestError as exc:
            return 400, {"error": str(exc)}

        route_span_id: Optional[str] = None
        route_started = time.time()
        route_t0 = time.perf_counter()
        if prepared.trace_id is not None:
            # Interpose a "route" span between the client's root and the
            # worker's request span: rewrite the forwarded trace ref so
            # worker-side spans parent under it.  The field rides outside
            # the cache key, so the rewrite cannot split coalescing.
            route_span_id = _trace.derive_span_id(
                prepared.trace_id,
                prepared.parent_span_id or "",
                "route",
                0,
            )
            body = {
                **body,
                _trace.TRACE_FIELD: _trace.format_trace_ref(
                    prepared.trace_id, route_span_id
                ),
            }

        primary: Optional[str] = None
        for name in self.ring.chain(prepared.key):
            if primary is None:
                primary = name
            handle = self.workers[name]
            if handle.state != LIVE:
                continue
            try:
                status, payload = await self._relay(
                    handle, "POST", "/submit", body, timeout=60
                )
            except _RELAY_ERRORS:
                if not handle.alive():
                    self._mark_dead(handle)
                else:
                    handle.consecutive_failures += 1
                    if handle.consecutive_failures >= _PROBE_FAILURES:
                        self._mark_dead(handle)
                continue
            if status == 503:
                # The worker began draining before the health loop noticed;
                # its keys spill to the ring successor until it returns.
                if handle.state == LIVE:
                    self._note_draining(handle)
                continue
            self.counters["routed"] += 1
            if name != primary:
                self.counters["rerouted"] += 1
            self.routed_by_worker[name] += 1
            if isinstance(payload, dict) and "id" in payload:
                self._remember_owner(payload["id"], name)
                payload.setdefault("worker", name)
            if route_span_id is not None:
                _trace.finish_span_record(
                    prepared.trace_id,
                    route_span_id,
                    prepared.parent_span_id,
                    "route",
                    route_started,
                    time.perf_counter() - route_t0,
                    worker=name,
                    rerouted=(name != primary),
                )
            return status, payload
        # Every candidate is starting, draining or dead: tell the client to
        # come back after the respawn instead of failing the request.
        self.counters["unrouted"] += 1
        return 503, {
            "error": "no live worker for this shard (fleet healing); retry",
            "retry_after": self._retry_hint(),
        }

    async def _relay_owned(
        self, request_id: str, method: str, path: str
    ) -> Tuple[int, Any]:
        owner = self._owners.get(request_id)
        if owner is None:
            return 404, {"error": f"unknown request {request_id!r}"}
        handle = self.workers[owner]
        if handle.alive() and handle.state in (LIVE, DRAINING, STARTING):
            try:
                status, payload = await self._relay(
                    handle, method, path, None, timeout=30
                )
            except _RELAY_ERRORS:
                if not handle.alive():
                    self._mark_dead(handle)
            else:
                if status != 404:
                    return status, payload
                # The worker restarted since issuing this id: its in-memory
                # record is gone even though the process answers.
        self.counters["lost"] += 1
        self._owners.pop(request_id, None)
        return 503, {
            "error": (
                f"worker {owner} lost request {request_id}; "
                "re-submit the request body (submits are idempotent)"
            ),
            "retry_after": self._retry_hint(),
            "lost": True,
        }

    # -- aggregation --------------------------------------------------------

    def _healthz(self) -> Tuple[int, Any]:
        states = {name: h.state for name, h in self.workers.items()}
        return 200, {
            "ok": all(state == LIVE for state in states.values()),
            "accepting": self._accepting,
            "fleet": True,
            "workers": states,
        }

    def describe(self) -> Dict[str, Any]:
        """The ``/fleet`` body: ring, per-worker detail, router counters."""
        return {
            "host": self.host,
            "port": self.port,
            "ring": self.ring.describe(),
            "workers": {
                name: handle.describe()
                for name, handle in self.workers.items()
            },
            "router": {
                **self.counters,
                "routed_by_worker": dict(self.routed_by_worker),
                "tracked_requests": len(self._owners),
            },
        }

    async def _stats(self) -> Tuple[int, Any]:
        """Fleet-wide ``/stats``: live worker stats plus summed counters."""
        async def probe(handle: WorkerHandle):
            if not handle.alive():
                return None
            try:
                status, payload = await self._relay(
                    handle, "GET", "/stats", None, timeout=5
                )
            except _RELAY_ERRORS:
                return None
            return payload if status == 200 else None

        names = list(self.workers)
        replies = await asyncio.gather(
            *(probe(self.workers[name]) for name in names)
        )
        requests: Dict[str, int] = {}
        depth = limit = l1_hits = l1_misses = 0
        hints: List[float] = []
        per_worker: Dict[str, Any] = {}
        for name, reply in zip(names, replies):
            handle = self.workers[name]
            per_worker[name] = {
                "state": handle.state,
                "score": handle.score,
                "stats": reply,
            }
            if not isinstance(reply, dict):
                continue
            # Aggregate over the canonical counter table, not whatever keys
            # the reply happens to carry: counters sum, gauges max-merge
            # (summing max_batch_lanes across workers would fabricate a
            # batch size no worker ever ran).
            worker_requests = reply.get("requests") or {}
            for key in REQUEST_COUNTERS:
                value = worker_requests.get(key)
                if isinstance(value, int):
                    requests[key] = requests.get(key, 0) + value
            for key in REQUEST_GAUGES:
                value = worker_requests.get(key)
                if isinstance(value, int):
                    requests[key] = max(requests.get(key, 0), value)
            queue = reply.get("queue") or {}
            depth += int(queue.get("depth") or 0)
            limit += int(queue.get("limit") or 0)
            hint = queue.get("retry_after_hint")
            if isinstance(hint, (int, float)):
                hints.append(float(hint))
            l1 = (reply.get("cache") or {}).get("l1") or {}
            l1_hits += int(l1.get("hits") or 0)
            l1_misses += int(l1.get("misses") or 0)
        return 200, {
            "fleet": True,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "accepting": self._accepting,
            "workers": len(self.workers),
            "requests": requests,
            "queue": {
                "depth": depth,
                "limit": limit,
                "retry_after_hint": max(hints) if hints else None,
            },
            "cache": {"l1": {"hits": l1_hits, "misses": l1_misses}},
            "router": {
                **self.counters,
                "routed_by_worker": dict(self.routed_by_worker),
            },
            "per_worker": per_worker,
        }

    def render_metrics(self) -> str:
        """Fleet-wide Prometheus text for ``GET /metrics``.

        Rendered from the health loop's cached per-worker ``/stats``
        snapshots (no extra worker round-trips on scrape) through the same
        canonical table the single-process server uses: each family appears
        as an unlabeled fleet sum plus one ``worker="..."``-labeled sample
        per live worker, so the sum is exactly the sum of the parts.
        """
        per_worker = {
            name: handle.stats
            for name, handle in self.workers.items()
            if handle.state == LIVE and isinstance(handle.stats, dict)
        }
        registry = fleet_registry(
            per_worker,
            self.counters,
            round(time.monotonic() - self._started, 3),
        )
        return render_metrics(registry, global_registry())

    async def _trace(self, trace_id: str) -> Tuple[int, Any]:
        """Fleet-wide ``GET /trace/<id>``: router spans + worker fan-out.

        With a shared store the router's sink read already covers every
        worker; the live fan-out additionally recovers ring-only spans of
        store-less fleets and spans not yet flushed.
        """
        status, merged = trace_endpoint(trace_id)
        if status != 200:
            return status, merged
        by_id = {
            record.get("span_id"): record for record in merged["spans"]
        }

        async def probe(handle: WorkerHandle):
            if handle.state != LIVE or not handle.alive():
                return None
            try:
                reply_status, payload = await self._relay(
                    handle, "GET", f"/trace/{trace_id}", None, timeout=5
                )
            except _RELAY_ERRORS:
                return None
            return payload if reply_status == 200 else None

        replies = await asyncio.gather(
            *(probe(handle) for handle in self.workers.values())
        )
        for payload in replies:
            if not isinstance(payload, dict):
                continue
            for record in payload.get("spans") or []:
                if isinstance(record, dict) and record.get("span_id"):
                    by_id.setdefault(record["span_id"], record)
        spans = sorted(
            by_id.values(),
            key=lambda r: (r.get("started_unix") or 0.0, r.get("span_id") or ""),
        )
        return 200, {"trace_id": trace_id, "spans": spans}

    # -- draining -----------------------------------------------------------

    async def _drain_one(self, body: Any) -> Tuple[int, Any]:
        name = (body or {}).get("worker") if isinstance(body, dict) else None
        handle = self.workers.get(name or "")
        if handle is None:
            return 404, {"error": f"unknown worker {name!r}"}
        if handle.state in (DRAINING, DEAD):
            return 200, {"ok": True, "worker": name, "state": handle.state}
        self._note_draining(handle)
        self.counters["drains"] += 1
        # Ask the worker to drain and exit; the health loop restarts it
        # (planned, so outside the respawn budget) once the process is gone.
        try:
            await self._relay(handle, "POST", "/shutdown", {}, timeout=10)
        except _RELAY_ERRORS:
            pass
        return 200, {"ok": True, "worker": name, "state": DRAINING}


async def _serve_fleet_async(router: FleetRouter) -> int:
    loop = asyncio.get_running_loop()
    # Bind the router socket before spawning anything: a router that cannot
    # start (port already bound, say) must not orphan N worker processes.
    try:
        await router.start()
        router.supervisor.spawn_all()
    except BaseException:
        await router.stop(drain=False)
        raise
    router.install_signal_handlers(loop)
    try:
        return await router.serve_until_shutdown()
    except asyncio.CancelledError:
        await router.stop(drain=False)
        return 1


def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 8642,
    store: Optional[str] = None,
    workers: int = 2,
    shards: int = 1,
    queue_limit: int = 32,
    quiet: bool = False,
    metrics_digest: bool = False,
) -> int:
    """Run a router + N-worker fleet until shutdown; returns the exit code.

    ``python -m repro serve --workers N`` lands here for N >= 2 (N = 1 runs
    the unchanged single-process :func:`repro.service.server.serve`).
    """
    supervisor = FleetSupervisor(
        workers=workers, host=host, store=store, shards=shards,
        queue_limit=queue_limit, quiet=quiet,
    )
    router = FleetRouter(
        supervisor, host=host, port=port, quiet=quiet,
        metrics_digest=metrics_digest,
    )
    try:
        return asyncio.run(_serve_fleet_async(router))
    except KeyboardInterrupt:
        return 1


class FleetThread:
    """A fleet running on a daemon thread (tests, benchmarks, notebooks).

    Usage::

        with FleetThread(workers=4, store=path) as fleet:
            client = ServiceClient(port=fleet.port)
            ...
    """

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("port", 0)
        kwargs.setdefault("quiet", True)
        kwargs.setdefault("health_interval", 0.25)
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.router: Optional[FleetRouter] = None
        self.supervisor: Optional[FleetSupervisor] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None

    def start(self) -> "FleetThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("fleet thread did not become ready")
        if self.error is not None:
            raise RuntimeError(f"fleet failed to start: {self.error!r}")
        return self

    def wait_live(self, timeout: float = 60.0) -> "FleetThread":
        """Block until every worker has been promoted to LIVE."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.router is not None and all(
                handle.state == LIVE
                for handle in self.router.workers.values()
            ):
                return self
            time.sleep(0.05)
        states = (
            {}
            if self.router is None
            else {n: h.state for n, h in self.router.workers.items()}
        )
        raise RuntimeError(f"fleet workers not live after {timeout}s: {states}")

    def _run(self) -> None:
        kwargs = dict(self._kwargs)
        port = kwargs.pop("port")
        health_interval = kwargs.pop("health_interval")
        quiet = kwargs.pop("quiet")
        host = kwargs.pop("host", "127.0.0.1")

        async def main() -> None:
            supervisor: Optional[FleetSupervisor] = None
            router: Optional[FleetRouter] = None
            try:
                supervisor = FleetSupervisor(host=host, quiet=quiet, **kwargs)
                router = FleetRouter(
                    supervisor, host=host, port=port, quiet=quiet,
                    health_interval=health_interval,
                )
                # Same ordering as _serve_fleet_async: bind the router
                # before spawning workers, so a failed start leaks nothing.
                await router.start()
                supervisor.spawn_all()
            except BaseException as exc:  # noqa: BLE001 — surface to starter
                if router is not None:
                    try:
                        await router.stop(drain=False)
                    except Exception:
                        pass
                elif supervisor is not None:
                    supervisor.stop()
                self.error = exc
                self._ready.set()
                return
            self.router = router
            self.supervisor = supervisor
            self.port = router.port
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await router.serve_until_shutdown()
        asyncio.run(main())

    def stop(self) -> None:
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.router.request_shutdown, 0
                )
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=90)
            self._thread = None
        if self.supervisor is not None:
            # Belt and braces: no worker process may outlive the thread.
            self.supervisor.stop()

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
