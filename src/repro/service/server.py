"""The asyncio JSON-over-HTTP front of the optimization service.

Stdlib only: a tiny HTTP/1.1 implementation over ``asyncio.start_server``
(the request bodies and responses are small JSON documents; no keep-alive,
no chunking).  Endpoints:

========================  ====================================================
``POST /submit``          Admit a request; 200 with the record (may already
                          be ``done`` on a cache hit), 400 malformed,
                          429 queue full, 503 draining.
``GET /status/<id>``      Record status + progress events.  ``?events_from=N``
                          returns only events N onwards (incremental
                          streaming for polling clients).
``GET /result/<id>``      The result document (200), 202 while pending,
                          404 unknown, 500 failed.
``GET /stats``            Broker/cache/queue counters.
``GET /metrics``          Prometheus text exposition of the same counters
                          (plus latency histograms and process-global
                          tallies) via :mod:`repro.obs.names`.
``GET /trace/<id>``       Recorded spans of one trace id (from the bounded
                          in-memory ring and the JSONL sink, if any).
``GET /healthz``          Liveness probe.
``POST /shutdown``        Graceful drain + exit (what SIGTERM does).
========================  ====================================================

Shutdown: the first SIGINT/SIGTERM stops admission (new submits get 503),
drains queued and in-flight work — publishing artifacts as jobs finish —
then exits 0.  A second signal aborts hard and the process exits nonzero.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from typing import Any, Dict, Optional, Tuple

from repro.obs import trace as _trace
from repro.service.broker import Broker
from repro.service.protocol import (
    QueueFullError,
    RequestError,
    ShuttingDownError,
)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Refuse to buffer absurd request bodies (admission control for bytes).
MAX_BODY_BYTES = 1 << 20


class TextPayload(str):
    """Marker: a pre-rendered plain-text response body (``/metrics``)."""


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Any]]:
    """Read one HTTP/1.1 request; returns (method, path, parsed JSON body).

    Shared by the single-process server and the fleet router (both speak
    the same tiny close-delimited JSON dialect).  Oversized or malformed
    bodies come back as ``{"__oversized__"|"__malformed__": True}`` markers
    so the caller can answer 400 instead of resetting the connection.
    """
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    try:
        method, path, _ = request_line.decode("latin-1").split(" ", 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    if length > MAX_BODY_BYTES:
        # Drain (and discard) the body so the 400 reaches the client
        # instead of a connection reset from closing with bytes unread.
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        return method.upper(), path, {"__oversized__": True}
    raw = await reader.readexactly(length) if length else b""
    body: Any = None
    if raw:
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            body = {"__malformed__": True}
    return method.upper(), path, body


async def write_response(
    writer: asyncio.StreamWriter, status: int, payload: Any
) -> None:
    """Write one response and flush (connection-close framing).

    JSON by default; a :class:`TextPayload` body goes out verbatim as
    ``text/plain`` (the Prometheus exposition content type).
    """
    if isinstance(payload, TextPayload):
        body = str(payload).encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


def trace_endpoint(trace_id: str) -> Tuple[int, Any]:
    """The ``GET /trace/<id>`` body: every known span of one trace.

    Merges the process-local ring with the JSONL sink (ring entries win on
    id collisions — they are the freshest copy), so a span survives either
    ring eviction or a missing sink.  Shared by server and fleet router.
    """
    if not _trace.valid_trace_ref(trace_id) or "/" in trace_id:
        return 400, {"error": f"invalid trace id {trace_id!r}"}
    spans = {
        record["span_id"]: record
        for record in _trace.ring_spans(trace_id)
    }
    sink = _trace.trace_sink_path()
    if sink is not None:
        for record in _trace.read_sink(sink, trace_id):
            spans.setdefault(record.get("span_id", ""), record)
    ordered = sorted(
        spans.values(),
        key=lambda record: (
            record.get("started_unix", 0.0), str(record.get("span_id"))
        ),
    )
    return 200, {"trace_id": trace_id, "spans": ordered}


class ServiceServer:
    """One service instance: a broker behind an HTTP listener."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        store: Optional[str] = None,
        shards: int = 1,
        queue_limit: int = 32,
        l1_size: int = 256,
        quiet: bool = True,
        metrics_digest: bool = False,
        digest_interval: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.quiet = quiet
        self.metrics_digest = metrics_digest
        self.digest_interval = max(0.5, float(digest_interval))
        self.broker = Broker(
            store=store, shards=shards, queue_limit=queue_limit, l1_size=l1_size
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._exit_code = 0
        self._digest_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self.broker.store is not None:
            # Traced spans persist next to the artifact store, where fleet
            # workers sharing the store directory append to the same file
            # and `repro trace show --store` can read them later.
            _trace.set_trace_sink(
                _trace.store_sink_path(self.broker.store.root)
            )
        await self.broker.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.metrics_digest:
            self._digest_task = asyncio.get_running_loop().create_task(
                self._digest_loop()
            )
        self._log(f"service: listening on http://{self.host}:{self.port}")

    async def _digest_loop(self) -> None:
        """Periodic one-line metrics digest (``serve --metrics``)."""
        while True:
            await asyncio.sleep(self.digest_interval)
            stats = self.broker.stats()
            requests = stats.get("requests", {})
            queue = stats.get("queue", {})
            l1 = (stats.get("cache") or {}).get("l1") or {}
            print(
                "metrics: uptime={:.0f}s submitted={} completed={} failed={} "
                "queue={}/{} drain_rps={} l1_hit_ratio={}".format(
                    stats.get("uptime_seconds", 0.0),
                    requests.get("submitted", 0),
                    requests.get("completed", 0),
                    requests.get("failed", 0),
                    queue.get("depth", 0),
                    queue.get("limit", 0),
                    queue.get("drain_rate_rps", 0.0),
                    l1.get("hit_ratio", 0.0),
                ),
                flush=True,
            )

    async def serve_until_shutdown(self) -> int:
        """Block until a shutdown is requested; returns the exit code."""
        await self._shutdown.wait()
        await self.stop(drain=self._exit_code == 0)
        return self._exit_code

    async def stop(self, drain: bool = True) -> None:
        if self._digest_task is not None:
            self._digest_task.cancel()
            self._digest_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            self._log("service: draining in-flight work")
        await self.broker.close(drain=drain)
        self._log("service: stopped")

    def request_shutdown(self, exit_code: int = 0) -> None:
        """Ask the serve loop to stop (idempotent, loop-thread only)."""
        self._exit_code = exit_code or self._exit_code
        self._shutdown.set()

    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        """First SIGINT/SIGTERM drains gracefully; the second aborts (exit 1)."""
        def _signal() -> None:
            if not self._shutdown.is_set():
                self._log(
                    "service: shutdown requested — draining "
                    "(signal again to abort)"
                )
                self.request_shutdown(0)
            else:
                self._log("service: hard abort")
                # The compute executor's threads are non-daemon and joined
                # by the interpreter's atexit hook, so any graceful exit
                # would still block behind an in-flight MILP sweep.  A hard
                # abort means now.
                os._exit(1)
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _signal)
            except (NotImplementedError, RuntimeError):
                pass

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(message, flush=True)

    # -- HTTP ---------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # Bound the read: a client that connects and stalls must not pin
            # a handler task and its socket forever.
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=30
            )
            if request is None:
                return
            method, path, body = request
            status, payload = await self._route(method, path, body)
            await self._respond(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            try:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Any]]:
        return await read_request(reader)

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        await write_response(writer, status, payload)

    async def _route(
        self, method: str, path: str, body: Any
    ) -> Tuple[int, Any]:
        path, _, query = path.partition("?")
        path = path.rstrip("/") or "/"
        if isinstance(body, dict) and body.get("__oversized__"):
            return 400, {"error": "request body too large"}
        if isinstance(body, dict) and body.get("__malformed__"):
            return 400, {"error": "request body is not valid JSON"}

        if method == "POST" and path == "/submit":
            return await self._submit(body)
        if method == "GET" and path.startswith("/status/"):
            return self._status(path[len("/status/"):], query)
        if method == "GET" and path.startswith("/result/"):
            return self._result(path[len("/result/"):])
        if method == "GET" and path == "/stats":
            return 200, self.broker.stats()
        if method == "GET" and path == "/metrics":
            return 200, TextPayload(self.broker.render_metrics())
        if method == "GET" and path.startswith("/trace/"):
            return trace_endpoint(path[len("/trace/"):])
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "accepting": self.broker.accepting}
        if method == "POST" and path == "/shutdown":
            # Answer first, then stop: request_shutdown only sets an event.
            asyncio.get_running_loop().call_soon(self.request_shutdown, 0)
            return 200, {"ok": True, "draining": True}
        return 404, {"error": f"no route {method} {path}"}

    async def _submit(self, body: Any) -> Tuple[int, Any]:
        try:
            record = await self.broker.submit(body)
        except RequestError as exc:
            return 400, {"error": str(exc)}
        except QueueFullError as exc:
            # Derived from queue depth x measured drain rate, not hardcoded:
            # clients back off proportionally to the actual backlog.
            return 429, {
                "error": str(exc),
                "retry_after": self.broker.retry_after_hint(),
            }
        except ShuttingDownError as exc:
            return 503, {"error": str(exc)}
        return 200, record.describe()

    def _status(self, request_id: str, query: str) -> Tuple[int, Any]:
        record = self.broker.get(request_id)
        if record is None:
            return 404, {"error": f"unknown request {request_id!r}"}
        events_from = 0
        if query.startswith("events_from="):
            try:
                events_from = max(0, int(query.split("=", 1)[1]))
            except ValueError:
                events_from = 0
        return 200, record.describe(events_from=events_from)

    def _result(self, request_id: str) -> Tuple[int, Any]:
        record = self.broker.get(request_id)
        if record is None:
            return 404, {"error": f"unknown request {request_id!r}"}
        status = record.status
        if status == "failed":
            return 500, {"id": record.id, "status": status, "error": record.error}
        if status != "done":
            return 202, {"id": record.id, "status": status}
        return 200, {
            "id": record.id,
            "status": status,
            "cached": record.cached,
            "result": record.result,
        }


async def _serve_async(server: ServiceServer) -> int:
    loop = asyncio.get_running_loop()
    await server.start()
    server.install_signal_handlers(loop)
    try:
        return await server.serve_until_shutdown()
    except asyncio.CancelledError:
        # Hard abort path: tasks were cancelled by the second signal.
        await server.stop(drain=False)
        return 1


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    store: Optional[str] = None,
    shards: int = 1,
    queue_limit: int = 32,
    quiet: bool = False,
    metrics_digest: bool = False,
) -> int:
    """Run the service until shutdown; returns the process exit code."""
    server = ServiceServer(
        host=host, port=port, store=store, shards=shards,
        queue_limit=queue_limit, quiet=quiet, metrics_digest=metrics_digest,
    )
    try:
        return asyncio.run(_serve_async(server))
    except KeyboardInterrupt:
        return 1


class ServerThread:
    """A service running on a daemon thread (tests, benchmarks, notebooks).

    Usage::

        with ServerThread(store=path) as server:
            client = ServiceClient(port=server.port)
            ...
    """

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("port", 0)
        kwargs.setdefault("quiet", True)
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[ServiceServer] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread did not become ready")
        if self.error is not None:
            raise RuntimeError(f"service failed to start: {self.error!r}")
        return self

    def _run(self) -> None:
        async def main() -> None:
            server = ServiceServer(**self._kwargs)
            try:
                await server.start()
            except BaseException as exc:  # noqa: BLE001 — surface to starter
                self.error = exc
                self._ready.set()
                return
            self.server = server
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await server.serve_until_shutdown()
        asyncio.run(main())

    def stop(self) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown, 0)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
