"""Optimization-as-a-service: the async serving layer over the pipeline.

PRs 1–3 made single invocations fast (warm-started simplex, the compiled
batch simulation engine, the sharded pipeline with its content-addressed
artifact store); this package turns those invocations into a long-lived
service:

* :mod:`repro.service.protocol` — request validation and the cache/batch
  keys (the same RRG-fingerprint + stage-parameter identities the artifact
  store uses);
* :mod:`repro.service.broker` — admission control (bounded queue, 429
  backpressure), coalescing of identical in-flight requests, batching of
  compatible simulation requests, and the tiered result cache (in-process
  LRU → persistent store);
* :mod:`repro.service.worker` — the bridge driving
  :func:`repro.experiments.presets.run_preset` / the batched simulation
  engine on a background executor, streaming pipeline events back;
* :mod:`repro.service.server` — the stdlib asyncio JSON-over-HTTP front
  (``submit`` / ``status`` / ``result`` / ``stats``) with graceful
  SIGINT/SIGTERM draining;
* :mod:`repro.service.client` — sync and async clients (used by
  ``python -m repro submit``);
* :mod:`repro.service.fleet` — multi-process scale-out: a router that
  shards requests across N worker processes by result fingerprint over a
  consistent-hash ring (:mod:`repro.service.ring`), with worker health
  scoring, draining and bounded respawn (``python -m repro serve
  --workers N``).

Quickstart::

    $ python -m repro serve --store .repro-store &
    $ python -m repro submit table2-small --names s27

or programmatically::

    from repro.service import ServerThread, ServiceClient

    with ServerThread(store=".repro-store") as server:
        client = ServiceClient(port=server.port)
        result = client.submit_and_wait(
            {"kind": "run", "target": "figure1a",
             "options": {"cycles": 800, "epsilon": 0.2}}
        )
"""

from repro.service.broker import Broker, RequestRecord
from repro.service.client import (
    AsyncServiceClient,
    RequestFailed,
    ServiceBusy,
    ServiceClient,
    ServiceError,
    WorkerLost,
)
from repro.service.fleet import (
    FleetRouter,
    FleetSupervisor,
    FleetThread,
    serve_fleet,
)
from repro.service.protocol import (
    PreparedRequest,
    QueueFullError,
    RequestError,
    ShuttingDownError,
    prepare_request,
)
from repro.service.ring import HashRing
from repro.service.server import ServerThread, ServiceServer, serve

__all__ = [
    "AsyncServiceClient",
    "Broker",
    "FleetRouter",
    "FleetSupervisor",
    "FleetThread",
    "HashRing",
    "PreparedRequest",
    "QueueFullError",
    "RequestError",
    "RequestFailed",
    "RequestRecord",
    "ServerThread",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShuttingDownError",
    "WorkerLost",
    "prepare_request",
    "serve",
    "serve_fleet",
]
