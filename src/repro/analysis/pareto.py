"""Dominance and Pareto fronts over (cycle time, throughput) points.

Definition 4.1 of the paper: configuration RC1 *dominates* RC2 when its
throughput is strictly larger and its cycle time is not larger.  A
configuration is non-dominated when no other configuration dominates it; the
configuration of minimum effective cycle time is always non-dominated.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, TypeVar

PointLike = Tuple[float, float]
T = TypeVar("T")


def dominates(
    cycle_time_a: float,
    throughput_a: float,
    cycle_time_b: float,
    throughput_b: float,
    tolerance: float = 1e-9,
) -> bool:
    """True when point A dominates point B (Definition 4.1).

    A dominates B iff ``throughput(A) > throughput(B)`` and
    ``cycle_time(A) <= cycle_time(B)``.
    """
    return (
        throughput_a > throughput_b + tolerance
        and cycle_time_a <= cycle_time_b + tolerance
    )


def pareto_front(
    points: Sequence[PointLike], tolerance: float = 1e-9
) -> List[int]:
    """Indices of non-dominated (cycle_time, throughput) points.

    Args:
        points: Sequence of ``(cycle_time, throughput)`` pairs.
        tolerance: Numerical slack used in the dominance comparisons.

    Returns:
        Indices into ``points`` of the non-dominated entries, sorted by
        increasing cycle time.
    """
    indices: List[int] = []
    for i, (tau_i, theta_i) in enumerate(points):
        dominated = False
        for j, (tau_j, theta_j) in enumerate(points):
            if i == j:
                continue
            if dominates(tau_j, theta_j, tau_i, theta_i, tolerance):
                dominated = True
                break
        if not dominated:
            indices.append(i)
    indices.sort(key=lambda i: (points[i][0], -points[i][1]))
    return indices


def pareto_filter(
    items: Sequence[T],
    points: Sequence[PointLike],
    tolerance: float = 1e-9,
) -> List[T]:
    """Return the items whose associated points are non-dominated."""
    if len(items) != len(points):
        raise ValueError("items and points must have equal length")
    return [items[i] for i in pareto_front(points, tolerance)]
