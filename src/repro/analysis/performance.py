"""Effective cycle time and configuration performance summaries.

The effective cycle time (Definition 2.5) is the ratio of the cycle time to
the throughput: it measures the average time per unit of useful work and is
the quantity the paper minimises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.core.configuration import RRConfiguration


def effective_cycle_time(cycle_time: float, throughput: float) -> float:
    """xi = tau / Theta; infinite when the throughput is zero."""
    if throughput <= 0.0:
        return math.inf
    return cycle_time / throughput


@dataclass
class PerformancePoint:
    """Performance summary of one configuration.

    Attributes:
        label: Free-form identifier of the configuration.
        cycle_time: tau(RC).
        throughput_bound: LP upper bound Theta_lp(RC), when computed.
        throughput: Estimated actual throughput Theta(RC) (simulation or
            Markov chain), when computed.
        total_buffers: Number of elastic buffers in the configuration.
        total_bubbles: Number of inserted bubbles.
    """

    label: str
    cycle_time: float
    throughput_bound: Optional[float] = None
    throughput: Optional[float] = None
    total_buffers: int = 0
    total_bubbles: int = 0

    @property
    def effective_cycle_time_bound(self) -> float:
        """xi_lp = tau / Theta_lp (optimistic, because Theta_lp >= Theta)."""
        if self.throughput_bound is None:
            return math.inf
        return effective_cycle_time(self.cycle_time, self.throughput_bound)

    @property
    def effective_cycle_time(self) -> float:
        """xi = tau / Theta using the measured throughput."""
        if self.throughput is None:
            return math.inf
        return effective_cycle_time(self.cycle_time, self.throughput)

    @property
    def bound_error_percent(self) -> float:
        """Relative gap between the LP bound and the measured throughput, in %."""
        if not self.throughput or self.throughput_bound is None:
            return math.nan
        return abs(self.throughput_bound - self.throughput) / self.throughput * 100.0

    def __repr__(self) -> str:
        parts = [f"tau={self.cycle_time:.4g}"]
        if self.throughput_bound is not None:
            parts.append(f"theta_lp={self.throughput_bound:.4g}")
        if self.throughput is not None:
            parts.append(f"theta={self.throughput:.4g}")
        return f"PerformancePoint({self.label!r}, {', '.join(parts)})"


ThroughputEstimator = Callable[["RRConfiguration"], float]


def evaluate_configuration(
    configuration: "RRConfiguration",
    throughput_bound: Optional[ThroughputEstimator] = None,
    throughput: Optional[ThroughputEstimator] = None,
    label: Optional[str] = None,
) -> PerformancePoint:
    """Build a :class:`PerformancePoint` for a configuration.

    Args:
        configuration: The configuration to evaluate.
        throughput_bound: Callable returning the LP throughput upper bound;
            skipped when ``None``.
        throughput: Callable returning the measured throughput (simulation or
            exact Markov analysis); skipped when ``None``.
        label: Overrides the configuration label in the result.
    """
    return PerformancePoint(
        label=label or configuration.label or configuration.rrg.name,
        cycle_time=configuration.cycle_time(),
        throughput_bound=(
            throughput_bound(configuration) if throughput_bound is not None else None
        ),
        throughput=throughput(configuration) if throughput is not None else None,
        total_buffers=configuration.total_buffers,
        total_bubbles=configuration.total_bubbles,
    )
