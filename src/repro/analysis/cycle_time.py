"""Cycle-time (maximum combinational path delay) analysis.

A combinational path (Definition 2.2) is a path whose edges all carry zero
elastic buffers; its delay is the sum of the delays of *all* nodes on the
path, endpoints included.  The cycle time of an RRG (Definition 2.3) is the
maximum delay over all combinational paths.

Because liveness forces at least one buffered edge on every directed cycle,
the zero-buffer subgraph of a valid RRG is acyclic and the cycle time is a
longest-path computation in a DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.rrg import RRG


class CombinationalCycleError(Exception):
    """Raised when the zero-buffer subgraph contains a directed cycle.

    Such an RRG has an unbroken combinational loop, i.e. an infinite cycle
    time; it violates the liveness requirement of Definition 2.1.
    """


@dataclass
class CriticalPath:
    """A maximum-delay combinational path.

    Attributes:
        nodes: Node names along the path, in order.
        delay: Total combinational delay of the path.
    """

    nodes: List[str]
    delay: float


def zero_buffer_subgraph(rrg: RRG, buffers: Optional[Dict[int, int]] = None) -> nx.DiGraph:
    """Return the subgraph of edges with zero buffers as a networkx DiGraph.

    Args:
        rrg: The graph under analysis.
        buffers: Optional override of the buffer count per edge index; defaults
            to the RRG's own buffer assignment.  This lets callers evaluate
            candidate configurations without copying the RRG.
    """
    graph = nx.DiGraph()
    for node in rrg.nodes:
        graph.add_node(node.name, delay=node.delay)
    for edge in rrg.edges:
        count = edge.buffers if buffers is None else buffers.get(edge.index, edge.buffers)
        if count == 0:
            graph.add_edge(edge.src, edge.dst)
    return graph


def node_arrival_times(
    rrg: RRG, buffers: Optional[Dict[int, int]] = None
) -> Dict[str, float]:
    """Latest combinational arrival time at the output of every node.

    The arrival time of a node is the maximum, over combinational paths ending
    at the node, of the path delay.  The cycle time is the maximum arrival
    time over all nodes.

    Raises:
        CombinationalCycleError: when a zero-buffer cycle exists.
    """
    graph = zero_buffer_subgraph(rrg, buffers)
    try:
        order = list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible as exc:
        raise CombinationalCycleError(
            f"RRG {rrg.name!r} contains a combinational cycle"
        ) from exc
    arrival: Dict[str, float] = {}
    for name in order:
        incoming = [arrival[pred] for pred in graph.predecessors(name)]
        arrival[name] = rrg.delay(name) + (max(incoming) if incoming else 0.0)
    return arrival


def cycle_time(rrg: RRG, buffers: Optional[Dict[int, int]] = None) -> float:
    """Cycle time tau(RRG): the maximum combinational path delay.

    Args:
        rrg: The graph under analysis.
        buffers: Optional buffer-count override per edge index.
    """
    if rrg.num_nodes == 0:
        return 0.0
    arrival = node_arrival_times(rrg, buffers)
    return max(arrival.values())


def critical_path(
    rrg: RRG, buffers: Optional[Dict[int, int]] = None
) -> CriticalPath:
    """Extract one maximum-delay combinational path.

    Returns:
        A :class:`CriticalPath` with the node sequence and its delay.  For an
        empty RRG the path is empty with zero delay.
    """
    if rrg.num_nodes == 0:
        return CriticalPath(nodes=[], delay=0.0)
    graph = zero_buffer_subgraph(rrg, buffers)
    arrival = node_arrival_times(rrg, buffers)
    end = max(arrival, key=arrival.get)
    path = [end]
    current = end
    while True:
        target = arrival[current] - rrg.delay(current)
        predecessor = None
        for pred in graph.predecessors(current):
            if abs(arrival[pred] - target) <= 1e-9:
                predecessor = pred
                break
        if predecessor is None:
            break
        path.append(predecessor)
        current = predecessor
    path.reverse()
    return CriticalPath(nodes=path, delay=arrival[end])


def path_delay(rrg: RRG, nodes: List[str]) -> float:
    """Delay of an explicit node path (sum of node delays)."""
    return sum(rrg.delay(name) for name in nodes)


def is_combinational_path(
    rrg: RRG, nodes: List[str], buffers: Optional[Dict[int, int]] = None
) -> bool:
    """Check that consecutive nodes are linked by at least one zero-buffer edge."""
    if len(nodes) < 2:
        return True
    for src, dst in zip(nodes, nodes[1:]):
        candidates = rrg.edges_between(src, dst)
        if not candidates:
            return False
        found = False
        for edge in candidates:
            count = (
                edge.buffers if buffers is None else buffers.get(edge.index, edge.buffers)
            )
            if count == 0:
                found = True
                break
        if not found:
            return False
    return True
