"""Static performance analysis of retiming-and-recycling graphs.

* :mod:`repro.analysis.cycle_time` — combinational-path / cycle-time analysis
  (Definitions 2.2 and 2.3 of the paper).
* :mod:`repro.analysis.performance` — effective cycle time and the bundle of
  metrics reported in the experiments.
* :mod:`repro.analysis.pareto` — dominance between configurations and Pareto
  fronts (Definition 4.1).
"""

from repro.analysis.cycle_time import (
    CombinationalCycleError,
    CriticalPath,
    cycle_time,
    critical_path,
    node_arrival_times,
    zero_buffer_subgraph,
)
from repro.analysis.performance import (
    PerformancePoint,
    effective_cycle_time,
    evaluate_configuration,
)
from repro.analysis.pareto import dominates, pareto_front

__all__ = [
    "CombinationalCycleError",
    "CriticalPath",
    "cycle_time",
    "critical_path",
    "node_arrival_times",
    "zero_buffer_subgraph",
    "PerformancePoint",
    "effective_cycle_time",
    "evaluate_configuration",
    "dominates",
    "pareto_front",
]
