"""The MIN_EFF_CYC heuristic (Section 4 of the paper).

The heuristic walks the Pareto frontier of (cycle time, LP throughput bound)
points by alternating the two MILPs:

1. start from ``tau = beta_max`` (the smallest conceivable cycle time) and
   compute ``MAX_THR(tau)``;
2. while the throughput bound is below 1, require slightly more throughput
   (``Theta + epsilon``), find the minimum cycle time that achieves it with
   ``MIN_CYC(1 / Theta)``, and re-maximise the throughput at that cycle time
   with ``MAX_THR(tau)``;
3. keep every configuration produced (they are non-dominated with respect to
   the LP bound) and return the one of minimum effective cycle time, plus the
   ``k`` next best.

The paper uses ``epsilon = 0.01``.  The loop performs at most ``1/epsilon``
iterations because the required throughput increases by at least ``epsilon``
every time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.pareto import pareto_front
from repro.core.configuration import RRConfiguration
from repro.core.milp import MilpOutcome, MilpSettings, MilpWorkspace
from repro.core.rrg import RRG
from repro.core.throughput import configuration_throughput_bound
from repro.gmg.build import TGMGTemplate, build_template
from repro.lp.errors import InfeasibleError


@dataclass
class ParetoPoint:
    """One non-dominated configuration found by the heuristic.

    Attributes:
        configuration: The retiming-and-recycling configuration.
        cycle_time: tau(RC), recomputed exactly.
        throughput_bound: Theta_lp(RC) from the LP (11).
        throughput: Optional measured throughput filled in by callers that
            simulate the configuration (e.g. the Table 1 experiment).
    """

    configuration: RRConfiguration
    cycle_time: float
    throughput_bound: float
    throughput: Optional[float] = None

    @property
    def effective_cycle_time_bound(self) -> float:
        """xi_lp = tau / Theta_lp."""
        if self.throughput_bound <= 0:
            return math.inf
        return self.cycle_time / self.throughput_bound

    @property
    def effective_cycle_time(self) -> float:
        """xi = tau / Theta (infinite when no measured throughput is known)."""
        if not self.throughput:
            return math.inf
        return self.cycle_time / self.throughput


@dataclass
class OptimizationResult:
    """Output of :func:`min_effective_cycle_time`.

    Attributes:
        best: The configuration with the smallest effective-cycle-time bound
            (RC_lp_min in the paper).
        points: Every stored non-dominated configuration, ordered by
            increasing cycle time.
        k_best: The ``k`` best configurations by effective-cycle-time bound
            (including ``best``), so callers can re-rank them by simulation.
        best_simulated: The stored configuration of smallest *measured*
            effective cycle time (RC_min in the paper); only set when the
            optimiser ran its simulation phase (``simulate_cycles``).
        iterations: Number of MILP pairs solved by the loop.
        milp_solves: Total MILP solves (MAX_THR + MIN_CYC calls).
        total_lp_iterations: Simplex iterations summed over every
            branch-and-bound node of every MILP (0 when the backend does not
            report iteration counts) — the number that warm starts shrink.
        total_nodes: Branch-and-bound nodes summed over every MILP.
    """

    best: ParetoPoint
    points: List[ParetoPoint] = field(default_factory=list)
    k_best: List[ParetoPoint] = field(default_factory=list)
    best_simulated: Optional[ParetoPoint] = None
    iterations: int = 0
    milp_solves: int = 0
    total_lp_iterations: int = 0
    total_nodes: int = 0

    @property
    def best_effective_cycle_time_bound(self) -> float:
        return self.best.effective_cycle_time_bound


ProgressCallback = Callable[[int, ParetoPoint], None]


def min_effective_cycle_time(
    rrg: RRG,
    k: int = 3,
    epsilon: float = 0.01,
    settings: Optional[MilpSettings] = None,
    progress: Optional[ProgressCallback] = None,
    simulate_cycles: Optional[int] = None,
    simulate_seed: int = 0,
    simulate_warmup: Optional[int] = None,
) -> OptimizationResult:
    """Run MIN_EFF_CYC on an RRG.

    Args:
        rrg: The base graph to optimise.
        k: Number of best configurations to report (the paper's ``k``).
        epsilon: Throughput increment per iteration (0.01 in the paper).
        settings: MILP solver settings shared by all solves.
        progress: Optional callback invoked after each stored configuration.
        simulate_cycles: When set, run the simulation phase: every stored
            configuration is evaluated in one batched run of the vectorized
            engine (``repro.sim``), ``point.throughput`` is filled in and
            ``result.best_simulated`` identifies RC_min.
        simulate_seed: Seed shared by all simulation lanes.
        simulate_warmup: Warm-up cycles for the simulation phase (defaults to
            the simulators' ``max(200, cycles // 10)``).

    Returns:
        An :class:`OptimizationResult`; ``result.best`` is RC_lp_min.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rrg.validate()
    settings = settings or MilpSettings()
    template = build_template(rrg, refine=True)
    # One workspace for the whole walk: the MIN_CYC / MAX_THR models are
    # built once, later solves only mutate the tau / x bounds and reuse the
    # previous basis as a warm start.
    workspace = MilpWorkspace(rrg, settings=settings, template=template)

    points: List[ParetoPoint] = []
    iterations = 0
    milp_solves = 0
    total_lp_iterations = 0
    total_nodes = 0

    def track(outcome: MilpOutcome) -> MilpOutcome:
        nonlocal milp_solves, total_lp_iterations, total_nodes
        milp_solves += 1
        total_lp_iterations += outcome.lp_iterations
        total_nodes += outcome.nodes
        return outcome

    def store(outcome: MilpOutcome) -> ParetoPoint:
        bound = configuration_throughput_bound(
            outcome.configuration, backend=settings.backend, template=template
        )
        point = ParetoPoint(
            configuration=outcome.configuration,
            cycle_time=outcome.cycle_time,
            throughput_bound=bound,
        )
        points.append(point)
        if progress is not None:
            progress(len(points), point)
        return point

    tau = rrg.max_delay
    current = store(track(workspace.max_throughput(tau)))
    best = current

    while current.throughput_bound < 1.0 - 1e-9:
        iterations += 1
        target = min(current.throughput_bound + epsilon, 1.0)
        outcome = track(workspace.min_cycle_time(x=1.0 / target))
        tau = outcome.cycle_time
        try:
            current = store(track(workspace.max_throughput(tau)))
        except InfeasibleError:
            # Cannot happen for a valid tau (the MIN_CYC solution itself meets
            # it), but guard against numerical corner cases.
            current = store(outcome)
        if current.effective_cycle_time_bound < best.effective_cycle_time_bound:
            best = current
        if iterations > math.ceil(1.0 / epsilon) + 2:
            break

    ordered = sorted(points, key=lambda p: (p.cycle_time, -p.throughput_bound))
    non_dominated = _drop_dominated(ordered)
    k_best = sorted(non_dominated, key=lambda p: p.effective_cycle_time_bound)[
        : max(k, 1)
    ]
    best_simulated: Optional[ParetoPoint] = None
    if simulate_cycles:
        from repro.sim.batch import simulate_configurations

        throughputs = simulate_configurations(
            [point.configuration for point in non_dominated],
            cycles=simulate_cycles,
            warmup=simulate_warmup,
            seed=simulate_seed,
        )
        for point, throughput in zip(non_dominated, throughputs):
            point.throughput = throughput
        best_simulated = min(
            non_dominated, key=lambda p: p.effective_cycle_time, default=None
        )
    return OptimizationResult(
        best=best,
        points=non_dominated,
        k_best=k_best,
        best_simulated=best_simulated,
        iterations=iterations,
        milp_solves=milp_solves,
        total_lp_iterations=total_lp_iterations,
        total_nodes=total_nodes,
    )


def _drop_dominated(points: List[ParetoPoint]) -> List[ParetoPoint]:
    """Keep only configurations that are non-dominated w.r.t. the LP bound."""
    pairs = [(p.cycle_time, p.throughput_bound) for p in points]
    keep = set(pareto_front(pairs))
    filtered = [p for i, p in enumerate(points) if i in keep]
    # Also drop exact duplicates (same cycle time and bound).
    unique: List[ParetoPoint] = []
    seen = set()
    for point in filtered:
        key = (round(point.cycle_time, 9), round(point.throughput_bound, 9))
        if key not in seen:
            seen.add(key)
            unique.append(point)
    return unique
