"""Throughput constraints (Lemma 3.2) and the LP bound for configurations.

The constraints are generated from the TGMG template produced by Procedures 1
and 2 (:mod:`repro.gmg.build`).  Writing them with ``x = 1 / Theta`` and a
scaled firing-count vector ``sigma`` gives, for every TGMG node ``n``::

    delta(n) <= x * m0(e) + sigma(u) - sigma(n)          n simple, e = (u, n)
    delta(n) <= sum_e gamma(e) * (x * m0(e) + sigma(u_e) - sigma(n))   n early

where ``delta`` is either a constant (0 for split/merge nodes, 1 for the
Procedure 2 server nodes) or the buffer count R'(e) of an RRG edge, and
``m0`` is either a constant or the token count R0(e) of an RRG edge.  These
are exactly the inequalities (5)-(10) of the paper, written structurally.

Retiming invariance
-------------------
The constraints always use the *original* token counts R0 of the base RRG,
even inside MILPs that retime the graph.  This is sound because the LP bound
is invariant under retiming for a fixed buffer assignment: a retiming shifts
``m0(e)`` by ``r(v) - r(u)``, and the substitution ``sigma(n) -> sigma(n) +
x * r(n)`` (extended over the auxiliary TGMG nodes) maps the shifted system
back onto the original one; since ``sigma`` is free, both systems are
feasible for exactly the same values of ``x`` and R'.  Keeping R0 constant is
what makes the MAX_THR program linear even though both ``x`` and the retiming
are variables.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.core.configuration import RRConfiguration
from repro.core.rrg import RRG
from repro.gmg.build import TGMGTemplate, ValueRef, build_template
from repro.lp import LinExpr, Model, SolveStatus, Variable
from repro.lp.errors import SolverError

NumberOrVar = Union[int, float, Variable, LinExpr]


def _resolve(
    ref: ValueRef,
    tokens: Mapping[int, float],
    buffers: Mapping[int, NumberOrVar],
):
    """Resolve a template reference into a number or a linear expression."""
    if ref.kind == "const":
        return ref.constant
    if ref.kind == "buffers":
        return buffers[ref.edge_index]
    if ref.kind == "tokens":
        return float(tokens[ref.edge_index])
    raise ValueError(f"unknown ValueRef kind {ref.kind!r}")


def add_throughput_constraints(
    model: Model,
    rrg: RRG,
    buffers: Mapping[int, NumberOrVar],
    x: NumberOrVar,
    tokens: Optional[Mapping[int, int]] = None,
    template: Optional[TGMGTemplate] = None,
    prefix: str = "thr",
) -> Dict[str, Variable]:
    """Add the Lemma 3.2 throughput constraints to ``model``.

    Args:
        model: Target LP/MILP model.
        rrg: Base graph (structure, early-evaluation marking, probabilities).
        buffers: Per-edge buffer counts R' (constants or model variables).
        x: Inverse throughput 1/Theta (constant or model variable).
        tokens: Token counts R0 to use; defaults to the RRG's original
            assignment (see the module docstring on retiming invariance).
        template: Pre-built TGMG template, to avoid rebuilding it on every
            call when sweeping many configurations of the same graph.
        prefix: Name prefix for the sigma variables.

    Returns:
        The ``sigma`` variables keyed by TGMG node name.
    """
    if template is None:
        template = build_template(rrg, refine=True)
    if tokens is None:
        tokens = rrg.token_vector()

    sigma: Dict[str, Variable] = {
        node.name: model.add_var(f"{prefix}_sigma[{node.name}]", lb=None, ub=None)
        for node in template.nodes
    }
    node_by_name = {node.name: node for node in template.nodes}

    incoming_map: Dict[str, list] = {node.name: [] for node in template.nodes}
    for edge in template.edges:
        incoming_map[edge.dst].append(edge)

    for node in template.nodes:
        incoming = incoming_map[node.name]
        if not incoming:
            continue
        delay_term = _resolve(node.delay, tokens, buffers)
        if node_by_name[node.name].early:
            average = LinExpr()
            for edge in incoming:
                marking = _resolve(edge.marking, tokens, buffers)
                average = average + edge.probability * (
                    x * marking + sigma[edge.src] - sigma[node.name]
                )
            model.add_constr(
                average >= delay_term, name=f"{prefix}_early[{node.name}]"
            )
        else:
            for edge in incoming:
                marking = _resolve(edge.marking, tokens, buffers)
                model.add_constr(
                    x * marking + sigma[edge.src] - sigma[node.name] >= delay_term,
                    name=f"{prefix}_simple[{node.name}][{edge.src}]",
                )
    return sigma


def configuration_throughput_bound(
    configuration: RRConfiguration,
    backend: str = "auto",
    template: Optional[TGMGTemplate] = None,
) -> float:
    """Theta_lp(RC): the LP throughput upper bound of a configuration.

    Solves LP (11): minimise ``x`` subject to the throughput constraints of
    the configuration, and returns ``1 / x``.  The result agrees with
    :func:`repro.gmg.lp_bound.throughput_upper_bound` applied to the same
    configuration (the two formulations are duals of the same construction);
    both are exposed because the MILPs reuse this constraint generator.
    """
    rrg = configuration.rrg
    model = Model(f"{rrg.name}-theta-lp", sense="min")
    x = model.add_var("x", lb=1.0)
    add_throughput_constraints(
        model,
        rrg,
        buffers=configuration.buffer_vector(),
        x=x,
        tokens=configuration.token_vector(),
        template=template,
    )
    model.set_objective(x)
    solution = model.solve(backend=backend)
    if solution.status is not SolveStatus.OPTIMAL:
        raise SolverError(
            f"throughput LP for configuration of {rrg.name!r} failed: "
            f"{solution.status.value}"
        )
    return 1.0 / float(solution[x])
