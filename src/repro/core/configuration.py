"""Retiming vectors and retiming-and-recycling configurations.

A retiming vector (Definition 2.6) maps each node to an integer lag; it
transforms the token count of edge ``(u, v)`` as ``R0'(e) = R0(e) + r(v) -
r(u)``.  A retiming-and-recycling configuration (Definition 2.7) is a pair of
vectors ``(R0', R')`` obtained from some retiming vector together with a
buffer assignment satisfying ``R' >= R0'`` and ``R' >= 0``.

The number of buffers in excess of what retiming alone would give
(``R' - max(R0', 0)``) is the *recycling* part: bubbles inserted on channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.analysis.cycle_time import cycle_time
from repro.core.rrg import RRG, RRGError


@dataclass(frozen=True)
class RetimingVector:
    """An integer lag per node.

    Nodes absent from ``lags`` implicitly have lag zero, so the identity
    retiming is ``RetimingVector({})``.
    """

    lags: Mapping[str, int] = field(default_factory=dict)

    def lag(self, node: str) -> int:
        """Lag of ``node`` (0 when unspecified)."""
        return int(self.lags.get(node, 0))

    def shifted_tokens(self, rrg: RRG) -> Dict[int, int]:
        """Token counts after applying this retiming to ``rrg``."""
        return {
            e.index: e.tokens + self.lag(e.dst) - self.lag(e.src) for e in rrg.edges
        }

    def normalized(self) -> "RetimingVector":
        """Equivalent vector whose minimum lag is zero.

        Adding a constant to every lag leaves all token counts unchanged, so
        retiming vectors are only defined up to a global shift.
        """
        if not self.lags:
            return self
        minimum = min(self.lags.values())
        return RetimingVector({k: v - minimum for k, v in self.lags.items()})

    def __add__(self, other: "RetimingVector") -> "RetimingVector":
        names = set(self.lags) | set(other.lags)
        return RetimingVector({n: self.lag(n) + other.lag(n) for n in names})


class RRConfiguration:
    """A retiming-and-recycling configuration of a base RRG.

    The configuration stores the base graph, the applied retiming vector and
    the buffer assignment.  Token counts are always derived from the base
    graph plus the retiming vector, which guarantees that every configuration
    is reachable by a legal retiming (cycle token sums are preserved by
    construction).
    """

    def __init__(
        self,
        rrg: RRG,
        retiming: Optional[RetimingVector] = None,
        buffers: Optional[Mapping[int, int]] = None,
        label: str = "",
    ) -> None:
        self.rrg = rrg
        self.retiming = retiming or RetimingVector({})
        self._tokens = self.retiming.shifted_tokens(rrg)
        if buffers is None:
            buffer_map = {idx: max(count, 0) for idx, count in self._tokens.items()}
        else:
            buffer_map = {e.index: int(buffers.get(e.index, 0)) for e in rrg.edges}
        self._buffers = buffer_map
        self.label = label
        self._validate()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def identity(cls, rrg: RRG) -> "RRConfiguration":
        """The configuration of the RRG as given (no retiming, no bubbles)."""
        return cls(
            rrg,
            RetimingVector({}),
            {e.index: e.buffers for e in rrg.edges},
            label="identity",
        )

    def _validate(self) -> None:
        for edge in self.rrg.edges:
            tokens = self._tokens[edge.index]
            buffers = self._buffers[edge.index]
            if buffers < 0:
                raise RRGError(
                    f"configuration has negative buffer count on edge "
                    f"{edge.src}->{edge.dst}"
                )
            if buffers < tokens:
                raise RRGError(
                    f"configuration violates R >= R0 on edge {edge.src}->{edge.dst}: "
                    f"{buffers} < {tokens}"
                )

    # -- per-edge views --------------------------------------------------------

    def tokens(self, edge_index: int) -> int:
        """R0' of the edge."""
        return self._tokens[edge_index]

    def buffers(self, edge_index: int) -> int:
        """R' of the edge."""
        return self._buffers[edge_index]

    def bubbles(self, edge_index: int) -> int:
        """Number of empty buffers (R' minus the tokens they hold, floored at 0)."""
        return self._buffers[edge_index] - max(self._tokens[edge_index], 0)

    def token_vector(self) -> Dict[int, int]:
        """Copy of the full R0' vector keyed by edge index."""
        return dict(self._tokens)

    def buffer_vector(self) -> Dict[int, int]:
        """Copy of the full R' vector keyed by edge index."""
        return dict(self._buffers)

    @property
    def total_buffers(self) -> int:
        """Total number of elastic buffers in the configuration."""
        return sum(self._buffers.values())

    @property
    def total_bubbles(self) -> int:
        """Total number of inserted bubbles across all edges."""
        return sum(self.bubbles(e.index) for e in self.rrg.edges)

    @property
    def has_antitokens(self) -> bool:
        """True when some edge carries a negative token count."""
        return any(count < 0 for count in self._tokens.values())

    # -- derived objects ---------------------------------------------------------

    def as_rrg(self, name: Optional[str] = None) -> RRG:
        """Materialise the configuration as a standalone RRG."""
        return self.rrg.with_assignment(
            self._tokens, self._buffers, name=name or f"{self.rrg.name}-rc"
        )

    def cycle_time(self) -> float:
        """Cycle time tau(RC) of the configuration."""
        return cycle_time(self.rrg, self._buffers)

    # -- comparisons ---------------------------------------------------------------

    def same_assignment(self, other: "RRConfiguration") -> bool:
        """True when both configurations have identical R0' and R' vectors."""
        return (
            self._tokens == other._tokens and self._buffers == other._buffers
        )

    def __repr__(self) -> str:
        label = f" {self.label!r}" if self.label else ""
        return (
            f"RRConfiguration({self.rrg.name!r}{label}, "
            f"buffers={self.total_buffers}, bubbles={self.total_bubbles})"
        )
