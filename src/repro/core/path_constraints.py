"""Cycle-time (combinational path) constraints — Lemma 2.1.

Given a candidate buffer assignment R' and a target cycle time ``tau``, the
configuration meets ``tau`` iff the following system is feasible::

    tin(e)  >= tout(e') + beta(u)        for every e' = (w, u), e = (u, v)
    tout(e) >= tin(e) - tau_star * R'(e)
    tout(e) >= 0
    tin(e)  <= tau

``tau_star`` is any constant larger than every achievable cycle time; the sum
of all combinational delays is used, as suggested in the paper.  The
constraints are linear in R' and in ``tau``, so they can be embedded in the
MIN_CYC / MAX_THR mixed-integer programs with either quantity as a variable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core.rrg import RRG
from repro.lp import LinExpr, Model, Variable

NumberOrVar = Union[int, float, Variable, LinExpr]


def add_path_constraints(
    model: Model,
    rrg: RRG,
    buffers: Mapping[int, NumberOrVar],
    tau: NumberOrVar,
    tau_star: Optional[float] = None,
    prefix: str = "path",
) -> Tuple[Dict[int, Variable], Dict[int, Variable]]:
    """Add the Lemma 2.1 constraints to ``model``.

    Args:
        model: Target LP/MILP model.
        rrg: Graph providing the structure and the node delays.
        buffers: Per-edge buffer counts R' (edge index -> constant or model
            variable).
        tau: Cycle-time bound (constant or model variable).
        tau_star: Big-M constant; defaults to the sum of all node delays,
            which upper-bounds any combinational path delay.
        prefix: Name prefix for the auxiliary timing variables.

    Returns:
        ``(tin, tout)`` dictionaries of timing variables keyed by edge index.
    """
    if tau_star is None:
        tau_star = max(rrg.total_delay, rrg.max_delay, 1.0)

    tin: Dict[int, Variable] = {}
    tout: Dict[int, Variable] = {}
    for edge in rrg.edges:
        tin[edge.index] = model.add_var(f"{prefix}_tin[{edge.index}]", lb=0.0)
        tout[edge.index] = model.add_var(f"{prefix}_tout[{edge.index}]", lb=0.0)

    for node in rrg.nodes:
        beta = rrg.delay(node.name)
        incoming = rrg.in_edges(node.name)
        outgoing = rrg.out_edges(node.name)
        for out_edge in outgoing:
            if incoming:
                for in_edge in incoming:
                    model.add_constr(
                        tin[out_edge.index] >= tout[in_edge.index] + beta,
                        name=f"{prefix}_arr[{in_edge.index}->{out_edge.index}]",
                    )
            else:
                model.add_constr(
                    tin[out_edge.index] >= beta,
                    name=f"{prefix}_src[{out_edge.index}]",
                )
        tau_expr = LinExpr.from_value(tau)
        if not outgoing:
            # Sink nodes: their delay still contributes to path delays ending
            # there (trivial extension of the lemma to non-strongly-connected
            # graphs).
            for in_edge in incoming:
                model.add_constr(
                    tau_expr >= tout[in_edge.index] + beta,
                    name=f"{prefix}_sink[{in_edge.index}]",
                )
        # Single-node paths: the cycle time can never be below any node delay.
        model.add_constr(tau_expr >= beta, name=f"{prefix}_node[{node.name}]")

    for edge in rrg.edges:
        model.add_constr(
            tout[edge.index] >= tin[edge.index] - tau_star * buffers[edge.index],
            name=f"{prefix}_reg[{edge.index}]",
        )
        model.add_constr(
            tin[edge.index] <= tau, name=f"{prefix}_tau[{edge.index}]"
        )

    return tin, tout


def check_cycle_time_feasible(
    rrg: RRG,
    buffers: Mapping[int, int],
    tau: float,
    backend: str = "auto",
) -> bool:
    """LP feasibility check of Lemma 2.1 for a concrete buffer assignment.

    This is mainly used by the test-suite to verify that the constraint system
    agrees with the direct longest-path computation of
    :func:`repro.analysis.cycle_time.cycle_time`.
    """
    from repro.lp import SolveStatus

    model = Model(f"{rrg.name}-pathcheck", sense="min")
    add_path_constraints(model, rrg, buffers, tau)
    model.set_objective(LinExpr({}, 0.0))
    solution = model.solve(backend=backend)
    return solution.status is SolveStatus.OPTIMAL
