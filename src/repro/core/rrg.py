"""Retiming and Recycling Graph (RRG) data model.

The RRG (Definition 2.1 of the paper) models an elastic system as a directed
multigraph whose nodes are combinational blocks and whose edges are channels:

* ``beta`` — combinational delay of each node,
* ``tokens`` (R0) — number of tokens initially stored on each edge (negative
  values are anti-tokens),
* ``buffers`` (R) — number of elastic buffers (EBs) on each edge, with
  ``R >= R0``,
* early-evaluation nodes carry a branch-selection probability ``gamma`` on
  each of their input edges, summing to one.

Liveness requires the sum of tokens along every directed cycle to be
positive.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx


class RRGError(Exception):
    """Raised when an RRG is malformed or an operation on it is invalid."""


@dataclass(slots=True)
class Node:
    """A combinational block of the elastic system.

    Attributes:
        name: Unique node identifier.
        delay: Combinational delay ``beta(n) >= 0``.
        early: True when the node evaluates early (fires as soon as the
            probabilistically selected input is available).
    """

    name: str
    delay: float = 0.0
    early: bool = False

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise RRGError(f"node {self.name!r} has negative delay {self.delay}")


@dataclass(slots=True)
class Edge:
    """A channel between two combinational blocks.

    Attributes:
        index: Unique integer identifier within the RRG (stable across copies).
        src: Name of the producer node.
        dst: Name of the consumer node.
        tokens: Initial token count R0 (may be negative: anti-tokens).
        buffers: Number of elastic buffers R, ``buffers >= tokens`` and
            ``buffers >= 0``.
        probability: Branch-selection probability gamma, required (and only
            meaningful) when the destination node is an early-evaluation node.
    """

    index: int
    src: str
    dst: str
    tokens: int = 0
    buffers: int = 0
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.buffers < 0:
            raise RRGError(
                f"edge {self.src}->{self.dst} has negative buffer count {self.buffers}"
            )
        if self.buffers < self.tokens:
            raise RRGError(
                f"edge {self.src}->{self.dst} violates R >= R0 "
                f"({self.buffers} < {self.tokens})"
            )
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise RRGError(
                f"edge {self.src}->{self.dst} has probability {self.probability} "
                "outside (0, 1]"
            )

    @property
    def key(self) -> Tuple[str, str, int]:
        """(src, dst, index) triple identifying the edge."""
        return (self.src, self.dst, self.index)


class RRG:
    """A retiming-and-recycling graph (directed multigraph).

    Nodes are added with :meth:`add_node` and channels with :meth:`add_edge`.
    Parallel edges are allowed (the motivational example of the paper has two
    channels between the same pair of nodes).  After construction, call
    :meth:`validate` to check well-formedness (probabilities, liveness,
    R >= R0).
    """

    def __init__(self, name: str = "rrg") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._edges: List[Edge] = []
        self._out: Dict[str, List[int]] = {}
        self._in: Dict[str, List[int]] = {}
        # Cached delay aggregates; invalidated whenever a node is added (the
        # MILP builders read max_delay/total_delay in hot loops).
        self._max_delay: Optional[float] = None
        self._total_delay: Optional[float] = None

    # -- construction -------------------------------------------------------

    def add_node(self, name: str, delay: float = 0.0, early: bool = False) -> Node:
        """Add a combinational block; raises on duplicate names."""
        if name in self._nodes:
            raise RRGError(f"duplicate node name {name!r}")
        node = Node(name=name, delay=float(delay), early=bool(early))
        self._nodes[name] = node
        self._out[name] = []
        self._in[name] = []
        self._max_delay = None
        self._total_delay = None
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        tokens: int = 0,
        buffers: Optional[int] = None,
        probability: Optional[float] = None,
    ) -> Edge:
        """Add a channel from ``src`` to ``dst``.

        Args:
            tokens: Initial token count R0 (negative values are anti-tokens).
            buffers: EB count R.  Defaults to ``max(tokens, 0)`` — i.e. just
                enough buffers to hold the initial tokens, with no bubbles.
            probability: Branch-selection probability, required when ``dst``
                is an early-evaluation node.

        Returns:
            The new :class:`Edge`.
        """
        if src not in self._nodes:
            raise RRGError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise RRGError(f"unknown destination node {dst!r}")
        if buffers is None:
            buffers = max(int(tokens), 0)
        edge = Edge(
            index=len(self._edges),
            src=src,
            dst=dst,
            tokens=int(tokens),
            buffers=int(buffers),
            probability=probability,
        )
        self._edges.append(edge)
        self._out[src].append(edge.index)
        self._in[dst].append(edge.index)
        return edge

    # -- access --------------------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes.keys())

    @property
    def edges(self) -> List[Edge]:
        """All edges in insertion order (edge.index == position)."""
        return list(self._edges)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise RRGError(f"unknown node {name!r}") from exc

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def edge(self, index: int) -> Edge:
        try:
            return self._edges[index]
        except IndexError as exc:
            raise RRGError(f"unknown edge index {index}") from exc

    def out_edges(self, name: str) -> List[Edge]:
        """Edges leaving ``name``."""
        return [self._edges[i] for i in self._out[self.node(name).name]]

    def in_edges(self, name: str) -> List[Edge]:
        """Edges entering ``name``."""
        return [self._edges[i] for i in self._in[self.node(name).name]]

    def edges_between(self, src: str, dst: str) -> List[Edge]:
        """All parallel edges from ``src`` to ``dst``."""
        return [e for e in self._edges if e.src == src and e.dst == dst]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def simple_nodes(self) -> List[Node]:
        """Nodes of the N1 partition (late evaluation)."""
        return [n for n in self._nodes.values() if not n.early]

    @property
    def early_nodes(self) -> List[Node]:
        """Nodes of the N2 partition (early evaluation)."""
        return [n for n in self._nodes.values() if n.early]

    def delay(self, name: str) -> float:
        """Combinational delay beta(n)."""
        return self.node(name).delay

    @property
    def max_delay(self) -> float:
        """Largest node delay (beta_max), 0.0 for an empty graph.

        Cached until the next :meth:`add_node`.  Mutating ``node.delay``
        directly bypasses the cache; call :meth:`invalidate_delay_cache`
        afterwards when doing so.
        """
        if self._max_delay is None:
            self._max_delay = (
                max(n.delay for n in self._nodes.values()) if self._nodes else 0.0
            )
        return self._max_delay

    @property
    def total_delay(self) -> float:
        """Sum of all node delays; the paper's big constant tau*.  Cached
        (see :attr:`max_delay`)."""
        if self._total_delay is None:
            self._total_delay = sum(n.delay for n in self._nodes.values())
        return self._total_delay

    def invalidate_delay_cache(self) -> None:
        """Drop the cached delay aggregates after direct ``node.delay`` edits."""
        self._max_delay = None
        self._total_delay = None

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __repr__(self) -> str:
        return (
            f"RRG({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"early={len(self.early_nodes)})"
        )

    # -- token / buffer vectors ------------------------------------------------

    def token_vector(self) -> Dict[int, int]:
        """Mapping edge index -> R0."""
        return {e.index: e.tokens for e in self._edges}

    def buffer_vector(self) -> Dict[int, int]:
        """Mapping edge index -> R."""
        return {e.index: e.buffers for e in self._edges}

    # -- structure queries -------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export the structure (with attributes) to a networkx MultiDiGraph."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(node.name, delay=node.delay, early=node.early)
        for edge in self._edges:
            graph.add_edge(
                edge.src,
                edge.dst,
                key=edge.index,
                tokens=edge.tokens,
                buffers=edge.buffers,
                probability=edge.probability,
                index=edge.index,
            )
        return graph

    def is_strongly_connected(self) -> bool:
        """True when the underlying multigraph is strongly connected."""
        if not self._nodes:
            return False
        return nx.is_strongly_connected(self.to_networkx())

    def strongly_connected_components(self) -> List[List[str]]:
        """Strongly connected components as lists of node names."""
        return [sorted(c) for c in nx.strongly_connected_components(self.to_networkx())]

    def simple_cycles(self, limit: Optional[int] = None) -> List[List[str]]:
        """Enumerate simple cycles (node name lists); optionally stop at ``limit``."""
        cycles: List[List[str]] = []
        # networkx's simple_cycles on a MultiDiGraph enumerates node cycles;
        # parallel edges do not add new node sequences, which is fine for
        # liveness-style checks that use minimum edge weights.
        for cycle in nx.simple_cycles(self.to_networkx()):
            cycles.append(list(cycle))
            if limit is not None and len(cycles) >= limit:
                break
        return cycles

    def cycle_token_sum(self, cycle: Sequence[str]) -> int:
        """Minimum total R0 along a directed cycle given as a node sequence.

        When parallel edges exist between consecutive cycle nodes, the edge
        with the fewest tokens is used (the pessimistic choice for liveness).
        """
        total = 0
        length = len(cycle)
        for i, src in enumerate(cycle):
            dst = cycle[(i + 1) % length]
            parallel = self.edges_between(src, dst)
            if not parallel:
                raise RRGError(f"cycle references missing edge {src}->{dst}")
            total += min(e.tokens for e in parallel)
        return total

    def has_live_token_distribution(self) -> bool:
        """Check liveness: every directed cycle has a positive token sum.

        Fast path: when no edge carries anti-tokens, a cycle with a
        non-positive token sum is exactly a cycle of all-zero-token edges, so
        liveness reduces to acyclicity of the zero-token subgraph — an
        ``O(V + E)`` topological sweep instead of Bellman-Ford, which is what
        keeps validation linear for the 500–5000 node ``large_rrg`` family.

        General path (some R0 < 0): negative-cycle detection on edge weights
        ``R0(e) - 1 / (|E| + 1)`` — a cycle whose token sum is <= 0 becomes a
        negative cycle under this shift, while cycles with sum >= 1 stay
        positive.
        """
        if not self._edges:
            return True
        if all(edge.tokens >= 0 for edge in self._edges):
            return self._zero_token_subgraph_is_acyclic()
        shift = 1.0 / (len(self._edges) + 1)
        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        for edge in self._edges:
            weight = edge.tokens - shift
            if graph.has_edge(edge.src, edge.dst):
                weight = min(weight, graph[edge.src][edge.dst]["weight"])
            graph.add_edge(edge.src, edge.dst, weight=weight)
        return not nx.negative_edge_cycle(graph, weight="weight")

    def _zero_token_subgraph_is_acyclic(self) -> bool:
        """Kahn's algorithm over the zero-token edges only (no networkx)."""
        out_lists: Dict[str, List[str]] = {name: [] for name in self._nodes}
        indegree: Dict[str, int] = {name: 0 for name in self._nodes}
        for edge in self._edges:
            if edge.tokens == 0:
                out_lists[edge.src].append(edge.dst)
                indegree[edge.dst] += 1
        ready = [name for name, degree in indegree.items() if degree == 0]
        processed = 0
        while ready:
            name = ready.pop()
            processed += 1
            for succ in out_lists[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        return processed == len(self._nodes)

    def validate(self) -> None:
        """Raise :class:`RRGError` when the RRG violates Definition 2.1."""
        for edge in self._edges:
            if edge.buffers < max(edge.tokens, 0):
                raise RRGError(
                    f"edge {edge.src}->{edge.dst}: buffers {edge.buffers} < "
                    f"max(tokens, 0) = {max(edge.tokens, 0)}"
                )
        for node in self._nodes.values():
            incoming = self.in_edges(node.name)
            if node.early:
                if len(incoming) < 2:
                    raise RRGError(
                        f"early-evaluation node {node.name!r} needs at least two inputs"
                    )
                missing = [e for e in incoming if e.probability is None]
                if missing:
                    raise RRGError(
                        f"early-evaluation node {node.name!r} has input edges "
                        "without branch probabilities"
                    )
                total = sum(e.probability for e in incoming)
                if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
                    raise RRGError(
                        f"branch probabilities of node {node.name!r} sum to {total}, "
                        "expected 1.0"
                    )
        if not self.has_live_token_distribution():
            raise RRGError("some directed cycle has a non-positive token sum")

    # -- copies and rebinding ---------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "RRG":
        """Deep copy of the RRG (edge indices preserved)."""
        clone = RRG(name or self.name)
        for node in self._nodes.values():
            clone.add_node(node.name, delay=node.delay, early=node.early)
        for edge in self._edges:
            clone.add_edge(
                edge.src,
                edge.dst,
                tokens=edge.tokens,
                buffers=edge.buffers,
                probability=edge.probability,
            )
        return clone

    def with_assignment(
        self,
        tokens: Dict[int, int],
        buffers: Dict[int, int],
        name: Optional[str] = None,
    ) -> "RRG":
        """Return a copy whose edge tokens/buffers are replaced by the mappings."""
        clone = RRG(name or self.name)
        for node in self._nodes.values():
            clone.add_node(node.name, delay=node.delay, early=node.early)
        for edge in self._edges:
            clone.add_edge(
                edge.src,
                edge.dst,
                tokens=int(tokens.get(edge.index, edge.tokens)),
                buffers=int(buffers.get(edge.index, edge.buffers)),
                probability=edge.probability,
            )
        return clone

    def as_late_evaluation(self, name: Optional[str] = None) -> "RRG":
        """Copy with every node marked simple (for the late-evaluation baseline)."""
        clone = RRG(name or f"{self.name}-late")
        for node in self._nodes.values():
            clone.add_node(node.name, delay=node.delay, early=False)
        for edge in self._edges:
            clone.add_edge(
                edge.src,
                edge.dst,
                tokens=edge.tokens,
                buffers=edge.buffers,
                probability=None,
            )
        return clone

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable description of the RRG."""
        return {
            "name": self.name,
            "nodes": [
                {"name": n.name, "delay": n.delay, "early": n.early}
                for n in self._nodes.values()
            ],
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "tokens": e.tokens,
                    "buffers": e.buffers,
                    "probability": e.probability,
                }
                for e in self._edges
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RRG":
        """Rebuild an RRG produced by :meth:`to_dict`."""
        rrg = cls(data.get("name", "rrg"))
        for node in data["nodes"]:
            rrg.add_node(node["name"], delay=node["delay"], early=node["early"])
        for edge in data["edges"]:
            rrg.add_edge(
                edge["src"],
                edge["dst"],
                tokens=edge["tokens"],
                buffers=edge["buffers"],
                probability=edge.get("probability"),
            )
        return rrg

    def to_json(self, indent: int = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RRG":
        """Parse an RRG from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
