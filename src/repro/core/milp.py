"""The MIN_CYC and MAX_THR mixed-integer linear programs (Section 4).

The joint minimisation of the effective cycle time is the non-convex
quadratic program (12); fixing one of the two factors of the objective
(``x = 1/Theta`` or ``tau``) yields a MILP:

* :func:`min_cycle_time` — ``MIN_CYC(x)``: the configuration of minimum cycle
  time among those whose LP throughput bound is at least ``1/x``.
  ``MIN_CYC(1)`` is a min-delay retiming.
* :func:`max_throughput` — ``MAX_THR(tau)``: the configuration of maximum LP
  throughput bound among those whose cycle time is at most ``tau``.

Both programs share the same decision variables: an integer retiming lag per
node, an integer buffer count per edge, the continuous timing variables of
the path constraints and the continuous ``sigma``/``x`` variables of the
throughput constraints.

Solve reuse
-----------
The MIN_EFF_CYC heuristic solves up to ``1/epsilon`` near-identical pairs of
these MILPs.  :class:`MilpWorkspace` builds each model **once**, with the
swept quantity (the required ``x`` for MIN_CYC, the cycle-time budget ``tau``
for MAX_THR) encoded as a variable fixed by its bounds.  Consecutive solves
then mutate only those bounds on the cached standard form and warm-start the
branch-and-bound root from the previous solve's basis — no model rebuild, no
matrix re-assembly, and (on the pure backend) dual-simplex re-solves instead
of cold starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.path_constraints import add_path_constraints
from repro.core.rrg import RRG
from repro.core.throughput import add_throughput_constraints
from repro.gmg.build import TGMGTemplate, build_template
from repro.lp import Model, Solution, SolveStatus, Variable
from repro.lp.errors import InfeasibleError, SolverError


@dataclass
class MilpSettings:
    """Knobs shared by the two MILPs.

    Attributes:
        backend: LP/MILP backend ("auto", "scipy" or "pure").
        time_limit: Optional solver time limit in seconds (the paper used a
            20-minute CPLEX timeout).
        max_buffers_per_edge: Upper bound on R'(e).  ``None`` derives a safe
            default from the total token count and the graph size.
        buffer_penalty: Tiny objective weight on the total buffer count, used
            only to break ties towards configurations without gratuitous
            buffers; set to 0.0 to reproduce the paper's objective exactly.
        warm_start: Reuse bases between consecutive solves of the same
            workspace (pure backend only; scipy ignores it).
    """

    backend: str = "auto"
    time_limit: Optional[float] = None
    max_buffers_per_edge: Optional[int] = None
    buffer_penalty: float = 1e-6
    warm_start: bool = True


@dataclass
class MilpOutcome:
    """Result of one MILP solve.

    Attributes:
        configuration: The extracted retiming-and-recycling configuration.
        cycle_time: Cycle time of the configuration (recomputed exactly from
            the buffer assignment, not read from the LP relaxation).
        throughput_bound: LP throughput bound implied by the MILP (``1/x``);
            for :func:`min_cycle_time` this is the requested bound.
        objective: Raw objective value reported by the solver.
        lp_iterations: Total simplex iterations over all branch-and-bound
            nodes (0 when the backend does not report it).
        nodes: Branch-and-bound nodes explored (0 when not reported).
    """

    configuration: RRConfiguration
    cycle_time: float
    throughput_bound: float
    objective: float
    lp_iterations: int = 0
    nodes: int = 0


def _default_max_buffers(rrg: RRG) -> int:
    total_tokens = sum(abs(e.tokens) for e in rrg.edges)
    return max(total_tokens + rrg.num_nodes, 4)


def _add_structure_variables(
    model: Model,
    rrg: RRG,
    settings: MilpSettings,
) -> tuple[Dict[str, Variable], Dict[int, Variable]]:
    """Add the retiming lags r(n) and buffer counts R'(e), with the coupling
    R'(e) >= R0(e) + r(v) - r(u) and R'(e) >= 0."""
    bound = settings.max_buffers_per_edge or _default_max_buffers(rrg)
    lag_bound = bound + sum(abs(e.tokens) for e in rrg.edges) + rrg.num_nodes
    lags: Dict[str, Variable] = {}
    for i, node in enumerate(rrg.nodes):
        lags[node.name] = model.add_var(
            f"r[{node.name}]", lb=-lag_bound, ub=lag_bound, vtype="integer"
        )
    # Retimings are invariant under a global shift; pin the first node to 0 to
    # remove the symmetry and help the branch-and-bound search.
    first = rrg.nodes[0].name
    model.add_constr(lags[first] <= 0, name="pin_upper")
    model.add_constr(lags[first] >= 0, name="pin_lower")

    buffers: Dict[int, Variable] = {}
    for edge in rrg.edges:
        buffers[edge.index] = model.add_var(
            f"R[{edge.index}]", lb=0, ub=bound, vtype="integer"
        )
        model.add_constr(
            buffers[edge.index]
            >= edge.tokens + lags[edge.dst] - lags[edge.src],
            name=f"retime[{edge.index}]",
        )
    return lags, buffers


def _extract_configuration(
    rrg: RRG,
    solution,
    lags: Dict[str, Variable],
    buffers: Dict[int, Variable],
    label: str,
) -> RRConfiguration:
    lag_values = {name: int(round(solution[var])) for name, var in lags.items()}
    buffer_values = {index: int(round(solution[var])) for index, var in buffers.items()}
    return RRConfiguration(
        rrg,
        retiming=RetimingVector(lag_values),
        buffers=buffer_values,
        label=label,
    )


class _ProgramState:
    """One cached MILP model plus its warm-start basis."""

    __slots__ = ("model", "lags", "buffers", "knob", "aux", "basis")

    def __init__(self, model, lags, buffers, knob, aux) -> None:
        self.model = model
        self.lags = lags
        self.buffers = buffers
        self.knob = knob  # the fixed-bound variable swept between solves
        self.aux = aux  # tau variable for MIN_CYC, x variable for MAX_THR
        self.basis = None


class MilpWorkspace:
    """Reusable MIN_CYC / MAX_THR solver state for one RRG.

    Each program's model is built on first use and kept; later solves mutate
    only the bounds of the swept variable (``x`` requirement or ``tau``
    budget) on the cached standard form and warm-start from the previous
    final basis.  This is what makes the MIN_EFF_CYC Pareto walk cheap: the
    constraint matrices never change across the whole sweep.
    """

    def __init__(
        self,
        rrg: RRG,
        settings: Optional[MilpSettings] = None,
        template: Optional[TGMGTemplate] = None,
    ) -> None:
        rrg.validate()
        self.rrg = rrg
        self.settings = settings or MilpSettings()
        self.template = template if template is not None else build_template(rrg, refine=True)
        self._min_cyc: Optional[_ProgramState] = None
        self._max_thr: Optional[_ProgramState] = None

    # -- model builders -----------------------------------------------------

    def _build_min_cyc(self) -> _ProgramState:
        rrg = self.rrg
        model = Model(f"{rrg.name}-min_cyc", sense="min")
        lags, buffers = _add_structure_variables(model, rrg, self.settings)
        tau = model.add_var("tau", lb=0.0, ub=max(rrg.total_delay, rrg.max_delay))
        # The required inverse throughput is swept between solves; encoding it
        # as a variable fixed by its bounds keeps the matrices constant.
        x_req = model.add_var("x_req", lb=1.0, ub=1.0)
        add_path_constraints(model, rrg, buffers, tau)
        add_throughput_constraints(
            model, rrg, buffers, x=x_req, template=self.template
        )
        objective = tau
        if self.settings.buffer_penalty:
            total_buffers = sum(buffers.values(), start=0)
            objective = tau + self.settings.buffer_penalty * total_buffers
        model.set_objective(objective)
        return _ProgramState(model, lags, buffers, knob=x_req, aux=tau)

    def _build_max_thr(self) -> _ProgramState:
        rrg = self.rrg
        model = Model(f"{rrg.name}-max_thr", sense="min")
        lags, buffers = _add_structure_variables(model, rrg, self.settings)
        x = model.add_var("x", lb=1.0, ub=None)
        # The cycle-time budget is swept between solves (fixed via bounds).
        tau_budget = model.add_var(
            "tau_budget", lb=0.0, ub=max(rrg.total_delay, rrg.max_delay)
        )
        add_path_constraints(model, rrg, buffers, tau=tau_budget)
        add_throughput_constraints(model, rrg, buffers, x=x, template=self.template)
        objective = x
        if self.settings.buffer_penalty:
            total_buffers = sum(buffers.values(), start=0)
            objective = x + self.settings.buffer_penalty * total_buffers
        model.set_objective(objective)
        return _ProgramState(model, lags, buffers, knob=tau_budget, aux=x)

    def _solve(self, state: _ProgramState) -> Solution:
        warm = state.basis if self.settings.warm_start else None
        solution = state.model.solve(
            backend=self.settings.backend,
            time_limit=self.settings.time_limit,
            warm_start=warm,
        )
        if solution.basis is not None:
            state.basis = solution.basis
        return solution

    # -- the two programs ---------------------------------------------------

    def min_cycle_time(self, x: float = 1.0) -> MilpOutcome:
        """MIN_CYC(x): minimise the cycle time subject to Theta_lp >= 1/x."""
        if x < 1.0:
            raise ValueError(f"x must be >= 1 (throughput cannot exceed 1), got {x}")
        if self._min_cyc is None:
            self._min_cyc = self._build_min_cyc()
        state = self._min_cyc
        state.model.set_var_bounds(state.knob, float(x), float(x))
        solution = self._solve(state)
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"MIN_CYC({x}) is infeasible for {self.rrg.name!r}: no configuration "
                f"has throughput bound >= {1.0 / x:.4f}"
            )
        if not solution.has_point:
            raise SolverError(
                f"MIN_CYC({x}) failed on {self.rrg.name!r}: {solution.status.value}"
            )
        configuration = _extract_configuration(
            self.rrg, solution, state.lags, state.buffers, label=f"min_cyc(x={x:.4g})"
        )
        return MilpOutcome(
            configuration=configuration,
            cycle_time=configuration.cycle_time(),
            throughput_bound=1.0 / float(x),
            objective=float(solution.objective),
            lp_iterations=solution.iterations,
            nodes=solution.nodes,
        )

    def max_throughput(self, tau: float) -> MilpOutcome:
        """MAX_THR(tau): maximise the LP throughput bound under a cycle cap."""
        if self._max_thr is None:
            self._max_thr = self._build_max_thr()
        state = self._max_thr
        cap = max(self.rrg.total_delay, self.rrg.max_delay)
        state.model.set_var_bounds(state.knob, 0.0, min(float(tau), cap))
        solution = self._solve(state)
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"MAX_THR({tau}) is infeasible for {self.rrg.name!r}: the cycle-time "
                f"budget is below the largest node delay {self.rrg.max_delay:.4f}"
            )
        if not solution.has_point:
            raise SolverError(
                f"MAX_THR({tau}) failed on {self.rrg.name!r}: {solution.status.value}"
            )
        configuration = _extract_configuration(
            self.rrg, solution, state.lags, state.buffers, label=f"max_thr(tau={tau:.4g})"
        )
        x_value = float(solution[state.aux])
        return MilpOutcome(
            configuration=configuration,
            cycle_time=configuration.cycle_time(),
            throughput_bound=1.0 / x_value if x_value > 0 else math.inf,
            objective=float(solution.objective),
            lp_iterations=solution.iterations,
            nodes=solution.nodes,
        )


def min_cycle_time(
    rrg: RRG,
    x: float = 1.0,
    settings: Optional[MilpSettings] = None,
    template: Optional[TGMGTemplate] = None,
) -> MilpOutcome:
    """MIN_CYC(x): minimise the cycle time subject to Theta_lp >= 1/x.

    Args:
        rrg: The base graph (its own token assignment defines what retimings
            are legal).
        x: Inverse of the required throughput bound; ``x = 1`` asks for full
            throughput and therefore returns a min-delay retiming.
        settings: Solver settings.
        template: Optional pre-built TGMG template of ``rrg``.

    Raises:
        InfeasibleError: when no configuration reaches the requested
            throughput bound.

    One-shot convenience wrapper around :class:`MilpWorkspace`; callers
    solving several related programs should hold a workspace instead.
    """
    return MilpWorkspace(rrg, settings=settings, template=template).min_cycle_time(x)


def max_throughput(
    rrg: RRG,
    tau: float,
    settings: Optional[MilpSettings] = None,
    template: Optional[TGMGTemplate] = None,
) -> MilpOutcome:
    """MAX_THR(tau): maximise the LP throughput bound under a cycle-time cap.

    Args:
        rrg: The base graph.
        tau: Cycle-time budget.  Must be at least the largest node delay,
            otherwise no configuration can meet it.
        settings: Solver settings.
        template: Optional pre-built TGMG template of ``rrg``.

    Raises:
        InfeasibleError: when ``tau`` is below the largest combinational
            delay.

    One-shot convenience wrapper around :class:`MilpWorkspace`; callers
    solving several related programs should hold a workspace instead.
    """
    return MilpWorkspace(rrg, settings=settings, template=template).max_throughput(tau)
