"""Elementary elastic-system transformations: retiming moves and recycling.

These are the local rewrites whose compositions the MILPs search over:

* a *backward retiming move* at node ``n`` removes one buffer/token from every
  output edge of ``n`` and adds one to every input edge (and vice versa for a
  forward move) — Definition 2.6 with a unit lag;
* *recycling* inserts an empty buffer (a bubble) on a channel, which is always
  behaviour-preserving for elastic systems;
* the anti-token identity ``0 = 1 - 1`` lets a bubble be rewritten as a token
  followed by an anti-token, which is what enables retiming across channels
  that would otherwise run out of tokens.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.rrg import RRG, RRGError


def retime_node(
    configuration: RRConfiguration, node: str, amount: int = 1
) -> RRConfiguration:
    """Apply a retiming move of ``amount`` to a single node.

    A positive ``amount`` increases the node's lag: each input edge gains
    ``amount`` tokens and buffers, each output edge loses as many.  Raises
    :class:`RRGError` if the move would leave an edge with fewer buffers than
    tokens or with negative buffers.
    """
    rrg = configuration.rrg
    rrg.node(node)  # raises on unknown node names
    new_lags = dict(configuration.retiming.lags)
    new_lags[node] = new_lags.get(node, 0) + int(amount)
    buffers: Dict[int, int] = configuration.buffer_vector()
    for edge in rrg.in_edges(node):
        buffers[edge.index] += int(amount)
    for edge in rrg.out_edges(node):
        buffers[edge.index] -= int(amount)
    return RRConfiguration(
        rrg,
        retiming=RetimingVector(new_lags),
        buffers=buffers,
        label=f"{configuration.label}+retime({node},{amount})",
    )


def insert_bubble(
    configuration: RRConfiguration, edge_index: int, count: int = 1
) -> RRConfiguration:
    """Recycling: add ``count`` empty buffers on a channel.

    Bubble insertion preserves the transferred token stream (it only adds
    latency), so it is always legal; it lowers the throughput when the channel
    lies on a cycle whose token count now falls short of its buffer count.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rrg = configuration.rrg
    rrg.edge(edge_index)  # raises on invalid index
    buffers = configuration.buffer_vector()
    buffers[edge_index] += int(count)
    return RRConfiguration(
        rrg,
        retiming=configuration.retiming,
        buffers=buffers,
        label=f"{configuration.label}+bubble({edge_index},{count})",
    )


def remove_bubble(
    configuration: RRConfiguration, edge_index: int, count: int = 1
) -> RRConfiguration:
    """Remove up to ``count`` empty buffers from a channel.

    Only bubbles (buffers in excess of the stored tokens) can be removed;
    attempting to remove more raises :class:`RRGError`.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rrg = configuration.rrg
    rrg.edge(edge_index)
    if configuration.bubbles(edge_index) < count:
        raise RRGError(
            f"edge {edge_index} has only {configuration.bubbles(edge_index)} "
            f"bubbles, cannot remove {count}"
        )
    buffers = configuration.buffer_vector()
    buffers[edge_index] -= int(count)
    return RRConfiguration(
        rrg,
        retiming=configuration.retiming,
        buffers=buffers,
        label=f"{configuration.label}-bubble({edge_index},{count})",
    )


def apply_retiming(
    rrg: RRG,
    lags: Dict[str, int],
    buffers: Optional[Dict[int, int]] = None,
) -> RRConfiguration:
    """Build a configuration from an explicit retiming vector.

    When ``buffers`` is omitted, every edge gets exactly enough buffers to
    hold its (non-negative) retimed tokens — i.e. retiming without recycling.
    """
    vector = RetimingVector(dict(lags))
    if buffers is None:
        shifted = vector.shifted_tokens(rrg)
        buffers = {index: max(value, 0) for index, value in shifted.items()}
    return RRConfiguration(rrg, retiming=vector, buffers=buffers, label="retimed")
