"""Core data model and optimisation algorithms of the reproduction.

* :mod:`repro.core.rrg` — the Retiming and Recycling Graph (Definition 2.1).
* :mod:`repro.core.configuration` — retiming vectors and RR configurations.
* :mod:`repro.core.path_constraints` — cycle-time constraints (Lemma 2.1).
* :mod:`repro.core.throughput` — throughput constraints (Lemma 3.2) and the
  LP bound for a fixed configuration.
* :mod:`repro.core.milp` — the MIN_CYC and MAX_THR mixed-integer programs.
* :mod:`repro.core.optimizer` — the MIN_EFF_CYC heuristic (Section 4).
* :mod:`repro.core.transformations` — elementary retiming moves and bubble
  insertion (recycling) as graph rewrites.
"""

from repro.core.rrg import RRG, Edge, Node, RRGError
from repro.core.configuration import RRConfiguration, RetimingVector

__all__ = [
    "RRG",
    "Edge",
    "Node",
    "RRGError",
    "RRConfiguration",
    "RetimingVector",
]
