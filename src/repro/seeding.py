"""Deterministic hash-based seed derivation shared across subsystems.

One scheme, used everywhere a child seed is needed: the pipeline runner
derives per-job seeds from an experiment's root seed, and the search
subsystem derives per-strategy seeds from a job's search seed.  Hash-based
splitting (rather than drawing from a shared ``random.Random``) makes every
child independent of how many siblings were derived before it, so adding a
job to a sweep — or a strategy to a portfolio — never reshuffles the others,
and shard assignment cannot matter.
"""

from __future__ import annotations

import hashlib
from typing import Any


def derive_seed(root_seed: int, *labels: Any) -> int:
    """A deterministic child seed from a root seed and stable labels.

    The labels must be stable, repr-able values (strings, ints, tuples);
    the same ``(root_seed, labels)`` pair derives the same child seed on any
    platform and in any process.
    """
    text = repr((int(root_seed),) + labels)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)
