"""Min-delay retiming of an RRG.

Two interchangeable engines are provided:

* ``method="classic"`` — the Leiserson-Saxe algorithm
  (:mod:`repro.retiming.leiserson_saxe`);
* ``method="milp"`` — the paper's ``MIN_CYC(1)`` program, which requires the
  LP throughput bound to stay at 1 and therefore returns a retiming without
  performance-degrading bubbles.

Both return an :class:`repro.core.configuration.RRConfiguration` whose cycle
time is minimal among configurations of full throughput.
"""

from __future__ import annotations

from typing import Optional

from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.milp import MilpSettings, min_cycle_time
from repro.core.rrg import RRG
from repro.retiming.leiserson_saxe import leiserson_saxe_min_period


def min_delay_retiming(
    rrg: RRG,
    method: str = "classic",
    settings: Optional[MilpSettings] = None,
) -> RRConfiguration:
    """Return a minimum-cycle-time retiming of ``rrg`` (no recycling).

    Args:
        rrg: The elastic system to retime.
        method: "classic" (Leiserson-Saxe) or "milp" (``MIN_CYC(1)``).
        settings: MILP settings, used only by the "milp" method.

    Returns:
        A full-throughput configuration of minimal cycle time.
    """
    if method == "milp":
        outcome = min_cycle_time(rrg, x=1.0, settings=settings)
        configuration = outcome.configuration
        configuration.label = "min-delay-retiming(milp)"
        return configuration
    if method != "classic":
        raise ValueError(f"unknown retiming method {method!r}")

    _, vector = leiserson_saxe_min_period(rrg)
    shifted_tokens = vector.shifted_tokens(rrg)
    buffers = {
        edge.index: edge.buffers + vector.lag(edge.dst) - vector.lag(edge.src)
        for edge in rrg.edges
    }
    # Guard against bases whose buffers exceed tokens: retiming shifts both by
    # the same amount, so R' >= R0' is preserved, but clamp at zero for safety.
    buffers = {
        index: max(count, shifted_tokens[index], 0) for index, count in buffers.items()
    }
    return RRConfiguration(
        rrg,
        retiming=vector,
        buffers=buffers,
        label="min-delay-retiming(classic)",
    )


def identity_configuration(rrg: RRG) -> RRConfiguration:
    """The un-retimed configuration (used as the ``xi*`` column of Table 2)."""
    return RRConfiguration.identity(rrg)
