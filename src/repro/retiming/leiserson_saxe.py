"""Leiserson-Saxe minimum-period retiming.

This is the classical algorithm for synchronous circuits (Algorithmica 1991),
implemented independently of the MILP machinery so the two can cross-check
each other:

* ``W(u, v)`` — minimum register count over all paths from ``u`` to ``v``;
* ``D(u, v)`` — maximum path delay over the minimum-register paths;
* a candidate clock period ``c`` is feasible iff the constraint system
  ``r(u) - r(v) <= w(e)`` for every edge and ``r(u) - r(v) <= W(u, v) - 1``
  for every pair with ``D(u, v) > c`` has an integer solution, which is a
  shortest-path (Bellman-Ford) problem;
* the minimum period is found by binary search over the distinct values of
  ``D``.

The RRG's elastic buffers play the role of registers (retiming moves EBs).
Parallel edges are collapsed to their minimum weight, which is exactly what
the path-based definition of W/D requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.configuration import RetimingVector
from repro.core.rrg import RRG


class RetimingError(Exception):
    """Raised when a retiming problem is malformed or unsolvable."""


@dataclass
class RetimingProblem:
    """A synchronous retiming instance extracted from an RRG.

    Attributes:
        nodes: Node names in a fixed order.
        delays: Node delays in the same order.
        weights: Collapsed edge weights ``w(u, v)`` (min buffers over parallel
            edges) keyed by node-index pairs.
    """

    nodes: List[str]
    delays: List[float]
    weights: Dict[Tuple[int, int], int]

    @classmethod
    def from_rrg(cls, rrg: RRG) -> "RetimingProblem":
        nodes = rrg.node_names
        index = {name: i for i, name in enumerate(nodes)}
        delays = [rrg.delay(name) for name in nodes]
        weights: Dict[Tuple[int, int], int] = {}
        for edge in rrg.edges:
            key = (index[edge.src], index[edge.dst])
            weight = edge.buffers
            if key in weights:
                weights[key] = min(weights[key], weight)
            else:
                weights[key] = weight
        return cls(nodes=nodes, delays=delays, weights=weights)

    @property
    def size(self) -> int:
        return len(self.nodes)


def _wd_matrices(problem: RetimingProblem) -> Tuple[np.ndarray, np.ndarray]:
    """Compute the W and D matrices by |V| runs of Dijkstra-like relaxation.

    The classical trick orders path cost lexicographically by
    ``(registers, -delay)``: W is the register component and D the delay of
    the destination-inclusive maximum-delay minimum-register path.
    """
    n = problem.size
    big = math.inf
    weight = np.full((n, n), big)
    delay = np.full((n, n), -big)
    for (u, v), w in problem.weights.items():
        cost = float(w)
        if cost < weight[u, v] or (
            cost == weight[u, v] and problem.delays[u] > delay[u, v]
        ):
            weight[u, v] = cost
            delay[u, v] = problem.delays[u]

    w_matrix = np.full((n, n), big)
    d_matrix = np.full((n, n), -big)
    for u in range(n):
        # Bellman-Ford from u with lexicographic cost (registers, -delay).
        dist_w = np.full(n, big)
        dist_d = np.full(n, -big)
        dist_w[u] = 0.0
        dist_d[u] = problem.delays[u]
        for _ in range(n):
            changed = False
            for (a, b), w in problem.weights.items():
                if dist_w[a] == big:
                    continue
                cand_w = dist_w[a] + w
                cand_d = dist_d[a] + problem.delays[b]
                if cand_w < dist_w[b] or (
                    cand_w == dist_w[b] and cand_d > dist_d[b]
                ):
                    dist_w[b] = cand_w
                    dist_d[b] = cand_d
                    changed = True
            if not changed:
                break
        w_matrix[u, :] = dist_w
        d_matrix[u, :] = dist_d
    return w_matrix, d_matrix


def retiming_feasible(
    problem: RetimingProblem,
    period: float,
    w_matrix: Optional[np.ndarray] = None,
    d_matrix: Optional[np.ndarray] = None,
) -> Optional[RetimingVector]:
    """Return a retiming achieving ``period``, or ``None`` when infeasible.

    Builds the difference-constraint graph of Leiserson-Saxe theorem 7 and
    solves it with Bellman-Ford; a negative cycle means infeasibility.
    """
    if w_matrix is None or d_matrix is None:
        w_matrix, d_matrix = _wd_matrices(problem)
    n = problem.size
    # Constraint graph: edge v -> u with weight w means r(u) - r(v) <= w.
    constraints: Dict[Tuple[int, int], float] = {}

    def add(u: int, v: int, bound: float) -> None:
        key = (v, u)
        if key in constraints:
            constraints[key] = min(constraints[key], bound)
        else:
            constraints[key] = bound

    for (u, v), w in problem.weights.items():
        add(u, v, float(w))
    for u in range(n):
        for v in range(n):
            if math.isinf(w_matrix[u, v]):
                continue
            if d_matrix[u, v] > period + 1e-9:
                add(u, v, w_matrix[u, v] - 1.0)

    # Bellman-Ford from a virtual source connected to every node with weight 0.
    dist = [0.0] * n
    for _ in range(n):
        changed = False
        for (src, dst), bound in constraints.items():
            if dist[src] + bound < dist[dst] - 1e-12:
                dist[dst] = dist[src] + bound
                changed = True
        if not changed:
            break
    else:
        for (src, dst), bound in constraints.items():
            if dist[src] + bound < dist[dst] - 1e-12:
                return None

    lags = {problem.nodes[i]: int(round(dist[i])) for i in range(n)}
    return RetimingVector(lags).normalized()


def leiserson_saxe_min_period(
    rrg: RRG,
) -> Tuple[float, RetimingVector]:
    """Minimum achievable clock period by retiming, and a retiming reaching it.

    Returns:
        ``(period, retiming)``; the retiming maps node names to integer lags.

    Raises:
        RetimingError: when no finite period is achievable (should not happen
            for a live RRG).
    """
    problem = RetimingProblem.from_rrg(rrg)
    w_matrix, d_matrix = _wd_matrices(problem)
    candidates = sorted(
        {
            float(d_matrix[u, v])
            for u in range(problem.size)
            for v in range(problem.size)
            if not math.isinf(d_matrix[u, v]) and d_matrix[u, v] > 0
        }
        | {max(problem.delays) if problem.delays else 0.0}
    )
    if not candidates:
        return 0.0, RetimingVector({})

    feasible_period: Optional[float] = None
    feasible_vector: Optional[RetimingVector] = None
    low, high = 0, len(candidates) - 1
    while low <= high:
        mid = (low + high) // 2
        vector = retiming_feasible(problem, candidates[mid], w_matrix, d_matrix)
        if vector is not None:
            feasible_period = candidates[mid]
            feasible_vector = vector
            high = mid - 1
        else:
            low = mid + 1
    if feasible_vector is None or feasible_period is None:
        raise RetimingError(f"no feasible retiming period found for {rrg.name!r}")
    return feasible_period, feasible_vector
