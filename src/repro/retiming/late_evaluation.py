"""The late-evaluation baseline ``xi_nee`` of the experiments.

``xi_nee`` is the minimal effective cycle time of the RRG when every node is
treated as a simple (late-evaluation) node.  For late evaluation the LP
throughput bound is exact (the system is a plain marked graph), so running
MIN_EFF_CYC on the late-evaluation copy gives the true optimum.  As the paper
notes, in practice it almost always coincides with the min-delay retiming
cycle time; recycling only helps late-evaluation systems with highly
unbalanced path delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.configuration import RRConfiguration
from repro.core.milp import MilpSettings
from repro.core.optimizer import min_effective_cycle_time
from repro.core.rrg import RRG
from repro.retiming.min_delay import min_delay_retiming


@dataclass
class LateEvaluationBaseline:
    """Result of the late-evaluation baseline computation.

    Attributes:
        effective_cycle_time: ``xi_nee`` — the best late-evaluation effective
            cycle time.
        configuration: The configuration achieving it (on the late-evaluation
            copy of the graph).
        min_delay_cycle_time: Cycle time of the plain min-delay retiming, for
            comparison (usually equal to ``effective_cycle_time``).
        used_recycling: True when the optimum needed bubbles, i.e. recycling
            beat plain retiming even without early evaluation.
    """

    effective_cycle_time: float
    configuration: RRConfiguration
    min_delay_cycle_time: float
    used_recycling: bool


def late_evaluation_baseline(
    rrg: RRG,
    epsilon: float = 0.01,
    settings: Optional[MilpSettings] = None,
    full_search: bool = True,
) -> LateEvaluationBaseline:
    """Compute ``xi_nee`` for an RRG.

    Args:
        rrg: The original (possibly early-evaluation) graph.
        epsilon: Throughput step of the MIN_EFF_CYC loop.
        settings: MILP settings.
        full_search: When False, skip the Pareto sweep and return the
            min-delay retiming value directly (faster; exact whenever
            recycling does not help, which the paper observed in all its
            benchmarks).
    """
    late = rrg.as_late_evaluation()
    min_delay = min_delay_retiming(late, method="milp", settings=settings)
    min_delay_tau = min_delay.cycle_time()

    if not full_search:
        return LateEvaluationBaseline(
            effective_cycle_time=min_delay_tau,
            configuration=min_delay,
            min_delay_cycle_time=min_delay_tau,
            used_recycling=False,
        )

    result = min_effective_cycle_time(late, k=1, epsilon=epsilon, settings=settings)
    best = result.best
    # For a marked graph the LP bound is exact, so the bound-based effective
    # cycle time is the true one.
    xi_nee = min(best.effective_cycle_time_bound, min_delay_tau)
    if best.effective_cycle_time_bound < min_delay_tau - 1e-9:
        return LateEvaluationBaseline(
            effective_cycle_time=xi_nee,
            configuration=best.configuration,
            min_delay_cycle_time=min_delay_tau,
            used_recycling=best.configuration.total_bubbles > 0,
        )
    return LateEvaluationBaseline(
        effective_cycle_time=min_delay_tau,
        configuration=min_delay,
        min_delay_cycle_time=min_delay_tau,
        used_recycling=False,
    )
