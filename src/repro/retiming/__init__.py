"""Classical retiming baselines.

* :mod:`repro.retiming.leiserson_saxe` — the textbook Leiserson-Saxe
  min-period retiming (W/D matrices plus a Bellman-Ford feasibility check),
  used as an independent cross-check of the MILP-based ``MIN_CYC(1)``.
* :mod:`repro.retiming.min_delay` — min-delay retiming of an RRG, returning
  an :class:`repro.core.configuration.RRConfiguration`.
* :mod:`repro.retiming.late_evaluation` — the late-evaluation baseline
  ``xi_nee`` of the experiments: the best effective cycle time achievable
  when every node is treated as a simple (late-evaluation) node.
"""

from repro.retiming.leiserson_saxe import (
    RetimingProblem,
    leiserson_saxe_min_period,
    retiming_feasible,
)
from repro.retiming.min_delay import min_delay_retiming
from repro.retiming.late_evaluation import late_evaluation_baseline

__all__ = [
    "RetimingProblem",
    "leiserson_saxe_min_period",
    "retiming_feasible",
    "min_delay_retiming",
    "late_evaluation_baseline",
]
