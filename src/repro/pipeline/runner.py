"""Sharded pipeline execution: fan jobs across processes, fall back to serial.

:func:`run_jobs` is the single execution entry point for every experiment and
the CLI.  It takes declarative :class:`~repro.pipeline.stages.Job` values
(picklable by construction — scenario references, not builder callables),
runs them serially or across a ``ProcessPoolExecutor``, and returns payloads
in submission order.

Determinism: jobs carry their own seeds, fixed at declaration time by
:func:`derive_seed` from a root seed and stable labels — never from worker
identity or completion order — so an N-shard run is bit-identical to a
serial one.  When a :class:`~repro.pipeline.store.ArtifactStore` is given,
each worker consults it before computing and publishes after, so shards
share results across processes and a re-run only recomputes what changed.

The parallel path degrades gracefully: if the platform cannot spawn workers
(sandboxes without fork, broken pools mid-run), the runner emits a
``fallback`` event and finishes the remaining jobs serially.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.pipeline import events as ev
from repro.pipeline.stages import Job, execute_job, job_store_key
from repro.pipeline.store import ArtifactStore, attach_persistent_throughputs
from repro.sim import cache as _sim_cache

StoreLike = Union[ArtifactStore, str, os.PathLike, None]


def derive_seed(root_seed: int, *labels: Any) -> int:
    """A deterministic child seed from a root seed and stable labels.

    Hash-based splitting (rather than ``random.Random(root).randrange`` per
    consumer) makes the child independent of how many siblings were derived
    before it, so adding a job to a sweep never reshuffles the others and
    shard assignment cannot matter.
    """
    text = repr((int(root_seed),) + labels)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


def _resolve_store(store: StoreLike) -> Optional[ArtifactStore]:
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


def _run_one(
    job: Job, store: Optional[ArtifactStore]
) -> Tuple[Dict[str, Any], bool]:
    """Execute one job, going through the store when one is configured.

    Returns ``(payload, cached)``.
    """
    rrg = job.build.build()
    if store is None:
        return execute_job(job, rrg=rrg), False
    key = job_store_key(job, rrg)
    payload = store.get(key)
    if payload is not None:
        return payload, True
    # Share fine-grained simulated throughputs across shards too: identical
    # configurations reappearing in other jobs become disk hits.  Any backend
    # the caller had installed globally is restored afterwards.
    previous_backend = _sim_cache.persistent_backend()
    attach_persistent_throughputs(store)
    try:
        payload = execute_job(job, rrg=rrg)
    finally:
        _sim_cache.set_persistent_backend(previous_backend)
    store.put(key, payload)
    return payload, False


def _worker(
    args: Tuple[Job, Optional[str]]
) -> Tuple[Dict[str, Any], bool, float]:
    """Pool entry point: run one job and report its compute time.

    Timing happens here, in the worker, so JOB_DONE durations measure actual
    execution rather than queue wait in a busy pool.  Top-level so process
    pools can pickle it; each worker opens its own view of the store.
    """
    job, store_root = args
    store = None if store_root is None else ArtifactStore(store_root)
    started = time.perf_counter()
    payload, cached = _run_one(job, store)
    return payload, cached, time.perf_counter() - started


def run_jobs(
    jobs: Sequence[Job],
    shards: int = 1,
    store: StoreLike = None,
    events: Optional[ev.EventCallback] = None,
) -> List[Dict[str, Any]]:
    """Run jobs and return their payloads in submission order.

    Args:
        jobs: Declarative job list (see :mod:`repro.pipeline.stages`).
        shards: Worker processes; <= 1 runs serially in-process.
        store: Artifact store (or its directory path) shared by all shards;
            None disables persistence.
        events: Structured progress callback; None ignores events.
    """
    jobs = list(jobs)
    emit = events if events is not None else (lambda event: None)
    resolved = _resolve_store(store)
    store_root = None if resolved is None else str(resolved.root)
    shards = max(1, int(shards))
    effective = min(shards, len(jobs)) if jobs else 1

    emit(ev.PipelineEvent(
        kind=ev.PIPELINE_START, total=len(jobs), shards=effective
    ))
    started = time.perf_counter()
    results: List[Optional[Dict[str, Any]]] = [None] * len(jobs)

    pending = list(range(len(jobs)))
    if effective > 1:
        pending = _run_sharded(jobs, pending, results, effective, store_root, emit)
    for index in pending:
        job = jobs[index]
        emit(ev.PipelineEvent(
            kind=ev.JOB_START, job_id=job.job_id, index=index + 1,
            total=len(jobs), shards=1,
        ))
        job_started = time.perf_counter()
        try:
            payload, cached = _run_one(job, resolved)
        except Exception as exc:
            emit(ev.PipelineEvent(
                kind=ev.JOB_FAILED, job_id=job.job_id, index=index + 1,
                total=len(jobs), shards=1, message=repr(exc),
            ))
            raise
        results[index] = payload
        emit(ev.PipelineEvent(
            kind=ev.JOB_DONE, job_id=job.job_id, index=index + 1,
            total=len(jobs), shards=1, cached=cached,
            seconds=time.perf_counter() - job_started,
        ))

    emit(ev.PipelineEvent(
        kind=ev.PIPELINE_DONE, total=len(jobs), shards=effective,
        seconds=time.perf_counter() - started,
    ))
    return [payload for payload in results if payload is not None]


def _run_sharded(
    jobs: Sequence[Job],
    pending: List[int],
    results: List[Optional[Dict[str, Any]]],
    shards: int,
    store_root: Optional[str],
    emit: ev.EventCallback,
) -> List[int]:
    """Fan ``pending`` job indices across a process pool.

    Returns the indices left for the serial fallback (empty on success).
    """
    total = len(jobs)
    job_failures: List[BaseException] = []
    try:
        with ProcessPoolExecutor(max_workers=shards) as pool:
            futures = {}
            for index in pending:
                job = jobs[index]
                emit(ev.PipelineEvent(
                    kind=ev.JOB_START, job_id=job.job_id, index=index + 1,
                    total=total, shards=shards,
                ))
                futures[pool.submit(_worker, (job, store_root))] = index
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        payload, cached, seconds = future.result()
                    except BrokenExecutor:
                        raise
                    except Exception as exc:
                        # The *job* failed (solver error, bad scenario...):
                        # that is deterministic, so a serial rerun would only
                        # repeat it — surface it exactly like the serial path.
                        emit(ev.PipelineEvent(
                            kind=ev.JOB_FAILED, job_id=jobs[index].job_id,
                            index=index + 1, total=total, shards=shards,
                            message=repr(exc),
                        ))
                        job_failures.append(exc)
                        raise
                    results[index] = payload
                    emit(ev.PipelineEvent(
                        kind=ev.JOB_DONE, job_id=jobs[index].job_id,
                        index=index + 1, total=total, shards=shards,
                        cached=cached, seconds=seconds,
                    ))
        return []
    except (BrokenExecutor, OSError, ImportError) as exc:
        if any(failure is exc for failure in job_failures):
            # A deterministic job failure that happens to share a type with
            # pool breakage (e.g. an OSError from inside a stage): a serial
            # rerun would only repeat it, so propagate instead.
            raise
        # The *pool* failed: it could not start (no fork/semaphores in the
        # host) or its workers died mid-run (BrokenProcessPool).  Anything
        # already collected is kept; the rest reruns serially.
        remaining = [index for index in pending if results[index] is None]
        emit(ev.PipelineEvent(
            kind=ev.FALLBACK,
            message=f"process pool unavailable ({exc!r}); "
                    f"running {len(remaining)} job(s) serially",
        ))
        return remaining
