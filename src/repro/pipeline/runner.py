"""Sharded pipeline execution: fan jobs across processes, fall back to serial.

:func:`run_jobs` is the single execution entry point for every experiment and
the CLI.  It takes declarative :class:`~repro.pipeline.stages.Job` values
(picklable by construction — scenario references, not builder callables),
runs them serially or across a ``ProcessPoolExecutor``, and returns payloads
in submission order.

Determinism: jobs carry their own seeds, fixed at declaration time by
:func:`derive_seed` from a root seed and stable labels — never from worker
identity or completion order — so an N-shard run is bit-identical to a
serial one.  When a :class:`~repro.pipeline.store.ArtifactStore` is given,
each worker consults it before computing and publishes after, so shards
share results across processes and a re-run only recomputes what changed.

The parallel path degrades gracefully: a pool whose workers died mid-run
(crashed or OOM-killed shards, including injected ``worker_start`` faults)
is rebuilt up to :data:`POOL_REBUILDS` times — each rebuild emits a
``worker-retry`` event and re-runs only the uncollected jobs — and if the
platform cannot sustain a pool at all, the runner emits a ``fallback`` event
and finishes the remaining jobs serially.

Resilience wiring: the runner ships the ambient
:class:`~repro.resilience.faults.FaultPlan` to pool workers (process globals
do not survive spawn) and, when a :class:`~repro.resilience.journal.RunJournal`
is ambient (see :func:`repro.resilience.journal.journaling`), records each
completed job's store key in the parent process and serves journaled-complete
jobs straight from the store on resume — without rebuilding their graphs.
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import replace as _replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs import trace as _trace
from repro.pipeline import events as ev
from repro.pipeline.stages import Job, execute_job, job_store_key
from repro.pipeline.store import ArtifactStore, attach_persistent_throughputs
from repro.resilience import faults as _faults
from repro.resilience.faults import FaultPlan
from repro.resilience.journal import RunJournal, active_journal
from repro.seeding import derive_seed
from repro.sim import cache as _sim_cache

__all__ = [
    "PipelineAborted",
    "derive_seed",
    "graceful_interrupts",
    "run_jobs",
]

StoreLike = Union[ArtifactStore, str, os.PathLike, None]

#: How many times a broken worker pool is rebuilt before falling back to the
#: serial path.  Each rebuild ships an incremented attempt to the workers, so
#: an injected ``worker_start`` fault draws a fresh (independent) decision.
POOL_REBUILDS = 2


class PipelineAborted(RuntimeError):
    """A run was stopped between jobs by a shutdown request.

    Everything finished before the stop is recorded (and, with a store,
    published), so a later re-run only pays for what is missing.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"pipeline aborted after {completed}/{total} job(s)"
        )
        self.completed = completed
        self.total = total


#: Set by :func:`graceful_interrupts` on the first SIGINT/SIGTERM; consulted
#: by every :func:`run_jobs` call that was not given an explicit
#: ``should_stop``, so one context manager covers arbitrarily nested sweeps.
_INTERRUPT = threading.Event()


@contextlib.contextmanager
def graceful_interrupts(stream=None) -> Iterator[Callable[[], bool]]:
    """Turn SIGINT/SIGTERM into a graceful pipeline drain.

    The first signal only requests a stop: in-flight jobs finish, their
    artifacts are published, and :func:`run_jobs` raises
    :class:`PipelineAborted` at the next job boundary.  A second signal
    raises :class:`KeyboardInterrupt` immediately (hard abort).

    Yields the stop predicate (also usable as an explicit ``should_stop``).
    Installing handlers is only possible in the main thread; elsewhere the
    context manager degrades to the plain flag without touching handlers.
    """
    output = stream if stream is not None else sys.stderr

    def _handler(signum, frame):
        if _INTERRUPT.is_set():
            raise KeyboardInterrupt
        _INTERRUPT.set()
        print(
            "interrupt received: finishing in-flight job(s) "
            "(interrupt again to abort hard)",
            file=output,
            flush=True,
        )

    previous = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):  # non-main thread / exotic platform
                pass
        yield _INTERRUPT.is_set
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        _INTERRUPT.clear()


def _default_should_stop() -> bool:
    return _INTERRUPT.is_set()


def _stamped(emit: ev.EventCallback) -> ev.EventCallback:
    """Wrap an event callback to stamp the ambient trace/span ids.

    Events that already carry a trace id (e.g. sharded JOB_DONE events
    tied to their job span) pass through untouched; with no active trace
    this is a single contextvar read per event.
    """

    def wrapped(event: ev.PipelineEvent) -> None:
        if event.trace_id is None:
            trace_id = _trace.current_trace_id()
            if trace_id is not None:
                event = _replace(
                    event, trace_id=trace_id, span_id=_trace.current_span_id()
                )
        emit(event)

    return wrapped


def _resolve_store(store: StoreLike) -> Optional[ArtifactStore]:
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


def _run_one(
    job: Job, store: Optional[ArtifactStore]
) -> Tuple[Dict[str, Any], bool, Optional[str]]:
    """Execute one job, going through the store when one is configured.

    Returns ``(payload, cached, store_key)`` — the key is None without a
    store.  Degraded payloads (deadline fallbacks) are never published: the
    store must only ever hold the exact, declaration-pure result, so a later
    unconstrained run recomputes instead of inheriting a degraded answer.
    """
    rrg = job.build.build()
    if store is None:
        return execute_job(job, rrg=rrg), False, None
    key = job_store_key(job, rrg)
    payload = store.get(key)
    if payload is not None:
        return payload, True, key
    # Share fine-grained simulated throughputs across shards too: identical
    # configurations reappearing in other jobs become disk hits.  Any backend
    # the caller had installed globally is restored afterwards.
    previous_backend = _sim_cache.persistent_backend()
    attach_persistent_throughputs(store)
    try:
        payload = execute_job(job, rrg=rrg)
    finally:
        _sim_cache.set_persistent_backend(previous_backend)
    if "degraded" not in payload:
        store.put(key, payload)
    return payload, False, key


def _worker_init() -> None:
    """Pool-worker initializer: leave interrupt handling to the parent.

    A terminal Ctrl-C delivers SIGINT to the whole foreground process
    group; without the SIG_IGN, every worker dies mid-job and the graceful
    drain promised by :func:`graceful_interrupts` never gets to happen.
    SIGTERM must go back to the default: fork-started workers inherit the
    parent's graceful handler, which would swallow the ``terminate()`` the
    hard-abort path sends and leave the workers running forever.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass


def _worker(
    args: Tuple[Job, Optional[str], Optional[FaultPlan], int]
) -> Tuple[Dict[str, Any], bool, float, Optional[str]]:
    """Pool entry point: run one job and report its compute time.

    Timing happens here, in the worker, so JOB_DONE durations measure actual
    execution rather than queue wait in a busy pool.  Top-level so process
    pools can pickle it; each worker opens its own view of the store.

    The parent ships the ambient fault plan explicitly (process globals do
    not survive spawn-started workers) plus the pool attempt, so injected
    fault draws match a serial run of the same plan and a rebuilt pool draws
    independently.  A scheduled ``worker_start`` fault exits the process the
    way a crash/OOM kill would — the parent sees ``BrokenProcessPool``.
    """
    job, store_root, plan, pool_attempt = args
    if plan is not None:
        _faults.install_plan(plan)
    if _faults.should_crash_worker(job.job_id, pool_attempt):
        os._exit(3)
    store = None if store_root is None else ArtifactStore(store_root)
    started = time.perf_counter()
    payload, cached, key = _run_one(job, store)
    return payload, cached, time.perf_counter() - started, key


def run_jobs(
    jobs: Sequence[Job],
    shards: int = 1,
    store: StoreLike = None,
    events: Optional[ev.EventCallback] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> List[Dict[str, Any]]:
    """Run jobs and return their payloads in submission order.

    Args:
        jobs: Declarative job list (see :mod:`repro.pipeline.stages`).
        shards: Worker processes; <= 1 runs serially in-process.
        store: Artifact store (or its directory path) shared by all shards;
            None disables persistence.
        events: Structured progress callback; None ignores events.
        should_stop: Polled between jobs; when it returns True the run
            drains in-flight work, emits an ``aborted`` event and raises
            :class:`PipelineAborted`.  Defaults to the flag set by
            :func:`graceful_interrupts`.

    Raises:
        PipelineAborted: When ``should_stop`` requested a graceful stop.
    """
    jobs = list(jobs)
    emit = _stamped(events if events is not None else (lambda event: None))
    stop = should_stop if should_stop is not None else _default_should_stop
    resolved = _resolve_store(store)
    store_root = None if resolved is None else str(resolved.root)
    shards = max(1, int(shards))
    effective = min(shards, len(jobs)) if jobs else 1

    emit(ev.PipelineEvent(
        kind=ev.PIPELINE_START, total=len(jobs), shards=effective
    ))
    started = time.perf_counter()
    results: List[Optional[Dict[str, Any]]] = [None] * len(jobs)

    def _abort() -> "PipelineAborted":
        completed = sum(1 for payload in results if payload is not None)
        emit(ev.PipelineEvent(
            kind=ev.ABORTED, total=len(jobs), shards=effective,
            message=f"stop requested; {completed}/{len(jobs)} job(s) "
                    "completed and published",
        ))
        return PipelineAborted(completed, len(jobs))

    journal = active_journal() if resolved is not None else None
    pending = list(range(len(jobs)))
    if journal is not None and pending:
        pending = _skip_journaled(
            jobs, pending, results, resolved, journal, emit, effective
        )
    if effective > 1 and pending:
        plan = _faults.active_plan()
        pool_attempt = 0
        while pending:
            pending, broken = _run_sharded(
                jobs, pending, results, effective, store_root, emit, stop,
                _abort, plan, pool_attempt, journal,
            )
            if not pending or not broken:
                break
            if pool_attempt >= POOL_REBUILDS:
                emit(ev.PipelineEvent(
                    kind=ev.FALLBACK,
                    message=f"worker pool kept breaking after "
                            f"{POOL_REBUILDS} rebuild(s); running "
                            f"{len(pending)} job(s) serially",
                ))
                break
            pool_attempt += 1
            emit(ev.PipelineEvent(
                kind=ev.WORKER_RETRY, total=len(jobs), shards=effective,
                message=f"worker pool died; rebuilding "
                        f"(attempt {pool_attempt}/{POOL_REBUILDS}, "
                        f"{len(pending)} job(s) left)",
            ))
    for index in pending:
        if stop():
            raise _abort()
        job = jobs[index]
        emit(ev.PipelineEvent(
            kind=ev.JOB_START, job_id=job.job_id, index=index + 1,
            total=len(jobs), shards=1,
        ))
        job_started = time.perf_counter()
        with _trace.span(f"job:{job.job_id}") as job_span:
            try:
                payload, cached, key = _run_one(job, resolved)
            except Exception as exc:
                emit(ev.PipelineEvent(
                    kind=ev.JOB_FAILED, job_id=job.job_id, index=index + 1,
                    total=len(jobs), shards=1, message=repr(exc),
                ))
                raise
            if job_span:
                job_span.annotate(cached=cached)
            results[index] = payload
            _journal_done(journal, job.job_id, payload, key)
            _emit_degraded(emit, payload, job.job_id, index, len(jobs), 1)
            emit(ev.PipelineEvent(
                kind=ev.JOB_DONE, job_id=job.job_id, index=index + 1,
                total=len(jobs), shards=1, cached=cached,
                seconds=time.perf_counter() - job_started,
            ))

    emit(ev.PipelineEvent(
        kind=ev.PIPELINE_DONE, total=len(jobs), shards=effective,
        seconds=time.perf_counter() - started,
    ))
    return [payload for payload in results if payload is not None]


def _emit_degraded(
    emit: ev.EventCallback,
    payload: Optional[Dict[str, Any]],
    job_id: str,
    index: int,
    total: int,
    shards: int,
) -> None:
    """Surface a payload's ``degraded`` provenance block as an event.

    Reducers flatten payloads into rows, so without this event a caller
    (service, CLI) could not tell a degraded sweep from an exact one.
    """
    if not payload or "degraded" not in payload:
        return
    block = payload["degraded"]
    emit(ev.PipelineEvent(
        kind=ev.DEGRADED, job_id=job_id, index=index + 1, total=total,
        shards=shards, message=str(block.get("reason", "")),
    ))


def _journal_done(
    journal: Optional[RunJournal],
    job_id: str,
    payload: Optional[Dict[str, Any]],
    key: Optional[str],
) -> None:
    """Record one completion in the ambient journal (parent-side).

    Degraded payloads are not journaled — like the store, the journal only
    vouches for exact, declaration-pure results, so a resume recomputes them.
    """
    if journal is None or key is None or payload is None:
        return
    if "degraded" in payload:
        return
    journal.record_done(job_id, key)


def _skip_journaled(
    jobs: Sequence[Job],
    pending: List[int],
    results: List[Optional[Dict[str, Any]]],
    store: ArtifactStore,
    journal: RunJournal,
    emit: ev.EventCallback,
    shards: int,
) -> List[int]:
    """Serve journaled-complete jobs from the store; return what remains.

    A journaled job whose artifact the store cannot produce (dropped write,
    pruned entry) silently falls back into the pending list — the journal
    accelerates a resume, it never gates correctness.
    """
    completed = journal.completed()
    if not completed:
        return pending
    remaining: List[int] = []
    for index in pending:
        job = jobs[index]
        key = completed.get(job.job_id)
        payload = None if key is None else store.get(key)
        if payload is None:
            remaining.append(index)
            continue
        results[index] = payload
        emit(ev.PipelineEvent(
            kind=ev.JOB_DONE, job_id=job.job_id, index=index + 1,
            total=len(jobs), shards=shards, cached=True, seconds=0.0,
            message="journal",
        ))
    return remaining


def _drain_pool(
    jobs: Sequence[Job],
    futures: Dict[Any, int],
    not_done,
    results: List[Optional[Dict[str, Any]]],
    emit: ev.EventCallback,
    shards: int,
    journal: Optional[RunJournal],
) -> None:
    """Graceful-stop drain: cancel queued futures, collect running ones.

    Workers publish their own artifacts, so anything that finishes during
    the drain is both recorded here (journal included) and persisted on disk.
    """
    total = len(jobs)
    for future in not_done:
        future.cancel()
    done, _ = wait(not_done)
    for future in done:
        if future.cancelled():
            continue
        index = futures[future]
        try:
            payload, cached, seconds, key = future.result()
        except BaseException:
            continue  # a failing in-flight job does not outrank the abort
        results[index] = payload
        _journal_done(journal, jobs[index].job_id, payload, key)
        _emit_degraded(emit, payload, jobs[index].job_id, index, total, shards)
        span_rec = _trace.record_span(
            f"job:{jobs[index].job_id}", seconds, cached=cached
        )
        emit(ev.PipelineEvent(
            kind=ev.JOB_DONE, job_id=jobs[index].job_id, index=index + 1,
            total=total, shards=shards, cached=cached, seconds=seconds,
            trace_id=(span_rec or {}).get("trace_id"),
            span_id=(span_rec or {}).get("span_id"),
        ))


def _run_sharded(
    jobs: Sequence[Job],
    pending: List[int],
    results: List[Optional[Dict[str, Any]]],
    shards: int,
    store_root: Optional[str],
    emit: ev.EventCallback,
    stop: Callable[[], bool],
    abort: Callable[[], "PipelineAborted"],
    plan: Optional[FaultPlan],
    pool_attempt: int,
    journal: Optional[RunJournal],
) -> Tuple[List[int], bool]:
    """Fan ``pending`` job indices across a process pool.

    Returns ``(remaining, broken)``: the indices not yet collected, and
    whether the pool *broke mid-run* (worker death — the caller may rebuild
    and retry) as opposed to finishing or proving unable to start (the
    caller falls back to the serial path; a ``fallback`` event was emitted).
    """
    total = len(jobs)
    job_failures: List[BaseException] = []
    pool = None
    try:
        pool = ProcessPoolExecutor(max_workers=shards, initializer=_worker_init)
        futures = {}
        for index in pending:
            job = jobs[index]
            emit(ev.PipelineEvent(
                kind=ev.JOB_START, job_id=job.job_id, index=index + 1,
                total=total, shards=shards,
            ))
            futures[pool.submit(
                _worker, (job, store_root, plan, pool_attempt)
            )] = index
        not_done = set(futures)
        while not_done:
            if stop():
                _drain_pool(
                    jobs, futures, not_done, results, emit, shards, journal
                )
                raise abort()
            # The timeout bounds how long a stop request can sit unnoticed:
            # without it the drain would only begin at the *next* job
            # completion, which can be many minutes into a long MILP.
            done, not_done = wait(
                not_done, timeout=0.5, return_when=FIRST_COMPLETED
            )
            for future in done:
                index = futures[future]
                try:
                    payload, cached, seconds, key = future.result()
                except BrokenExecutor:
                    raise
                except Exception as exc:
                    # The *job* failed (solver error, bad scenario...):
                    # that is deterministic, so a serial rerun would only
                    # repeat it — surface it exactly like the serial path.
                    emit(ev.PipelineEvent(
                        kind=ev.JOB_FAILED, job_id=jobs[index].job_id,
                        index=index + 1, total=total, shards=shards,
                        message=repr(exc),
                    ))
                    job_failures.append(exc)
                    raise
                results[index] = payload
                _journal_done(journal, jobs[index].job_id, payload, key)
                _emit_degraded(
                    emit, payload, jobs[index].job_id, index, total, shards
                )
                # The job ran in a pool worker, out of reach of this
                # process's contextvars: record its span parent-side from
                # the worker-reported wall time.
                span_rec = _trace.record_span(
                    f"job:{jobs[index].job_id}", seconds, cached=cached
                )
                emit(ev.PipelineEvent(
                    kind=ev.JOB_DONE, job_id=jobs[index].job_id,
                    index=index + 1, total=total, shards=shards,
                    cached=cached, seconds=seconds,
                    trace_id=(span_rec or {}).get("trace_id"),
                    span_id=(span_rec or {}).get("span_id"),
                ))
        pool.shutdown(wait=True)
        return [], False
    except KeyboardInterrupt:
        # Hard abort (e.g. a second Ctrl-C): never let the executor's exit
        # path run every still-queued job to completion — and terminate the
        # running workers, or the interpreter's atexit join would block on
        # them anyway and the "abort" would still take minutes.
        if pool is not None:
            # Snapshot first: shutdown() drops the _processes reference even
            # with wait=False, and the handles are needed to terminate.
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    process.terminate()
                except (OSError, AttributeError):
                    pass
        raise
    except (BrokenExecutor, OSError, ImportError) as exc:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if any(failure is exc for failure in job_failures):
            # A deterministic job failure that happens to share a type with
            # pool breakage (e.g. an OSError from inside a stage): a serial
            # rerun would only repeat it, so propagate instead.
            raise
        remaining = [index for index in pending if results[index] is None]
        if isinstance(exc, BrokenExecutor):
            # Workers died mid-run (crash, OOM kill, injected
            # ``worker_start`` fault).  Anything already collected is kept;
            # the caller decides whether to rebuild the pool or go serial.
            return remaining, True
        # The pool could not start at all (no fork/semaphores in the host):
        # rebuilding would fail identically, so hand the rest to the serial
        # path immediately.
        emit(ev.PipelineEvent(
            kind=ev.FALLBACK,
            message=f"process pool unavailable ({exc!r}); "
                    f"running {len(remaining)} job(s) serially",
        ))
        return remaining, False
    except BaseException:
        # Job failure or graceful abort: drop queued jobs, let the running
        # workers finish (they publish their own artifacts), propagate.
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        raise
