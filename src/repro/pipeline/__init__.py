"""Declarative, process-parallel experiment pipeline.

Every experiment is the same four-stage shape — Build a workload RRG,
Optimize it (MIN_EFF_CYC), Simulate the candidate configurations, Report —
so the pipeline models it as data:

* :mod:`repro.pipeline.stages` — the stage protocol, picklable
  :class:`~repro.pipeline.stages.Job` declarations and the payload format;
* :mod:`repro.pipeline.runner` — serial or sharded execution with
  deterministic seed derivation and graceful fallback;
* :mod:`repro.pipeline.store` — the persistent content-addressed artifact
  store shared across shards and invocations;
* :mod:`repro.pipeline.events` — structured progress events replacing
  ad-hoc prints.

See ``docs/architecture.md`` for the layer boundaries and how to register a
new scenario.
"""

from repro.pipeline.events import EventLog, PipelineEvent
from repro.pipeline.runner import (
    PipelineAborted,
    derive_seed,
    graceful_interrupts,
    run_jobs,
)
from repro.pipeline.stages import (
    BuildSpec,
    Job,
    OptimizeParams,
    SimulateParams,
    execute_job,
    job_store_key,
)
from repro.pipeline.store import ArtifactStore, attach_persistent_throughputs

__all__ = [
    "ArtifactStore",
    "BuildSpec",
    "EventLog",
    "Job",
    "OptimizeParams",
    "PipelineAborted",
    "PipelineEvent",
    "SimulateParams",
    "attach_persistent_throughputs",
    "derive_seed",
    "execute_job",
    "graceful_interrupts",
    "job_store_key",
    "run_jobs",
]
