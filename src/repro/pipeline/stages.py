"""The Build -> Optimize -> Simulate -> Report stage pipeline.

Every experiment in this repository has the same shape: *build* a workload
RRG, *optimize* it with MIN_EFF_CYC (optionally next to the late-evaluation
baseline), *simulate* the resulting candidate configurations through the
batched engine, and *report* rows.  This module turns that shape into data:

* a :class:`Job` is a picklable declaration — a :class:`BuildSpec` naming a
  registry scenario (or carrying an inline RRG), optional
  :class:`OptimizeParams` and :class:`SimulateParams`;
* :func:`execute_job` runs the Build/Optimize/Simulate stages (each a small
  :class:`Stage` object sharing a :class:`JobContext`) and returns a pure
  JSON payload, so results can cross process boundaries and live in the
  artifact store;
* the Report stage runs in the parent process: experiments reduce payloads
  back into their public dataclasses (:func:`optimization_from_payload`
  rebuilds an :class:`~repro.core.optimizer.OptimizationResult` object for
  callers that want live configurations).

Because a payload is a deterministic function of the job declaration, a
serial run, an 8-shard run and a store-cached run all reduce to identical
tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Protocol

from repro.analysis.cycle_time import cycle_time
from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.milp import MilpSettings
from repro.core.optimizer import (
    OptimizationResult,
    ParetoPoint,
    min_effective_cycle_time,
)
from repro.core.rrg import RRG
from repro.core.throughput import configuration_throughput_bound
from repro.obs import trace as _trace
from repro.pipeline.store import content_key
from repro.resilience import faults as _faults
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.faults import InjectedFault
from repro.resilience.retry import STAGE_RETRY, RetryPolicy, TransientError
from repro.retiming.late_evaluation import late_evaluation_baseline
from repro.sim.batch import simulate_configurations
from repro.sim.cache import rrg_fingerprint
from repro.workloads.registry import build_scenario

#: Version of the job payload layout; part of every store key.
PAYLOAD_VERSION = 2


@dataclass(frozen=True)
class BuildSpec:
    """How to obtain the job's RRG.

    Either a registry reference (``scenario`` + ``params``) — the normal,
    compact form — or an inline serialized RRG for public APIs that accept an
    arbitrary caller-constructed graph.
    """

    scenario: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    rrg_json: Optional[str] = None

    @classmethod
    def from_scenario(cls, scenario_name: str, /, **params: Any) -> "BuildSpec":
        return cls(scenario=scenario_name, params=dict(params))

    @classmethod
    def from_rrg(cls, rrg: RRG) -> "BuildSpec":
        return cls(rrg_json=rrg.to_json(indent=0))

    def build(self) -> RRG:
        if self.scenario is not None:
            return build_scenario(self.scenario, self.params)
        if self.rrg_json is not None:
            return RRG.from_json(self.rrg_json)
        raise ValueError("BuildSpec needs a scenario name or an inline RRG")

    def describe(self) -> Dict[str, Any]:
        if self.scenario is not None:
            return {"scenario": self.scenario, "params": dict(self.params)}
        return {"inline": True}


#: Optimizers the Optimize stage can dispatch to.  ``milp`` is the exact
#: MIN_EFF_CYC walk; the rest route through :mod:`repro.search` (``portfolio``
#: races descent + annealing and, on small graphs, the MILP itself).
OPTIMIZERS = ("milp", "descent", "anneal", "portfolio")

#: Strategy line-up per search optimizer.
SEARCH_STRATEGIES = {
    "descent": ("descent",),
    "anneal": ("anneal",),
    "portfolio": ("descent", "anneal"),
}


@dataclass(frozen=True)
class OptimizeParams:
    """Parameters of the Optimize stage.

    ``optimizer`` selects between the exact MILP walk (``"milp"``, the
    default — MIN_EFF_CYC with optional late-evaluation baseline) and the
    heuristic search subsystem (``"descent"``/``"anneal"``/``"portfolio"``,
    for graphs beyond branch-and-bound reach).  The search knobs
    (``time_budget``, ``search_seed``, ``search_cycles``, ``search_pool``)
    are ignored by the MILP path; MILP settings are shared by both (the
    portfolio's MILP member uses them on small instances).  ``search_pool``
    is the moves-per-batch pool size of the search strategies (None = the
    search default) — declarative, so it is part of the job identity.
    """

    k: int = 3
    epsilon: float = 0.05
    baseline: bool = False
    baseline_full_search: bool = False
    backend: str = "auto"
    time_limit: Optional[float] = None
    max_buffers_per_edge: Optional[int] = None
    buffer_penalty: float = 1e-6
    warm_start: bool = True
    optimizer: str = "milp"
    time_budget: Optional[float] = None
    search_seed: int = 0
    search_cycles: int = 256
    search_pool: Optional[int] = None

    @classmethod
    def from_settings(
        cls,
        settings: Optional[MilpSettings],
        k: int = 3,
        epsilon: float = 0.05,
        baseline: bool = False,
        baseline_full_search: bool = False,
    ) -> "OptimizeParams":
        settings = settings or MilpSettings()
        return cls(
            k=k,
            epsilon=epsilon,
            baseline=baseline,
            baseline_full_search=baseline_full_search,
            backend=settings.backend,
            time_limit=settings.time_limit,
            max_buffers_per_edge=settings.max_buffers_per_edge,
            buffer_penalty=settings.buffer_penalty,
            warm_start=settings.warm_start,
        )

    def settings(self) -> MilpSettings:
        return MilpSettings(
            backend=self.backend,
            time_limit=self.time_limit,
            max_buffers_per_edge=self.max_buffers_per_edge,
            buffer_penalty=self.buffer_penalty,
            warm_start=self.warm_start,
        )


@dataclass(frozen=True)
class SimulateParams:
    """Parameters of the Simulate stage.

    With an Optimize stage present, the stage batches every stored Pareto
    candidate (prepending the LP-preferred one when ``include_best`` is set,
    as the Table 2 column definitions require).  Without one, it evaluates
    the built RRG itself; ``exact`` and ``lp_bound`` additionally request the
    Markov-chain throughput and the LP upper bound (the motivational-example
    columns).
    """

    cycles: int = 4000
    warmup: Optional[int] = None
    seed: int = 0
    mode: str = "tgmg"
    include_best: bool = False
    exact: bool = False
    lp_bound: bool = False
    recompute_bounds: bool = False


@dataclass(frozen=True)
class Job:
    """One unit of pipeline work: scenario x stage parameters.

    ``meta`` carries reducer-side context (figure labels, expected values...)
    that does not influence the computation — it is excluded from the store
    key.
    """

    job_id: str
    build: BuildSpec
    optimize: Optional[OptimizeParams] = None
    simulate: Optional[SimulateParams] = None
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class JobContext:
    """Mutable state shared by the stages of one job."""

    job: Job
    rrg: Optional[RRG] = None
    optimization: Optional[OptimizationResult] = None
    baseline_xi: Optional[float] = None
    payload: Dict[str, Any] = field(default_factory=dict)


class Stage(Protocol):
    """The stage protocol: a name and an in-place context transformation."""

    name: str

    def run(self, ctx: JobContext) -> None:
        ...


class BuildStage:
    name = "build"

    def run(self, ctx: JobContext) -> None:
        # The runner may have pre-built the graph (it needs the fingerprint
        # for the store key before deciding whether to execute the job).
        rrg = ctx.rrg if ctx.rrg is not None else ctx.job.build.build()
        ctx.rrg = rrg
        ctx.payload["graph"] = {
            "name": rrg.name,
            "num_nodes": rrg.num_nodes,
            "simple_nodes": len(rrg.simple_nodes),
            "early_nodes": len(rrg.early_nodes),
            "num_edges": rrg.num_edges,
            "initial_cycle_time": cycle_time(rrg),
        }


#: Fixed search budget of a degraded Optimize stage.  A constant — not the
#: live deadline remainder — so the fallback's evaluation budget (and with
#: it the degraded incumbent) is a pure function of the job declaration.
DEGRADED_TIME_BUDGET = 5.0


class OptimizeStage:
    name = "optimize"

    def __init__(self, params: OptimizeParams) -> None:
        self.params = params

    def run(self, ctx: JobContext) -> None:
        assert ctx.rrg is not None, "Optimize requires a built RRG"
        params = self.params
        if params.optimizer not in OPTIMIZERS:
            raise ValueError(
                f"unknown optimizer {params.optimizer!r}; "
                f"expected one of {OPTIMIZERS}"
            )
        if params.optimizer != "milp":
            self._run_search(ctx, params)
            return
        deadline = Deadline.current()
        try:
            # The ``solver_stall`` fault site models the exact MILP wedging
            # past any useful deadline; the reaction is the same degradation
            # path a genuine deadline overrun takes.
            _faults.check("solver_stall", ctx.job.job_id)
            self._run_milp(ctx, params, deadline)
        except InjectedFault:
            self._degrade(ctx, params, deadline, reason="solver-stall")
        except DeadlineExceeded:
            self._degrade(ctx, params, deadline, reason="milp-deadline")

    def _degrade(
        self,
        ctx: JobContext,
        params: OptimizeParams,
        deadline: Optional[Deadline],
        reason: str,
    ) -> None:
        """Fall back from the exact MILP to the heuristic portfolio.

        The request still succeeds: the payload carries a ``degraded``
        provenance block (and is never published to the store, so a later
        unconstrained run recomputes the exact answer).
        """
        fallback = replace(
            params,
            optimizer="portfolio",
            time_budget=params.time_budget or DEGRADED_TIME_BUDGET,
        )
        # Whatever the MILP partially produced is discarded wholesale: the
        # search rewrites the optimize block, and a half-done exact walk must
        # not masquerade as provenance.
        ctx.payload.pop("optimize", None)
        self._run_search(ctx, fallback, milp_member=False)
        ctx.payload["degraded"] = {
            "stage": self.name,
            "requested": "milp",
            "optimizer": "portfolio",
            "reason": reason,
            "deadline_remaining": (
                None if deadline is None else round(deadline.remaining(), 3)
            ),
        }

    def _run_milp(
        self,
        ctx: JobContext,
        params: OptimizeParams,
        deadline: Optional[Deadline],
    ) -> None:
        settings = params.settings()
        if deadline is not None:
            deadline.require("optimize stage")
        if params.baseline:
            baseline = late_evaluation_baseline(
                ctx.rrg,
                epsilon=params.epsilon,
                settings=settings,
                full_search=params.baseline_full_search,
            )
            ctx.baseline_xi = baseline.effective_cycle_time
            ctx.payload["baseline"] = {
                "effective_cycle_time": baseline.effective_cycle_time,
                "min_delay_cycle_time": baseline.min_delay_cycle_time,
                "used_recycling": baseline.used_recycling,
            }
        guard = None
        if deadline is not None:
            def guard(count: int, point: ParetoPoint) -> None:
                # Invoked after every stored Pareto point: the walk stops at
                # the first point past the deadline and the stage degrades
                # (the partial walk is discarded, so nothing half-done can
                # reach the store).
                del count, point
                deadline.require("MILP Pareto walk")
        result = min_effective_cycle_time(
            ctx.rrg,
            k=params.k,
            epsilon=params.epsilon,
            settings=settings,
            progress=guard,
        )
        ctx.optimization = result
        points = [_point_payload(point) for point in result.points]
        best_index = next(
            (i for i, p in enumerate(result.points) if p is result.best), -1
        )
        ctx.payload["optimize"] = {
            "points": points,
            "best": _point_payload(result.best),
            "best_index": best_index,
            "k_best_indices": [
                i
                for point in result.k_best
                for i, candidate in enumerate(result.points)
                if candidate is point
            ],
            "iterations": result.iterations,
            "milp_solves": result.milp_solves,
            "total_lp_iterations": result.total_lp_iterations,
            "total_nodes": result.total_nodes,
        }

    def _run_search(
        self,
        ctx: JobContext,
        params: OptimizeParams,
        milp_member: Optional[bool] = None,
    ) -> None:
        """The heuristic path: race strategies, emit the MILP payload shape.

        The payload mirrors the exact path (``points``/``best``/indices) so
        the Simulate stage and every reducer work unchanged, and adds a
        ``search`` block with the anytime profile and provenance.  Pareto
        points carry the *measured* throughput in the ``throughput_bound``
        slot when no LP bound was computed (graphs beyond the LP filter
        size); ``search.bound_kind`` says which one it is.

        ``milp_member`` overrides the portfolio's MILP-member gate; the
        degraded path forces it off (the MILP just failed the job's budget).
        """
        from repro.search import search_minimize
        from repro.search.problem import LP_FILTER_MAX_NODES

        if milp_member is None:
            # Only the portfolio admits the exact MILP, and only below the
            # search's own node limit (None = auto gate).
            milp_member = None if params.optimizer == "portfolio" else False
        result = search_minimize(
            ctx.rrg,
            strategies=SEARCH_STRATEGIES[params.optimizer],
            time_budget=params.time_budget or 30.0,
            seed=params.search_seed,
            cycles=params.search_cycles,
            epsilon=params.epsilon,
            settings=params.settings(),
            include_milp=milp_member,
            pool_size=params.search_pool,
        )
        use_lp_bound = ctx.rrg.num_nodes <= LP_FILTER_MAX_NODES

        def to_point(entry) -> ParetoPoint:
            if use_lp_bound:
                bound = configuration_throughput_bound(entry.configuration)
            else:
                bound = entry.throughput
            point = ParetoPoint(
                configuration=entry.configuration,
                cycle_time=entry.cycle_time,
                throughput_bound=bound,
            )
            point.throughput = entry.throughput
            return point

        points = [to_point(entry) for entry in result.points]
        best = points[-1]  # search_minimize puts the final incumbent last
        ctx.optimization = OptimizationResult(
            best=best,
            points=points,
            k_best=sorted(
                points, key=lambda p: p.effective_cycle_time
            )[: max(params.k, 1)],
            iterations=result.evaluations,
            milp_solves=(result.milp or {}).get("milp_solves", 0),
        )
        ctx.payload["optimize"] = {
            "points": [_point_payload(point) for point in points],
            "best": _point_payload(best),
            "best_index": len(points) - 1,
            "k_best_indices": [
                i
                for point in ctx.optimization.k_best
                for i, candidate in enumerate(points)
                if candidate is point
            ],
            "iterations": result.evaluations,
            "milp_solves": (result.milp or {}).get("milp_solves", 0),
            "total_lp_iterations": 0,
            "total_nodes": 0,
            "optimizer": params.optimizer,
            "search": {
                "strategy": result.best.strategy,
                "effective_cycle_time": result.best.effective_cycle_time,
                "evaluations": result.evaluations,
                "evaluation_budget": result.evaluation_budget,
                "pruned_tau": result.pruned_tau,
                "pruned_lp": result.pruned_lp,
                "bound_kind": "lp" if use_lp_bound else "measured",
                "time_budget": result.time_budget,
                "completed": result.completed,
                "seed": result.seed,
                "pool_size": result.pool_size,
                # Wall-clock and host-dependent fields stay out: a stored
                # payload must be a pure function of the job declaration
                # (the sim-cache-warmth dependent `simulations` counter and
                # the host's `kernel_backend` stay out for the same reason —
                # SearchResult still carries them for live callers).
                "milp": None if result.milp is None else {
                    key: value for key, value in result.milp.items()
                    if key != "seconds"
                },
                "history": [
                    [index, name, xi] for index, name, xi in result.history
                ],
                "strategies": [
                    {
                        "name": report.name,
                        "seed": report.seed,
                        "steps": report.steps,
                        "improvements": report.improvements,
                        "best_xi": report.best_xi,
                        "exhausted": report.exhausted,
                    }
                    for report in result.strategies
                ],
            },
        }
        deadline = Deadline.current()
        if deadline is not None and (
            not result.completed or (result.milp or {}).get("truncated")
        ):
            # The request deadline cut the race (or its MILP member) short:
            # the incumbent is valid but not the declaration-pure answer, so
            # mark it degraded — the runner/broker then keep it out of the
            # store and caches.
            ctx.payload["degraded"] = {
                "stage": self.name,
                "requested": params.optimizer,
                "optimizer": params.optimizer,
                "reason": "search-deadline",
                "deadline_remaining": round(deadline.remaining(), 3),
            }


class SimulateStage:
    name = "simulate"

    def __init__(self, params: SimulateParams) -> None:
        self.params = params

    def run(self, ctx: JobContext) -> None:
        assert ctx.rrg is not None, "Simulate requires a built RRG"
        params = self.params
        if ctx.optimization is None:
            self._evaluate_graph(ctx)
            return
        result = ctx.optimization
        candidates = [point.configuration for point in result.points]
        if params.include_best:
            candidates = [result.best.configuration] + candidates
        throughputs = simulate_configurations(
            candidates,
            cycles=params.cycles,
            warmup=params.warmup,
            seed=params.seed,
            mode=params.mode,
        )
        simulate: Dict[str, Any] = {
            "throughputs": throughputs,
            "include_best": params.include_best,
        }
        offset = 1 if params.include_best else 0
        point_payloads = ctx.payload["optimize"]["points"]
        for i, (point, throughput) in enumerate(
            zip(result.points, throughputs[offset:])
        ):
            point.throughput = throughput
            point_payloads[i]["throughput"] = throughput
        if params.recompute_bounds:
            # The ablation studies re-derive the bound with the default
            # backend (independently of the optimizer's warm-started one).
            simulate["bounds"] = [
                configuration_throughput_bound(point.configuration)
                for point in result.points
            ]
        ctx.payload["simulate"] = simulate

    def _evaluate_graph(self, ctx: JobContext) -> None:
        from repro.gmg.simulation import simulate_throughput

        params = self.params
        evaluate: Dict[str, Any] = {
            "simulated": simulate_throughput(
                ctx.rrg, cycles=params.cycles, seed=params.seed
            )
        }
        if params.exact:
            from repro.gmg.markov import exact_throughput

            evaluate["exact"] = exact_throughput(ctx.rrg).throughput
        if params.lp_bound:
            from repro.gmg.lp_bound import throughput_upper_bound

            evaluate["lp_bound"] = throughput_upper_bound(ctx.rrg)
        ctx.payload["simulate"] = evaluate


def stages_for(job: Job) -> List[Stage]:
    """The stage sequence a job declares (Report runs in the parent)."""
    stages: List[Stage] = [BuildStage()]
    if job.optimize is not None:
        stages.append(OptimizeStage(job.optimize))
    if job.simulate is not None:
        stages.append(SimulateStage(job.simulate))
    return stages


def execute_job(
    job: Job,
    rrg: Optional[RRG] = None,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """Run a job's stages and return its payload (worker-side entry point).

    Each stage runs under ``retry`` (default :data:`STAGE_RETRY`): injected
    ``stage`` faults and :class:`TransientError` failures are retried with
    jittered backoff; the stage re-runs from a clean slate (stages fully
    overwrite their payload blocks, so a retried stage cannot leave partial
    state behind).  Deterministic errors propagate immediately.
    """
    policy = retry if retry is not None else STAGE_RETRY
    ctx = JobContext(job=job, rrg=rrg)
    for stage in stages_for(job):
        def run_stage(attempt: int, stage: Stage = stage) -> None:
            _faults.check("stage", f"{job.job_id}:{stage.name}", attempt)
            stage.run(ctx)

        with _trace.span(f"stage:{stage.name}", job_id=job.job_id) as stage_span:
            policy.call(
                run_stage,
                retry_on=(InjectedFault, TransientError),
                salt=f"stage:{job.job_id}:{stage.name}",
            )
            if stage_span:
                _annotate_stage_span(stage_span, stage.name, ctx.payload)
    ctx.payload["job_id"] = job.job_id
    return ctx.payload


def _annotate_stage_span(stage_span, stage_name: str, payload: Dict[str, Any]) -> None:
    """Copy solver/search effort counters onto a stage span.

    Pure observability: annotations are read from the payload, never
    written back, so traced and untraced runs stay bit-identical.
    """
    if stage_name == "optimize":
        optimize = payload.get("optimize")
        if isinstance(optimize, dict):
            stage_span.annotate(
                lp_iterations=optimize.get("total_lp_iterations"),
                milp_solves=optimize.get("milp_solves"),
            )
            search = optimize.get("search")
            if isinstance(search, dict) and "evaluations" in search:
                stage_span.annotate(search_evaluations=search.get("evaluations"))
    elif stage_name == "simulate":
        from repro.sim.kernels import kernel_backend

        stage_span.annotate(kernel_backend=kernel_backend())


def job_store_key(job: Job, rrg: RRG) -> str:
    """Content-addressed store key: RRG fingerprint + stage parameters.

    The fingerprint covers structure, delays, early flags and branch
    probabilities; the initial token/buffer vectors (excluded from the
    simulator fingerprint because configurations override them) are added
    here because they do shape the optimization.  ``meta`` is excluded — it
    never influences the computed payload.
    """
    return content_key({
        "version": PAYLOAD_VERSION,
        "fingerprint": rrg_fingerprint(rrg),
        "tokens": rrg.token_vector(),
        "buffers": rrg.buffer_vector(),
        "optimize": None if job.optimize is None else vars(job.optimize),
        "simulate": None if job.simulate is None else vars(job.simulate),
    })


# -- payload <-> dataclass round-trips --------------------------------------

def _configuration_payload(configuration: RRConfiguration) -> Dict[str, Any]:
    return {
        "lags": {str(k): int(v) for k, v in configuration.retiming.lags.items()},
        "buffers": {
            str(index): int(count)
            for index, count in configuration.buffer_vector().items()
        },
        "label": configuration.label,
    }


def configuration_from_payload(
    data: Mapping[str, Any], rrg: RRG
) -> RRConfiguration:
    """Rebind a serialized configuration onto a (structurally equal) RRG."""
    return RRConfiguration(
        rrg,
        RetimingVector({str(k): int(v) for k, v in data["lags"].items()}),
        {int(k): int(v) for k, v in data["buffers"].items()},
        label=str(data.get("label", "")),
    )


def _point_payload(point: ParetoPoint) -> Dict[str, Any]:
    return {
        "cycle_time": point.cycle_time,
        "throughput_bound": point.throughput_bound,
        "throughput": point.throughput,
        "bubbles": point.configuration.total_bubbles,
        "configuration": _configuration_payload(point.configuration),
    }


def point_from_payload(data: Mapping[str, Any], rrg: RRG) -> ParetoPoint:
    return ParetoPoint(
        configuration=configuration_from_payload(data["configuration"], rrg),
        cycle_time=float(data["cycle_time"]),
        throughput_bound=float(data["throughput_bound"]),
        throughput=(
            None if data.get("throughput") is None else float(data["throughput"])
        ),
    )


def optimization_from_payload(
    payload: Mapping[str, Any], rrg: RRG
) -> OptimizationResult:
    """Rebuild a live OptimizationResult from a job payload."""
    data = payload["optimize"]
    points = [point_from_payload(entry, rrg) for entry in data["points"]]
    best_index = int(data.get("best_index", -1))
    if 0 <= best_index < len(points):
        best = points[best_index]
    else:
        best = point_from_payload(data["best"], rrg)
    k_best = [points[i] for i in data.get("k_best_indices", []) if i < len(points)]
    return OptimizationResult(
        best=best,
        points=points,
        k_best=k_best or sorted(
            points, key=lambda p: p.effective_cycle_time_bound
        )[:1],
        iterations=int(data.get("iterations", 0)),
        milp_solves=int(data.get("milp_solves", 0)),
        total_lp_iterations=int(data.get("total_lp_iterations", 0)),
        total_nodes=int(data.get("total_nodes", 0)),
    )


def improvement_percent(baseline_xi: float, best_xi: float) -> float:
    """I% = (xi_baseline - xi_best) / xi_baseline * 100 (nan when undefined)."""
    if baseline_xi <= 0:
        return math.nan
    return (baseline_xi - best_xi) / baseline_xi * 100.0


def best_simulated_xi(
    payload: Mapping[str, Any], floor: Optional[float] = None
) -> float:
    """Best simulated effective cycle time among a payload's Pareto points.

    ``floor`` (typically the late-evaluation baseline, whose configuration is
    always available) caps the result from above.
    """
    best = math.inf if floor is None else floor
    points = payload["optimize"]["points"]
    offset = 1 if payload_include_best(payload) else 0
    throughputs = payload["simulate"]["throughputs"]
    for point, throughput in zip(points, throughputs[offset:]):
        if throughput > 0:
            best = min(best, point["cycle_time"] / throughput)
    return best


def payload_include_best(payload: Mapping[str, Any]) -> bool:
    """Whether the simulate stage prepended the LP-preferred configuration."""
    return bool(payload.get("simulate", {}).get("include_best", False))
