"""Persistent, content-addressed artifact store for pipeline results.

The in-memory caches of :mod:`repro.sim.cache` die with the process; this
store extends them with an on-disk layer so that

* re-running a sweep only recomputes jobs whose inputs changed (the key is a
  digest of the built RRG's fingerprint — structure, delays, probabilities,
  initial tokens/buffers — plus every stage parameter), and
* shards share results across processes: every worker reads and writes the
  same directory, with atomic ``os.replace`` publication so concurrent
  writers of the same key are safe (last writer wins with identical bytes —
  results are deterministic functions of the key).

Entries are JSON files named ``<sha256>.json`` in two-level fan-out
directories (``ab/cd/abcd....json``).  A corrupted or truncated entry is
treated as a miss and deleted; the job recomputes and rewrites it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.obs import trace as _trace
from repro.resilience.faults import InjectedFault
from repro.resilience import faults as _faults
from repro.resilience.retry import STORE_RETRY, RetryPolicy

#: Bump when the payload layout changes; old entries become misses.
SCHEMA_VERSION = 1


def _canonical(value: Any) -> Any:
    """Convert tuples/mappings into canonical JSON-serialisable structures."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly and is stable across platforms.
        return float(value)
    return repr(value)


def content_key(payload: Any) -> str:
    """SHA-256 digest of the canonical JSON encoding of ``payload``."""
    text = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ArtifactStore:
    """A directory of content-addressed JSON artifacts.

    The store never trusts its contents: reads validate JSON structure and
    the embedded schema version, and any failure degrades to a cache miss
    (the offending file is removed so it cannot fail again).

    I/O resilience: reads and writes run under ``retry`` (jittered backoff),
    with the ``store_read``/``store_write`` fault-injection sites inside the
    retried section — an injected (or marked-transient) failure is retried
    deterministically, and *exhausted* retries degrade rather than crash: a
    read becomes a miss (the job recomputes), a write is dropped (the result
    stays correct in memory, only unpublished — counted in ``dropped_writes``).
    """

    def __init__(
        self, root: os.PathLike, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retry = retry if retry is not None else STORE_RETRY
        self.hits = 0
        self.misses = 0
        self.dropped_writes = 0
        self.retried_io = 0

    # -- key layout ---------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / key[2:4] / f"{key}.json"

    # -- generic artifacts --------------------------------------------------

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        del attempt, exc
        self.retried_io += 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None on miss/corruption."""
        # Inside a trace the persistent tier gets its own span (hit/miss
        # annotated); span() is a falsy no-op without an active trace, so
        # untraced reads pay one contextvar lookup and nothing else.
        with _trace.span("store-get", key=key) as tier_span:
            payload = self._read(key)
            if tier_span:
                tier_span.annotate(tier="l3", hit=payload is not None)
            return payload

    def _read(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)

        def read(attempt: int) -> Dict[str, Any]:
            _faults.check("store_read", key, attempt)
            with open(path, "r", encoding="utf-8") as handle:
                wrapper = json.load(handle)
            if (
                not isinstance(wrapper, dict)
                or wrapper.get("schema") != SCHEMA_VERSION
                or "payload" not in wrapper
            ):
                raise ValueError("artifact schema mismatch")
            return wrapper

        try:
            wrapper = self.retry.call(
                read,
                retry_on=(InjectedFault,),
                salt=f"get:{key}",
                on_retry=self._count_retry,
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except InjectedFault:
            # Retries exhausted: a persistent-tier outage is a miss, never a
            # crash — the caller recomputes.
            self.misses += 1
            return None
        except (OSError, ValueError):
            # Corrupted, truncated or stale-schema entry: recover by
            # recomputing, never by crashing.
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return wrapper["payload"]

    def put(self, key: str, payload: Mapping[str, Any]) -> Optional[Path]:
        """Atomically publish ``payload`` under ``key``.

        Returns the published path, or None when a (injected/transient)
        write failure survived every retry — the payload is then simply not
        persisted; callers already hold it in memory and stay correct.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        wrapper = {"schema": SCHEMA_VERSION, "key": key, "payload": payload}
        text = json.dumps(wrapper, sort_keys=True)

        def write(attempt: int) -> Path:
            _faults.check("store_write", key, attempt)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            return path

        try:
            return self.retry.call(
                write,
                retry_on=(InjectedFault,),
                salt=f"put:{key}",
                on_retry=self._count_retry,
            )
        except InjectedFault:
            self.dropped_writes += 1
            return None

    # -- throughput layer ---------------------------------------------------
    #
    # Fine-grained persistence for the simulation throughput cache: one tiny
    # entry per (fingerprint, vectors, cycles, warmup, seed) key, shared by
    # every process pointed at the same directory.  Installed into
    # repro.sim.cache via attach_persistent_throughputs().

    def throughput_digest(self, key: Tuple) -> str:
        return content_key({"kind": "throughput", "key": key})

    def get_throughput(self, key: Tuple) -> Optional[float]:
        payload = self.get(self.throughput_digest(key))
        if payload is None:
            return None
        value = payload.get("throughput")
        if not isinstance(value, (int, float)):
            return None
        return float(value)

    def put_throughput(self, key: Tuple, value: float) -> None:
        self.put(self.throughput_digest(key), {"throughput": float(value)})

    # -- maintenance --------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        yield from self.root.glob("??/??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
            "dropped_writes": self.dropped_writes,
            "retried_io": self.retried_io,
        }


def attach_persistent_throughputs(store: Optional[ArtifactStore]) -> None:
    """Back the in-memory throughput cache with ``store`` (None detaches).

    After attaching, :func:`repro.sim.cache.cached_throughput` falls through
    to the store on memory misses and :func:`repro.sim.cache.store_throughput`
    writes through, so independent processes pointed at the same directory
    share simulated throughputs.
    """
    from repro.sim import cache as _cache

    if store is None:
        _cache.set_persistent_backend(None)
    else:
        _cache.set_persistent_backend(
            _PersistentThroughputBackend(store)
        )


class _PersistentThroughputBackend:
    """Adapter matching repro.sim.cache's persistent-backend protocol."""

    def __init__(self, store: ArtifactStore) -> None:
        self.store = store

    def get(self, key: Tuple) -> Optional[float]:
        return self.store.get_throughput(key)

    def put(self, key: Tuple, value: float) -> None:
        self.store.put_throughput(key, value)
