"""Structured progress events emitted by the pipeline runner.

Experiments and the CLI observe a sweep through a stream of
:class:`PipelineEvent` values instead of ad-hoc ``print`` calls: library
callers can aggregate them silently, the CLI renders them with
:func:`repro.experiments.reporting.render_event`, and tests assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional

#: Event kinds, in the order a run emits them.
PIPELINE_START = "pipeline-start"
JOB_START = "job-start"
JOB_DONE = "job-done"
JOB_FAILED = "job-failed"
FALLBACK = "fallback"
WORKER_RETRY = "worker-retry"
DEGRADED = "degraded"
ABORTED = "aborted"
PIPELINE_DONE = "pipeline-done"


@dataclass(frozen=True)
class PipelineEvent:
    """One structured progress record.

    Attributes:
        kind: One of the module-level kind constants.
        job_id: Identifier of the job concerned (None for run-level events).
        index: 1-based position of the job in the submission order.
        total: Total number of jobs in the run.
        shards: Worker count of the run (1 = serial).
        cached: True when the job result came from the artifact store.
        seconds: Wall-clock duration (job- and pipeline-done events).
        message: Human-readable detail (failures, fallback reasons).
        trace_id: Observability correlation id of the surrounding trace
            (None when tracing is off; never part of cache keys).
        span_id: Span active when the event was emitted.
    """

    kind: str
    job_id: Optional[str] = None
    index: Optional[int] = None
    total: Optional[int] = None
    shards: Optional[int] = None
    cached: bool = False
    seconds: Optional[float] = None
    message: str = ""
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def to_dict(self) -> dict:
        """Compact dictionary form (wire format): defaulted fields omitted.

        ``PipelineEvent(**event.to_dict())`` round-trips, so remote consumers
        can rebuild the dataclass from the JSON rendering.
        """
        out: dict = {"kind": self.kind}
        for name in ("job_id", "index", "total", "shards", "seconds",
                     "trace_id", "span_id"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.cached:
            out["cached"] = True
        if self.message:
            out["message"] = self.message
        return out


EventCallback = Callable[[PipelineEvent], None]


@dataclass
class EventLog:
    """A callback that records every event (the default silent observer)."""

    events: List[PipelineEvent] = field(default_factory=list)

    def __call__(self, event: PipelineEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[PipelineEvent]:
        return [event for event in self.events if event.kind == kind]

    @property
    def cached_jobs(self) -> int:
        return sum(1 for event in self.of_kind(JOB_DONE) if event.cached)

    def summary(self) -> Mapping[str, int]:
        """Event counts by kind (diagnostics and tests)."""
        counts: dict = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
