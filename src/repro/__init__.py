"""repro: retiming and recycling for elastic systems with early evaluation.

A from-scratch Python reproduction of Bufistov, Cortadella, Galceran-Oms,
Julvez and Kishinevsky, "Retiming and recycling for elastic systems with
early evaluation", DAC 2009.

The package is organised as:

* :mod:`repro.core` — the RRG model, retiming-and-recycling configurations,
  the MILP formulations (MIN_CYC / MAX_THR) and the MIN_EFF_CYC optimiser;
* :mod:`repro.gmg` — timed guarded marked graphs: construction from an RRG
  (Procedures 1 and 2), simulation, exact Markov analysis and the LP
  throughput bound;
* :mod:`repro.analysis` — cycle time, effective cycle time and Pareto
  dominance;
* :mod:`repro.lp` — the LP/MILP modelling layer and solvers;
* :mod:`repro.retiming` — classical Leiserson-Saxe retiming baselines;
* :mod:`repro.elastic` — the structural elastic-circuit substrate (SELF
  controllers, cycle-accurate simulation, Verilog emission);
* :mod:`repro.search` — the heuristic optimization subsystem for large
  RRGs: local-search state/moves, greedy descent and simulated annealing,
  and the anytime portfolio racer (with the exact MILP as a member on
  small instances);
* :mod:`repro.workloads` — example graphs, the random benchmark generator
  and the scenario registry;
* :mod:`repro.pipeline` — the declarative experiment pipeline: Build /
  Optimize / Simulate / Report stages, the sharded runner, the persistent
  artifact store and structured progress events;
* :mod:`repro.experiments` — drivers regenerating the paper's tables and
  figures as thin pipeline declarations, plus the shared run presets;
* :mod:`repro.service` — the async optimization-as-a-service layer: an
  HTTP server with request coalescing, batching and tiered caching over
  the pipeline, plus sync/async clients;
* :mod:`repro.cli` — the ``python -m repro`` command line (``run``,
  ``serve``, ``submit``, ``list-scenarios``, ``report``).

Quickstart::

    from repro import RRG, min_effective_cycle_time, simulate_throughput

    rrg = RRG("loop")
    ...  # add nodes and channels
    result = min_effective_cycle_time(rrg)
    print(result.best.effective_cycle_time_bound)
    print(simulate_throughput(result.best.configuration))
"""

from repro.core.rrg import RRG, Edge, Node, RRGError
from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.milp import MilpSettings, MilpOutcome, max_throughput, min_cycle_time
from repro.core.optimizer import (
    OptimizationResult,
    ParetoPoint,
    min_effective_cycle_time,
)
from repro.core.throughput import configuration_throughput_bound
from repro.analysis.cycle_time import cycle_time, critical_path
from repro.analysis.performance import PerformancePoint, effective_cycle_time
from repro.gmg.lp_bound import throughput_upper_bound
from repro.gmg.markov import exact_throughput
from repro.gmg.simulation import simulate_throughput
from repro.retiming.min_delay import min_delay_retiming
from repro.retiming.late_evaluation import late_evaluation_baseline
from repro.search import SearchResult, search_minimize

__version__ = "1.0.0"

__all__ = [
    "RRG",
    "Edge",
    "Node",
    "RRGError",
    "RRConfiguration",
    "RetimingVector",
    "MilpSettings",
    "MilpOutcome",
    "min_cycle_time",
    "max_throughput",
    "OptimizationResult",
    "ParetoPoint",
    "min_effective_cycle_time",
    "configuration_throughput_bound",
    "cycle_time",
    "critical_path",
    "PerformancePoint",
    "effective_cycle_time",
    "throughput_upper_bound",
    "exact_throughput",
    "simulate_throughput",
    "min_delay_retiming",
    "late_evaluation_baseline",
    "SearchResult",
    "search_minimize",
    "__version__",
]
