"""Setup shim.

Kept deliberately minimal so that ``pip install -e .`` works in offline
environments whose setuptools lacks the ``wheel`` package required by
PEP 660 editable installs.  The one piece of real metadata here is the
``numba`` extra: the simulation kernels (``repro.sim.kernels``) run on a
pure-python fallback everywhere, and JIT-compile the inner loop when numba
is importable — ``pip install -e .[numba]`` opts in.
"""

from setuptools import setup

setup(
    extras_require={
        "numba": ["numba>=0.57"],
    },
)
