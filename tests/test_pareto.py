"""Tests for dominance and Pareto-front extraction (Definition 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import dominates, pareto_filter, pareto_front
from repro.analysis.performance import (
    PerformancePoint,
    effective_cycle_time,
    evaluate_configuration,
)
from repro.core.configuration import RRConfiguration


class TestDominance:
    def test_strictly_better_throughput_same_cycle_time(self):
        assert dominates(10.0, 0.9, 10.0, 0.8)

    def test_equal_throughput_never_dominates(self):
        assert not dominates(5.0, 0.8, 10.0, 0.8)

    def test_worse_cycle_time_never_dominates(self):
        assert not dominates(11.0, 0.9, 10.0, 0.8)

    def test_dominance_is_irreflexive(self):
        assert not dominates(10.0, 0.8, 10.0, 0.8)


class TestParetoFront:
    def test_simple_front(self):
        points = [(1.0, 0.4), (2.0, 0.8), (2.0, 0.5), (3.0, 0.9), (4.0, 0.2)]
        front = pareto_front(points)
        assert front == [0, 1, 3]

    def test_front_is_sorted_by_cycle_time(self):
        points = [(3.0, 0.9), (1.0, 0.4), (2.0, 0.8)]
        front = pareto_front(points)
        assert [points[i][0] for i in front] == sorted(points[i][0] for i in front)

    def test_filter_matches_front(self):
        labels = ["a", "b", "c"]
        points = [(1.0, 0.5), (2.0, 0.4), (2.0, 0.9)]
        assert pareto_filter(labels, points) == ["a", "c"]

    def test_filter_length_mismatch(self):
        with pytest.raises(ValueError):
            pareto_filter(["a"], [(1.0, 0.5), (2.0, 0.4)])

    @given(
        points=st.lists(
            st.tuples(st.floats(1, 100), st.floats(0.01, 1.0)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_mutually_non_dominated(self, points):
        front = pareto_front(points)
        assert front  # at least one point always survives
        for i in front:
            for j in front:
                if i != j:
                    assert not dominates(*points[j], *points[i])

    @given(
        points=st.lists(
            st.tuples(st.floats(1, 100), st.floats(0.01, 1.0)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_dropped_point_is_dominated(self, points):
        front = set(pareto_front(points))
        for index, point in enumerate(points):
            if index in front:
                continue
            assert any(dominates(*points[i], *point) for i in range(len(points)))


class TestPerformancePoint:
    def test_effective_cycle_time_helper(self):
        assert effective_cycle_time(10.0, 0.5) == pytest.approx(20.0)
        assert effective_cycle_time(10.0, 0.0) == float("inf")

    def test_point_properties(self):
        point = PerformancePoint(
            label="p", cycle_time=8.0, throughput_bound=0.8, throughput=0.72
        )
        assert point.effective_cycle_time_bound == pytest.approx(10.0)
        assert point.effective_cycle_time == pytest.approx(8.0 / 0.72)
        assert point.bound_error_percent == pytest.approx((0.08 / 0.72) * 100)

    def test_point_without_measurements(self):
        point = PerformancePoint(label="p", cycle_time=8.0)
        assert point.effective_cycle_time == float("inf")
        assert point.effective_cycle_time_bound == float("inf")

    def test_evaluate_configuration(self, figure1b):
        config = RRConfiguration.identity(figure1b)
        point = evaluate_configuration(
            config,
            throughput_bound=lambda c: 0.5,
            throughput=lambda c: 0.49,
            label="fig1b",
        )
        assert point.cycle_time == pytest.approx(1.0)
        assert point.total_bubbles == 2
        assert point.effective_cycle_time_bound == pytest.approx(2.0)
