"""Tests for the experiment drivers (kept small so the suite stays fast)."""

import math

import pytest

from repro.core.milp import MilpSettings
from repro.experiments.ablations import (
    average_error,
    early_evaluation_placement_study,
    lp_error_study,
)
from repro.experiments.motivational import run_motivational
from repro.experiments.reporting import format_table
from repro.experiments.table1 import run_table1, table1_as_rows
from repro.experiments.table2 import (
    average_improvement,
    evaluate_benchmark,
    run_table2,
    table2_as_rows,
)
from repro.workloads.examples import figure1a_rrg, unbalanced_fork_join

FAST = MilpSettings(time_limit=30)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.23456), ("long-name", 2)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "1.235" in text
        assert text.endswith("\n")

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestMotivationalExperiment:
    def test_rows_match_paper_numbers(self):
        rows = run_motivational(alphas=(0.9,), cycles=8000, seed=1)
        by_figure = {row.figure: row for row in rows}
        assert by_figure["1a"].cycle_time == pytest.approx(3.0)
        assert by_figure["1b"].exact == pytest.approx(0.719, abs=0.002)
        assert by_figure["2"].exact == pytest.approx(1 / (3 - 2 * 0.9), abs=1e-4)
        # Simulation agrees with the exact value within noise.
        assert by_figure["2"].simulated == pytest.approx(
            by_figure["2"].exact, abs=0.02
        )
        # Expected values are attached where the paper quotes them.
        assert by_figure["1b"].expected == pytest.approx(0.719)
        assert by_figure["1a"].expected is None

    def test_effective_cycle_time_property(self):
        rows = run_motivational(alphas=(0.5,), cycles=4000, seed=1)
        for row in rows:
            assert row.effective_cycle_time >= row.cycle_time


class TestTable1Experiment:
    def test_table1_on_motivational_graph(self):
        result = run_table1(
            figure1a_rrg(0.9), epsilon=0.05, cycles=4000, settings=FAST
        )
        assert len(result.rows) >= 2
        # Rows are sorted by cycle time and every bound upper-bounds the
        # simulation (within sampling noise).
        taus = [row.cycle_time for row in result.rows]
        assert taus == sorted(taus)
        for row in result.rows:
            assert row.throughput_bound + 0.03 >= row.throughput
        # The best configuration clearly beats min-delay retiming (xi = 3).
        assert result.best_by_simulation.effective_cycle_time < 2.0
        assert not math.isnan(result.delta_percent)
        formatted = table1_as_rows(result)
        assert len(formatted) == len(result.rows)


class TestTable2Experiment:
    def test_single_benchmark_row(self):
        rrg = unbalanced_fork_join(alpha=0.85, long_branch_delay=6.0)
        row = evaluate_benchmark(rrg, epsilon=0.05, cycles=3000, settings=FAST)
        assert row.xi_late > 0
        assert row.xi_sim_min <= row.xi_late + 1e-9
        assert row.improvement_percent >= 0.0

    def test_tiny_suite_run(self):
        rows = run_table2(
            scale=0.15, names=["s27"], epsilon=0.1, cycles=1500, settings=FAST
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.name == "s27"
        assert row.xi_initial >= row.xi_late - 1e-9
        assert not math.isnan(average_improvement(rows))
        assert len(table2_as_rows(rows)[0]) == 9


class TestAblations:
    def test_early_placement_study_shows_the_effect(self):
        result = early_evaluation_placement_study(
            alpha=0.85, long_branch_delay=6.0, epsilon=0.05, cycles=3000,
            settings=FAST,
        )
        assert result.improvement_with_early > result.improvement_without_early
        assert result.improvement_with_early > 5.0
        assert abs(result.improvement_without_early) < 5.0

    def test_lp_error_study_reports_nonnegative_errors(self):
        samples = lp_error_study(
            [figure1a_rrg(0.8)], epsilon=0.1, cycles=3000, settings=FAST
        )
        assert samples
        for sample in samples:
            assert sample.throughput_bound + 0.05 >= sample.throughput
        assert average_error(samples) >= 0.0
