"""Tests for the scenario registry (repro.workloads.registry)."""

import pytest

from repro.sim.cache import rrg_fingerprint
from repro.workloads.iscas_like import TABLE2_SPECS
from repro.workloads.registry import (
    ScenarioError,
    ScenarioSpec,
    build_scenario,
    expand_grid,
    has_scenario,
    iscas_scale_family,
    list_scenarios,
    random_sweep_family,
    scenario,
    scenario_grid,
)


class TestLookup:
    def test_every_table2_circuit_is_registered(self):
        for spec in TABLE2_SPECS:
            assert has_scenario(f"iscas-{spec.name}")

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            scenario("no-such-scenario")

    def test_listing_filters(self):
        all_specs = list_scenarios()
        assert len(all_specs) >= 20
        iscas = list_scenarios(family="iscas")
        assert all(spec.family == "iscas" for spec in iscas)
        motivational = list_scenarios(tag="motivational")
        assert {spec.name for spec in motivational} == {
            "figure1a", "figure1b", "figure2"
        }

    def test_names_are_sorted(self):
        names = [spec.name for spec in list_scenarios()]
        assert names == sorted(names)


class TestBuild:
    def test_build_is_deterministic(self):
        a = build_scenario("iscas", {"name": "s27", "scale": 0.2, "seed": 11})
        b = build_scenario("iscas", {"name": "s27", "scale": 0.2, "seed": 11})
        assert rrg_fingerprint(a) == rrg_fingerprint(b)
        assert a.token_vector() == b.token_vector()

    def test_seed_changes_the_graph(self):
        a = build_scenario("random", {"seed": 1})
        b = build_scenario("random", {"seed": 2})
        assert rrg_fingerprint(a) != rrg_fingerprint(b)

    def test_parameter_override(self):
        rrg = build_scenario("figure1a", {"alpha": 0.9})
        probabilities = [
            e.probability for e in rrg.edges if e.probability is not None
        ]
        assert pytest.approx(max(probabilities)) == 0.9

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ScenarioError, match="no parameters"):
            build_scenario("figure1a", {"alpha": 0.5, "bogus": 1})

    def test_fork_join_late_has_no_early_nodes(self):
        early = build_scenario("fork-join-early", {})
        late = build_scenario("fork-join-late", {})
        assert early.early_nodes and not late.early_nodes
        assert late.num_edges == early.num_edges

    def test_duplicate_registration_rejected(self):
        from repro.workloads import registry

        spec = registry.scenario("figure1a")
        with pytest.raises(ScenarioError, match="duplicate"):
            registry.register_scenario(
                ScenarioSpec(name="figure1a", description="dup",
                             builder=spec.builder)
            )


class TestFamilies:
    def test_expand_grid_is_cartesian(self):
        grid = expand_grid(a=(1, 2), b=("x", "y", "z"))
        assert len(grid) == 6
        assert {"a": 1, "b": "z"} in grid

    def test_scenario_grid_validates_name(self):
        with pytest.raises(ScenarioError):
            scenario_grid("nope", alpha=(0.5,))
        instances = scenario_grid("figure1a", alpha=(0.5, 0.7, 0.9))
        assert len(instances) == 3
        assert all(name == "figure1a" for name, _ in instances)

    def test_random_sweep_enumerates_many_circuits(self):
        instances = random_sweep_family(seeds=range(4))
        assert len(instances) == 16  # 4 sizes x 4 seeds
        built = build_scenario(*instances[0])
        assert built.num_nodes == instances[0][1]["num_nodes"]

    def test_iscas_scale_family_covers_suite(self):
        instances = iscas_scale_family(scales=(0.15, 0.25), names=["s27", "s208"])
        assert len(instances) == 4
        names = {params["name"] for _, params in instances}
        assert names == {"s27", "s208"}


class TestResolveScenario:
    def test_normalizes_defaults_and_overrides(self):
        from repro.workloads.registry import resolve_scenario

        spec, params = resolve_scenario("figure1a", {"alpha": 0.9})
        assert spec.name == "figure1a"
        assert params == {"alpha": 0.9}
        _, defaulted = resolve_scenario("iscas", {"name": "s27"})
        assert defaulted == {"name": "s27", "scale": 1.0, "seed": 2009}

    def test_rejects_unknown_names_and_params(self):
        import pytest

        from repro.workloads.registry import ScenarioError, resolve_scenario

        with pytest.raises(ScenarioError):
            resolve_scenario("no-such-scenario")
        with pytest.raises(ScenarioError):
            resolve_scenario("figure1a", {"beta": 1.0})
