"""Warm-start and solver-equivalence tests for the revised simplex stack.

Covers the acceptance criteria of the revised-simplex PR:

* randomized LPs (bounded / free / equality-heavy) agree between the pure
  revised simplex, the reference dense tableau and scipy/HiGHS;
* randomized MILPs agree between the pure branch-and-bound and scipy;
* warm-started re-solves after bound tightening return the same status and
  objective as cold solves, in fewer iterations;
* warm-started branch and bound spends measurably fewer total simplex
  iterations than cold-started branch and bound on the same tree;
* the MilpWorkspace bound-mutation path matches the one-shot model builds.

Tests with "scipy" in their name are skipped automatically when scipy is not
installed (see tests/conftest.py).
"""

import numpy as np
import pytest

from repro.core.milp import MilpSettings, MilpWorkspace, max_throughput, min_cycle_time
from repro.lp import Model, SolveStatus
from repro.lp.branch_and_bound import BranchAndBoundSolver
from repro.lp.revised_simplex import PreparedLP, RevisedSimplexSolver
from repro.lp.simplex import SimplexSolver
from repro.workloads.examples import figure1a_rrg, unbalanced_fork_join

_STATUS_NAMES = {
    SolveStatus.OPTIMAL: "optimal",
    SolveStatus.INFEASIBLE: "infeasible",
    SolveStatus.UNBOUNDED: "unbounded",
}


def _random_lp(rng):
    """A small random LP with a mix of bounded, free and fixed variables."""
    n = int(rng.integers(1, 8))
    m_ub = int(rng.integers(0, 6))
    m_eq = int(rng.integers(0, 3))
    c = rng.integers(-5, 6, n).astype(float)
    a_ub = rng.integers(-4, 5, (m_ub, n)).astype(float)
    b_ub = rng.integers(-6, 10, m_ub).astype(float)
    a_eq = rng.integers(-3, 4, (m_eq, n)).astype(float)
    b_eq = rng.integers(-4, 5, m_eq).astype(float)
    lower = np.where(
        rng.random(n) < 0.3, -np.inf, rng.integers(-5, 1, n).astype(float)
    )
    upper = np.where(rng.random(n) < 0.3, np.inf, rng.integers(1, 8, n).astype(float))
    return c, a_ub, b_ub, a_eq, b_eq, lower, upper


def _random_milp_model(rng):
    n = int(rng.integers(2, 6))
    model = Model("rand-milp", sense="min")
    variables = []
    for i in range(n):
        vtype = "integer" if rng.random() < 0.7 else "continuous"
        lb = float(rng.integers(-4, 1))
        ub = float(rng.integers(1, 7))
        variables.append(model.add_var(f"v{i}", lb=lb, ub=ub, vtype=vtype))
    for _ in range(int(rng.integers(1, 5))):
        coeffs = rng.integers(-4, 5, n).astype(float)
        rhs = float(rng.integers(0, 12))
        expr = sum(float(c) * v for c, v in zip(coeffs, variables))
        model.add_constr(expr <= rhs)
    objective = sum(
        float(c) * v for c, v in zip(rng.integers(-5, 6, n).astype(float), variables)
    )
    model.set_objective(objective)
    return model


class TestRandomizedCrossChecks:
    def test_random_lps_agree_with_scipy(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(1234)
        solver = RevisedSimplexSolver()
        for _ in range(120):
            c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(rng)
            result = solver.solve(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
            ref = linprog(
                c,
                A_ub=a_ub if a_ub.size else None,
                b_ub=b_ub if b_ub.size else None,
                A_eq=a_eq if a_eq.size else None,
                b_eq=b_eq if b_eq.size else None,
                bounds=list(zip(lower, upper)),
                method="highs",
            )
            if ref.success:
                assert result.status is SolveStatus.OPTIMAL
                assert result.objective == pytest.approx(ref.fun, abs=1e-6)
            elif ref.status == 2:
                assert result.status is SolveStatus.INFEASIBLE
            elif ref.status == 3:
                assert result.status is SolveStatus.UNBOUNDED

    def test_random_lps_agree_with_reference_tableau(self):
        rng = np.random.default_rng(99)
        revised = RevisedSimplexSolver()
        tableau = SimplexSolver()
        for _ in range(60):
            c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(rng)
            a = revised.solve(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
            b = tableau.solve(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
            assert _STATUS_NAMES.get(a.status) == _STATUS_NAMES.get(b.status)
            if a.status is SolveStatus.OPTIMAL:
                assert a.objective == pytest.approx(b.objective, abs=1e-6)

    def test_random_milps_agree_with_scipy(self):
        rng = np.random.default_rng(4321)
        for _ in range(40):
            model = _random_milp_model(rng)
            pure = model.solve(backend="pure")
            ref = model.solve(backend="scipy")
            assert pure.status == ref.status
            if ref.is_optimal:
                assert pure.objective == pytest.approx(ref.objective, abs=1e-6)


class TestWarmStartEquivalence:
    def test_warm_vs_cold_after_bound_tightening(self):
        rng = np.random.default_rng(7)
        solver = RevisedSimplexSolver()
        compared = 0
        saved_warm = saved_cold = 0
        while compared < 60:
            c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(rng)
            prep = PreparedLP(c, a_ub, b_ub, a_eq, b_eq)
            base = solver.solve_prepared(prep, lower, upper)
            if base.status is not SolveStatus.OPTIMAL:
                continue
            # Tighten one variable's bounds like a branch-and-bound child.
            i = int(rng.integers(0, prep.n))
            lo2, hi2 = lower.copy(), upper.copy()
            if rng.random() < 0.5:
                hi2[i] = min(hi2[i], np.floor(base.x[i]))
            else:
                lo2[i] = max(lo2[i], np.floor(base.x[i]) + 1.0)
            if lo2[i] > hi2[i]:
                continue
            warm = solver.solve_prepared(prep, lo2, hi2, basis=base.basis)
            cold = solver.solve_prepared(prep, lo2, hi2)
            assert warm.status == cold.status
            if warm.status is SolveStatus.OPTIMAL:
                assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
            saved_warm += warm.iterations
            saved_cold += cold.iterations
            compared += 1
        # Warm starts must be dramatically cheaper in aggregate.
        assert saved_warm < saved_cold

    def test_warm_start_reduces_tree_iterations(self):
        """The headline property: same B&B tree, fewer simplex iterations."""
        rrg = figure1a_rrg(0.9)
        model = _max_thr_model(rrg)
        form = model.compile()
        results = {}
        for warm in (True, False):
            solver = BranchAndBoundSolver(warm_start=warm)
            results[warm] = solver.solve(
                form.c,
                form.a_ub,
                form.b_ub,
                form.a_eq,
                form.b_eq,
                form.lower,
                form.upper,
                form.integer_mask,
            )
        assert results[True].status is SolveStatus.OPTIMAL
        assert results[False].status is SolveStatus.OPTIMAL
        # The model carries a 1e-6-per-buffer tie-break penalty and B&B stops
        # within a 1e-6 relative gap, so warm and cold may legally settle on
        # different near-ties; compare at the gap scale, not exactly.
        assert results[True].objective == pytest.approx(
            results[False].objective, abs=1e-5
        )
        # Warm-started nodes re-solve dual-simplex from the parent basis;
        # require a decisive saving, not a marginal one.
        assert results[True].lp_iterations < 0.6 * results[False].lp_iterations

    def test_milp_warm_basis_roundtrip(self):
        """A stale basis from a previous solve must never change the answer."""
        rng = np.random.default_rng(321)
        for _ in range(20):
            model = _random_milp_model(rng)
            first = model.solve(backend="pure")
            again = model.solve(backend="pure", warm_start=first)
            assert first.status == again.status
            if first.is_optimal:
                assert again.objective == pytest.approx(first.objective, abs=1e-9)


def _max_thr_model(rrg):
    from repro.core.milp import _add_structure_variables
    from repro.core.path_constraints import add_path_constraints
    from repro.core.throughput import add_throughput_constraints

    settings = MilpSettings(backend="pure")
    model = Model(f"{rrg.name}-max-thr-test", sense="min")
    lags, buffers = _add_structure_variables(model, rrg, settings)
    x = model.add_var("x", lb=1.0, ub=None)
    add_path_constraints(model, rrg, buffers, tau=float(rrg.max_delay))
    add_throughput_constraints(model, rrg, buffers, x=x)
    model.set_objective(x + 1e-6 * sum(buffers.values(), start=0))
    return model


class TestWorkspaceReuse:
    def test_workspace_matches_one_shot_solves(self):
        rrg = figure1a_rrg(0.9)
        settings = MilpSettings(backend="pure")
        workspace = MilpWorkspace(rrg, settings=settings)
        # Sweep tau downward then x upward, mirroring the Pareto walk.
        for tau in (rrg.max_delay, rrg.max_delay + 1.0):
            from_workspace = workspace.max_throughput(tau)
            one_shot = max_throughput(rrg, tau, settings=settings)
            assert from_workspace.throughput_bound == pytest.approx(
                one_shot.throughput_bound, abs=1e-6
            )
        for x in (1.0, 1.2):
            from_workspace = workspace.min_cycle_time(x)
            one_shot = min_cycle_time(rrg, x, settings=settings)
            assert from_workspace.cycle_time == pytest.approx(
                one_shot.cycle_time, abs=1e-6
            )

    def test_workspace_reuses_compiled_form(self):
        rrg = figure1a_rrg(0.5)
        workspace = MilpWorkspace(rrg, settings=MilpSettings(backend="pure"))
        workspace.max_throughput(rrg.max_delay)
        state = workspace._max_thr
        form_before = state.model.compile()
        workspace.max_throughput(rrg.max_delay + 0.5)
        assert state.model.compile() is form_before

    def test_workspace_scipy_and_pure_agree(self):
        rrg = unbalanced_fork_join(alpha=0.8, long_branch_delay=6.0)
        outcomes = {}
        for backend in ("scipy", "pure"):
            workspace = MilpWorkspace(rrg, settings=MilpSettings(backend=backend))
            a = workspace.min_cycle_time(1.0)
            b = workspace.max_throughput(rrg.max_delay)
            outcomes[backend] = (a.cycle_time, b.throughput_bound)
        assert outcomes["pure"][0] == pytest.approx(outcomes["scipy"][0], abs=1e-6)
        assert outcomes["pure"][1] == pytest.approx(outcomes["scipy"][1], abs=1e-6)


class TestModelMutation:
    def test_set_var_bounds_patches_cached_form(self):
        model = Model("m", sense="min")
        x = model.add_var("x", lb=0.0, ub=10.0)
        model.add_constr(x >= 2.0)
        model.set_objective(x)
        form = model.compile()
        assert model.solve(backend="pure").objective == pytest.approx(2.0)
        model.set_var_bounds(x, 5.0, 10.0)
        assert model.compile() is form  # no rebuild
        assert form.lower[0] == 5.0
        assert model.solve(backend="pure").objective == pytest.approx(5.0)

    def test_set_constr_rhs_patches_cached_form(self):
        model = Model("m", sense="min")
        x = model.add_var("x", lb=0.0, ub=10.0)
        model.add_constr(x >= 2.0, name="floor")
        model.set_objective(x)
        form = model.compile()
        model.set_constr_rhs("floor", 7.0)
        assert model.compile() is form
        assert model.solve(backend="pure").objective == pytest.approx(7.0)
        # A fresh compile after structural change also reflects the new RHS.
        model.add_var("y", lb=0.0)
        assert model.compile() is not form
        assert model.solve(backend="pure").objective == pytest.approx(7.0)

    def test_structural_change_invalidates_cache(self):
        model = Model("m", sense="min")
        x = model.add_var("x", lb=0.0)
        model.set_objective(x)
        form = model.compile()
        model.add_constr(x >= 3.0)
        assert model.compile() is not form
        assert model.solve(backend="pure").objective == pytest.approx(3.0)
