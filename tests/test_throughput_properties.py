"""Property-based tests on the throughput machinery.

These tests check structural invariants the paper relies on:

* the LP bound is an upper bound on the simulated throughput,
* the LP bound equals the exact throughput for marked graphs (no early
  evaluation),
* the LP bound is invariant under retiming for a fixed buffer assignment,
* inserting bubbles never increases the throughput bound and never decreases
  the cycle time's feasibility.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cycle_time import cycle_time
from repro.core.configuration import RRConfiguration, RetimingVector
from repro.core.rrg import RRG
from repro.core.throughput import configuration_throughput_bound
from repro.core.transformations import insert_bubble
from repro.gmg.lp_bound import throughput_upper_bound
from repro.gmg.markov import exact_throughput
from repro.gmg.simulation import simulate_throughput
from repro.workloads.examples import figure1a_rrg
from repro.workloads.random_rrg import random_rrg


def small_ring(tokens_per_edge):
    """A three-node ring whose edges carry the given token counts."""
    rrg = RRG("ring3")
    rrg.add_node("a", delay=1.0)
    rrg.add_node("b", delay=1.0)
    rrg.add_node("c", delay=1.0)
    names = ["a", "b", "c"]
    for i, tokens in enumerate(tokens_per_edge):
        rrg.add_edge(names[i], names[(i + 1) % 3], tokens=tokens, buffers=max(tokens, 1))
    rrg.validate()
    return rrg


class TestMarkedGraphExactness:
    @given(
        tokens=st.tuples(
            st.integers(0, 2), st.integers(0, 2), st.integers(1, 2)
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_lp_bound_equals_exact_throughput_without_early_evaluation(self, tokens):
        rrg = small_ring(tokens)
        bound = throughput_upper_bound(rrg)
        exact = exact_throughput(rrg).throughput
        assert bound == pytest.approx(exact, abs=1e-6)

    @given(
        tokens=st.tuples(
            st.integers(0, 2), st.integers(0, 2), st.integers(1, 2)
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_min_cycle_ratio_formula(self, tokens):
        """For a single ring the throughput is (total tokens) / (total buffers)."""
        rrg = small_ring(tokens)
        total_tokens = sum(e.tokens for e in rrg.edges)
        total_buffers = sum(e.buffers for e in rrg.edges)
        expected = min(1.0, total_tokens / total_buffers)
        assert throughput_upper_bound(rrg) == pytest.approx(expected, abs=1e-6)


class TestBoundProperties:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_bound_dominates_simulation_on_random_graphs(self, seed):
        rrg = random_rrg(8, 18, seed=seed)
        bound = throughput_upper_bound(rrg)
        simulated = simulate_throughput(rrg, cycles=3000, seed=seed)
        assert bound + 0.03 >= simulated

    @given(
        lag_f1=st.integers(-2, 0),
        lag_f2=st.integers(-2, 0),
    )
    @settings(max_examples=15, deadline=None)
    def test_bound_is_retiming_invariant(self, lag_f1, lag_f2):
        base = figure1a_rrg(0.7)
        buffers = {0: 1, 1: 1, 2: 1, 3: 0, 4: 1, 5: 0}
        vector = RetimingVector({"m": lag_f1, "F1": lag_f1, "F2": lag_f2})
        shifted = vector.shifted_tokens(base)
        # Only keep retimings that the buffer assignment can host.
        if any(buffers[i] < shifted[i] for i in buffers):
            return
        retimed = RRConfiguration(base, vector, buffers=buffers)
        reference = throughput_upper_bound(base, buffers=buffers)
        assert configuration_throughput_bound(retimed) == pytest.approx(
            reference, abs=1e-6
        )

    @given(edge_index=st.integers(0, 5), count=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_bubbles_never_raise_the_bound(self, edge_index, count):
        base = figure1a_rrg(0.6)
        config = RRConfiguration.identity(base)
        bubbled = insert_bubble(config, edge_index, count)
        assert (
            configuration_throughput_bound(bubbled)
            <= configuration_throughput_bound(config) + 1e-9
        )

    @given(edge_index=st.integers(0, 5))
    @settings(max_examples=12, deadline=None)
    def test_bubbles_never_increase_cycle_time(self, edge_index):
        base = figure1a_rrg(0.6)
        config = RRConfiguration.identity(base)
        bubbled = insert_bubble(config, edge_index, 1)
        assert bubbled.cycle_time() <= config.cycle_time() + 1e-9

    def test_cycle_time_with_override_matches_configuration(self):
        base = figure1a_rrg(0.6)
        config = RRConfiguration.identity(base)
        assert cycle_time(base, config.buffer_vector()) == pytest.approx(
            config.cycle_time()
        )
