"""Cross-checks of the vectorized engine against the reference simulators.

The pure-Python :class:`TGMGSimulator` and :class:`ElasticSimulator` are the
semantics oracle; the compiled engine must match them *firing for firing*
under a shared seed (same per-cycle fired sets, same markings, same firing
counts) and must agree with the exact Markov-chain throughput on the small
analytic examples.
"""

import numpy as np
import pytest

from repro.core.configuration import RRConfiguration, RetimingVector
from repro.elastic.simulator import ElasticSimulator, simulate_elastic_throughput
from repro.gmg.build import build_tgmg
from repro.gmg.markov import exact_throughput
from repro.gmg.simulation import TGMGSimulator, simulate_throughput
from repro.sim import (
    VectorSimulator,
    cache_stats,
    clear_caches,
    compile_tgmg,
    compiled_template_for,
    simulate_configurations,
    simulate_replicas,
)
from repro.workloads.examples import (
    figure1b_rrg,
    figure2_expected_throughput,
    figure2_rrg,
    ring_rrg,
)
from repro.workloads.random_rrg import random_rrg


def _tgmg_reference_pair(rrg, seed):
    tgmg = build_tgmg(rrg)
    reference = TGMGSimulator(tgmg, seed=seed)
    vectorized = VectorSimulator(compile_tgmg(tgmg), seeds=[seed])
    return tgmg, reference, vectorized


class TestTGMGCrossCheck:
    @pytest.mark.parametrize("graph_seed", [0, 3, 11, 42])
    def test_random_rrg_firing_for_firing(self, graph_seed):
        rrg = random_rrg(10, 20, seed=graph_seed)
        tgmg, reference, vectorized = _tgmg_reference_pair(rrg, seed=graph_seed + 100)
        for cycle in range(300):
            fired_ref = set(reference.step())
            mask = vectorized.step(record=True)
            fired_vec = set(vectorized.fired_names(mask))
            assert fired_ref == fired_vec, f"cycle {cycle}"
            markings_ref = [reference.marking[i] for i in range(tgmg.num_edges)]
            assert (np.asarray(markings_ref) == vectorized.marking[0]).all()
        node_names = [n.name for n in tgmg.nodes]
        for position, name in enumerate(node_names):
            assert reference.firings[name] == vectorized.firings[0][position]

    @pytest.mark.parametrize("alpha", [0.5, 0.9])
    def test_figures_firing_for_firing(self, alpha):
        for rrg in (figure1b_rrg(alpha), figure2_rrg(alpha)):
            _, reference, vectorized = _tgmg_reference_pair(rrg, seed=7)
            for _ in range(400):
                fired_ref = set(reference.step())
                mask = vectorized.step(record=True)
                assert fired_ref == set(vectorized.fired_names(mask))

    def test_wrapper_bit_identical_to_reference(self):
        for rrg in (figure1b_rrg(0.5), figure2_rrg(0.8), ring_rrg(5, 2)):
            vector = simulate_throughput(rrg, cycles=3000, seed=13, use_cache=False)
            reference = simulate_throughput(rrg, cycles=3000, seed=13, engine="reference")
            assert vector == reference  # exact float equality


class TestElasticCrossCheck:
    @pytest.mark.parametrize("graph_seed", [1, 5])
    def test_random_rrg_matches_structural_simulator(self, graph_seed):
        rrg = random_rrg(10, 20, seed=graph_seed)
        reference = ElasticSimulator(rrg, seed=graph_seed)
        template = compiled_template_for(rrg, mode="elastic")
        model = template.instantiate(rrg.token_vector(), rrg.buffer_vector())
        vectorized = VectorSimulator(model, seeds=[graph_seed])
        for cycle in range(300):
            count_ref = reference.step()
            mask = vectorized.step(record=True)
            assert count_ref == int(mask[0].sum()), f"cycle {cycle}"
            markings_ref = [
                reference.circuit.edges[i].channel.marking
                for i in range(rrg.num_edges)
            ]
            assert (np.asarray(markings_ref) == vectorized.marking[0]).all()
        for position, node in enumerate(rrg.nodes):
            assert (
                reference.circuit.controllers[node.name].firings
                == vectorized.firings[0][position]
            )

    def test_wrapper_bit_identical_to_reference(self):
        for rrg in (figure1b_rrg(0.5), figure2_rrg(0.7)):
            vector = simulate_elastic_throughput(
                rrg, cycles=3000, seed=5, use_cache=False
            )
            reference = simulate_elastic_throughput(
                rrg, cycles=3000, seed=5, engine="reference"
            )
            assert vector == reference


class TestAgainstExactThroughput:
    @pytest.mark.parametrize("alpha", [0.5, 0.8])
    def test_figure2_analytic(self, alpha):
        expected = figure2_expected_throughput(alpha)
        assert exact_throughput(figure2_rrg(alpha)).throughput == pytest.approx(
            expected, abs=1e-6
        )
        value = simulate_throughput(figure2_rrg(alpha), cycles=30000, seed=2)
        assert value == pytest.approx(expected, abs=0.02)

    def test_ring_exact(self):
        ring = ring_rrg(length=5, total_tokens=2)
        value = simulate_throughput(ring, cycles=4000, seed=0, use_cache=False)
        assert value == pytest.approx(2.0 / 5.0, abs=0.01)


class TestBatchAPI:
    def _variant_configurations(self, rrg, count=4):
        base = RRConfiguration.identity(rrg)
        configurations = [base]
        for variant in range(1, count):
            buffers = base.buffer_vector()
            for edge in rrg.edges:
                if edge.index % count == variant:
                    buffers[edge.index] += 1
            configurations.append(
                RRConfiguration(rrg, RetimingVector({}), buffers, label=f"v{variant}")
            )
        return configurations

    @pytest.mark.parametrize("count", [3, 8])
    def test_batch_matches_serial_single_runs(self, count):
        # count=3 exercises the event-driven path, count=8 the wavefront.
        rrg = random_rrg(10, 20, seed=8)
        configurations = self._variant_configurations(rrg, count=count)
        batched = simulate_configurations(
            configurations, cycles=1500, seed=4, use_cache=False
        )
        serial = [
            simulate_throughput(c, cycles=1500, seed=4, use_cache=False)
            for c in configurations
        ]
        assert batched == serial  # exact float equality, lane per lane

    def test_batch_rejects_mixed_structures(self):
        a = RRConfiguration.identity(random_rrg(8, 16, seed=1))
        b = RRConfiguration.identity(random_rrg(8, 16, seed=2))
        with pytest.raises(ValueError):
            simulate_configurations([a, b], cycles=100)

    def test_replicas(self):
        rrg = figure2_rrg(0.8)
        values = simulate_replicas(rrg, replicas=6, cycles=4000, seed=3)
        assert values.shape == (6,)
        assert values.mean() == pytest.approx(
            figure2_expected_throughput(0.8), abs=0.05
        )
        # Replicas are independent draws, not copies of one lane.
        assert len({round(v, 12) for v in values}) > 1

    def test_throughput_cache_hits(self):
        clear_caches()
        rrg = figure1b_rrg(0.6)
        config = RRConfiguration.identity(rrg)
        first = simulate_throughput(config, cycles=1200, seed=9)
        before = cache_stats()["throughput_hits"]
        second = simulate_throughput(config, cycles=1200, seed=9)
        assert second == first
        assert cache_stats()["throughput_hits"] == before + 1
        clear_caches()

    def test_unseeded_runs_stay_independent(self):
        clear_caches()
        rrg = figure1b_rrg(0.6)
        config = RRConfiguration.identity(rrg)
        values = {simulate_throughput(config, cycles=400) for _ in range(4)}
        # Independent random samples: caching them would collapse the set.
        assert len(values) > 1
        assert cache_stats()["throughput_hits"] == 0
        clear_caches()


class TestOptimizerSimulationPhase:
    def test_min_eff_cyc_fills_throughputs(self):
        from repro.core.milp import MilpSettings
        from repro.core.optimizer import min_effective_cycle_time

        rrg = figure2_rrg(0.8)
        result = min_effective_cycle_time(
            rrg,
            k=3,
            epsilon=0.05,
            settings=MilpSettings(backend="pure"),
            simulate_cycles=1500,
            simulate_seed=11,
        )
        assert result.best_simulated is not None
        assert all(point.throughput is not None for point in result.points)
        assert result.best_simulated.effective_cycle_time == min(
            point.effective_cycle_time for point in result.points
        )


class TestMarkovDeterminism:
    def test_repeated_analysis_is_identical(self):
        rrg = figure1b_rrg(0.5)
        first = exact_throughput(rrg)
        second = exact_throughput(rrg)
        assert first.throughput == second.throughput
        assert first.num_states == second.num_states


class TestLruCacheExport:
    def test_stats_counters_are_exported(self):
        from repro.sim.cache import LruCache

        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 2, "size": 2,
                         "maxsize": 2, "hit_ratio": round(1 / 3, 6)}

    def test_simulate_vectors_matches_configurations(self):
        from repro.core.configuration import RRConfiguration
        from repro.sim.batch import simulate_configurations, simulate_vectors
        from repro.workloads.examples import figure2_rrg

        rrg = figure2_rrg(0.7)
        config = RRConfiguration.identity(rrg)
        expected = simulate_configurations(
            [config, config], cycles=400, seeds=[5, 6], use_cache=False
        )
        vectors = [(config.token_vector(), config.buffer_vector())] * 2
        assert simulate_vectors(
            rrg, vectors, cycles=400, seeds=[5, 6], use_cache=False
        ) == expected
