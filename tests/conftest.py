"""Shared fixtures for the test suite."""

import pytest

from repro.core.rrg import RRG


def _scipy_available() -> bool:
    try:
        import scipy.optimize  # noqa: F401
    except Exception:
        return False
    return True


SCIPY_AVAILABLE = _scipy_available()

requires_scipy = pytest.mark.skipif(
    not SCIPY_AVAILABLE, reason="scipy is not installed"
)


def pytest_collection_modifyitems(config, items):
    """Skip scipy-backend tests when scipy is missing.

    The pure backend is a full replacement, so the suite still exercises
    every code path; only the cross-checks against scipy/HiGHS (tests
    parametrised with the "scipy" backend or comparing both backends) are
    skipped.  This keeps the no-scipy CI leg green while the with-scipy leg
    runs everything.
    """
    if SCIPY_AVAILABLE:
        return
    skip = pytest.mark.skip(reason="scipy is not installed")
    for item in items:
        callspec = getattr(item, "callspec", None)
        has_scipy_param = callspec is not None and "scipy" in {
            str(value) for value in callspec.params.values()
        }
        if has_scipy_param or "scipy" in item.name or "backends_agree" in item.name:
            item.add_marker(skip)
from repro.workloads.examples import (
    figure1a_rrg,
    figure1b_rrg,
    figure2_rrg,
    linear_pipeline,
    ring_rrg,
    unbalanced_fork_join,
)


@pytest.fixture
def figure1a():
    """The paper's Figure 1(a) RRG with alpha = 0.5."""
    return figure1a_rrg(0.5)


@pytest.fixture
def figure1b():
    """The paper's Figure 1(b) RRG with alpha = 0.5."""
    return figure1b_rrg(0.5)


@pytest.fixture
def figure2():
    """The paper's Figure 2 RRG with alpha = 0.5."""
    return figure2_rrg(0.5)


@pytest.fixture
def figure1a_hot():
    """Figure 1(a) with alpha = 0.9 (the paper's headline operating point)."""
    return figure1a_rrg(0.9)


@pytest.fixture
def pipeline():
    """A four-stage closed pipeline without early evaluation."""
    return linear_pipeline(stages=4, delays=[2.0, 3.0, 5.0, 1.0])


@pytest.fixture
def ring():
    """A five-node ring with two tokens."""
    return ring_rrg(length=5, total_tokens=2)


@pytest.fixture
def fork_join():
    """An unbalanced fork/join loop with an early-evaluation join."""
    return unbalanced_fork_join(alpha=0.8, long_branch_delay=6.0)


@pytest.fixture
def two_node_loop():
    """A minimal two-node loop used by many unit tests."""
    rrg = RRG("two-node")
    rrg.add_node("a", delay=2.0)
    rrg.add_node("b", delay=3.0)
    rrg.add_edge("a", "b", tokens=1, buffers=1)
    rrg.add_edge("b", "a", tokens=0, buffers=0)
    rrg.validate()
    return rrg
