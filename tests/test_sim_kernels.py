"""Kernel backends and batched evaluation: bit-identity across every path.

The pure-python :class:`ScalarSimulator` loop is the semantics oracle for
the compiled kernels (numba / generated C); whichever backend runs, a
simulation must be *bit*-identical — same firings, same final marking, same
float throughput — and a run lowered to a kernel must leave the python
state able to continue ``step()`` exactly where a pure-python run would.

On top of that, ``SearchProblem.evaluate_batch`` must return bit-identical
``Evaluation``s (and advance the shared counters identically) to the
serial evaluate loop, on every backend, including degenerate lanes.
"""

import math
import random

import pytest

from repro.search import search_minimize
from repro.search.problem import SearchProblem
from repro.search.state import SearchState
from repro.sim import clear_caches
from repro.sim import kernels
from repro.sim.cache import compiled_template_for
from repro.sim.scalar import ScalarSimulator
from repro.workloads.random_rrg import large_random_rrg, random_rrg

#: The pure-python fallback plus whatever the import-time probe selected
#: (dedup'd: on a host with no compiler and no numba this is just python).
BACKENDS = sorted({"python", kernels.kernel_backend()})


def _identity_model(rrg, mode="tgmg"):
    template = compiled_template_for(rrg, mode=mode)
    state = SearchState(rrg)
    return template.instantiate(state.token_vector(), state.buffer_vector())


class TestBackendSelection:
    def test_probe_reports_a_known_backend(self):
        assert kernels.kernel_backend() in ("numba", "c", "python")

    def test_info_names_the_requested_backend(self):
        info = kernels.kernel_info()
        assert info["backend"] == kernels.kernel_backend()
        assert info["requested"] in ("auto", "numba", "c", "python")

    def test_use_backend_forces_and_restores(self):
        before = kernels.kernel_backend()
        with kernels.use_backend("python"):
            assert kernels.kernel_backend() == "python"
            assert not kernels.native_active()
        assert kernels.kernel_backend() == before

    def test_unavailable_backend_raises(self):
        try:
            import numba  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError):
                with kernels.use_backend("numba"):
                    kernels.native_active()


@pytest.mark.parametrize("mode", ["tgmg", "elastic"])
@pytest.mark.parametrize("graph_seed", [1, 7])
class TestKernelParity:
    def test_run_is_bit_identical_to_python(self, mode, graph_seed):
        rrg = random_rrg(12, 24, seed=graph_seed)
        model = _identity_model(rrg, mode=mode)
        with kernels.use_backend("python"):
            ref = ScalarSimulator(model, seed=5)
            ref_run = ref.run(cycles=200, warmup=50)
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                sim = ScalarSimulator(model, seed=5)
                run = sim.run(cycles=200, warmup=50)
            assert (run.firings == ref_run.firings).all(), backend
            assert run.throughputs[0] == ref_run.throughputs[0], backend
            assert sim.marking == ref.marking, backend
            assert sim.firings == ref.firings, backend

    def test_step_continues_exactly_after_a_lowered_run(self, mode, graph_seed):
        rrg = random_rrg(12, 24, seed=graph_seed)
        model = _identity_model(rrg, mode=mode)
        with kernels.use_backend("python"):
            ref = ScalarSimulator(model, seed=9)
            ref.run(cycles=120, warmup=30)
            ref_tail = [ref.step(record=True) for _ in range(40)]
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                sim = ScalarSimulator(model, seed=9)
                sim.run(cycles=120, warmup=30)
            # The tail steps always run in python: the kernel must have
            # synced back marking, deficits, arrival ring, ready list and
            # the RNG position for them to match firing-for-firing.
            tail = [sim.step(record=True) for _ in range(40)]
            assert tail == ref_tail, backend
            assert sim.marking == ref.marking, backend
            assert sim.firings == ref.firings, backend


class TestEvaluateBatch:
    def _candidates(self, rrg, size=14):
        problem = SearchProblem(rrg, cycles=96, warmup=24, seed=1)
        state = SearchState(rrg)
        moves = problem.sample_moves(state, random.Random(3), size)
        assert moves, "expected a non-empty move pool"
        out = []
        for move in moves:
            candidate = state.copy()
            candidate.apply(move)
            out.append(candidate)
        return out

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_looped_evaluate_bitwise(self, backend):
        rrg = large_random_rrg(80, seed=5)
        candidates = self._candidates(rrg)
        with kernels.use_backend(backend):
            clear_caches()
            serial_problem = SearchProblem(rrg, cycles=96, warmup=24, seed=1)
            serial = [serial_problem.evaluate(s) for s in candidates]
            clear_caches()
            batch_problem = SearchProblem(rrg, cycles=96, warmup=24, seed=1)
            batch = batch_problem.evaluate_batch(candidates)
        for left, right in zip(serial, batch):
            assert left.cycle_time == right.cycle_time
            assert left.throughput == right.throughput
        assert batch_problem.evaluations == serial_problem.evaluations
        assert batch_problem.simulations == serial_problem.simulations

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bounded_matches_looped_evaluate_bounded(self, backend):
        rrg = large_random_rrg(80, seed=5)
        candidates = self._candidates(rrg)
        with kernels.use_backend(backend):
            clear_caches()
            reference = SearchProblem(rrg, cycles=96, warmup=24, seed=1)
            threshold = reference.evaluate(SearchState(rrg)).effective_cycle_time
            clear_caches()
            serial_problem = SearchProblem(rrg, cycles=96, warmup=24, seed=1)
            serial = [
                serial_problem.evaluate_bounded(s, threshold)
                for s in candidates
            ]
            clear_caches()
            batch_problem = SearchProblem(rrg, cycles=96, warmup=24, seed=1)
            batch = batch_problem.evaluate_batch(candidates, threshold=threshold)
        assert any(entry is None for entry in serial), "filters never fired"
        for left, right in zip(serial, batch):
            assert (left is None) == (right is None)
            if left is not None:
                assert left.cycle_time == right.cycle_time
                assert left.throughput == right.throughput
        for counter in (
            "evaluations", "simulations", "pruned_tau", "pruned_lp",
            "lp_solves",
        ):
            assert getattr(batch_problem, counter) == getattr(
                serial_problem, counter
            ), counter

    def test_results_are_backend_independent(self):
        rrg = large_random_rrg(80, seed=5)
        candidates = self._candidates(rrg)
        outcomes = []
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                clear_caches()
                problem = SearchProblem(rrg, cycles=96, warmup=24, seed=1)
                outcomes.append([
                    (e.cycle_time, e.throughput)
                    for e in problem.evaluate_batch(candidates)
                ])
        for other in outcomes[1:]:
            assert other == outcomes[0]

    def test_duplicate_lanes_simulate_once(self):
        rrg = large_random_rrg(60, seed=3)
        candidates = self._candidates(rrg, size=6)
        clear_caches()
        problem = SearchProblem(rrg, cycles=64, warmup=16, seed=1)
        doubled = candidates + [c.copy() for c in candidates]
        results = problem.evaluate_batch(doubled)
        assert problem.evaluations == len(doubled)
        assert problem.simulations == len(candidates)
        half = len(candidates)
        for left, right in zip(results[:half], results[half:]):
            assert left.cycle_time == right.cycle_time
            assert left.throughput == right.throughput

    def test_infeasible_lane_evaluates_to_inf(self):
        rrg = large_random_rrg(60, seed=3)
        healthy = SearchState(rrg)
        deadlocked = healthy.copy()
        deadlocked.buffers = [0] * len(deadlocked.buffers)
        results = SearchProblem(
            rrg, cycles=64, warmup=16, seed=1
        ).evaluate_batch([healthy, deadlocked])
        assert math.isfinite(results[0].cycle_time)
        assert math.isinf(results[1].cycle_time)
        assert results[1].effective_cycle_time == math.inf

    def test_infeasible_lane_is_pruned_under_a_threshold(self):
        rrg = large_random_rrg(60, seed=3)
        healthy = SearchState(rrg)
        deadlocked = healthy.copy()
        deadlocked.buffers = [0] * len(deadlocked.buffers)
        problem = SearchProblem(rrg, cycles=64, warmup=16, seed=1)
        threshold = problem.evaluate(healthy).effective_cycle_time + 1.0
        results = problem.evaluate_batch(
            [deadlocked, healthy], threshold=threshold
        )
        assert results[0] is None
        assert results[1] is not None
        assert problem.pruned_tau >= 1

    def test_zero_buffer_state_without_a_cycle_is_a_normal_lane(self):
        # figure-style feed-forward edges can legally hold zero buffers;
        # only a zero-buffer *cycle* is infeasible.
        rrg = large_random_rrg(60, seed=3)
        state = SearchState(rrg)
        [result] = SearchProblem(
            rrg, cycles=64, warmup=16, seed=1
        ).evaluate_batch([state])
        assert math.isfinite(result.cycle_time)
        assert result.throughput > 0


class TestPortfolioDeterminismAcrossBackends:
    def test_same_seed_same_incumbent_on_every_backend(self):
        rrg = large_random_rrg(200, seed=9)
        outcomes = []
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                clear_caches()
                result = search_minimize(
                    rrg, time_budget=2.0, seed=4, include_milp=False
                )
                assert result.kernel_backend == backend
                outcomes.append(result)
        first = outcomes[0]
        for other in outcomes[1:]:
            assert other.best.effective_cycle_time == (
                first.best.effective_cycle_time
            )
            assert other.best.configuration.same_assignment(
                first.best.configuration
            )
            assert other.history == first.history
            assert other.evaluations == first.evaluations
            assert other.evaluation_budget == first.evaluation_budget
